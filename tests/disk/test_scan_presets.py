"""SCAN ordering/sweep and preset tests."""

import numpy as np
import pytest

from repro.disk import (
    DiskDrive,
    DiskRequest,
    lumped_seek_time,
    order_scan,
    quantum_viking_2_1,
    scaled_viking,
    single_zone_viking,
    sweep_service,
)
from repro.errors import ConfigurationError


def _requests(cylinders):
    return [DiskRequest(stream_id=i, size=100_000.0, cylinder=c)
            for i, c in enumerate(cylinders)]


class TestOrderScan:
    def test_ascending_sort(self):
        reqs = _requests([500, 100, 300])
        ordered = order_scan(reqs)
        assert [r.cylinder for r in ordered] == [100, 300, 500]

    def test_descending_sort(self):
        reqs = _requests([500, 100, 300])
        ordered = order_scan(reqs, ascending=False)
        assert [r.cylinder for r in ordered] == [500, 300, 100]

    def test_stable_on_ties(self):
        reqs = _requests([100, 100, 100])
        ordered = order_scan(reqs)
        assert [r.stream_id for r in ordered] == [0, 1, 2]

    def test_empty_batch(self):
        assert order_scan([]) == []


class TestLumpedSeek:
    def test_matches_manual_sum(self):
        spec = quantum_viking_2_1()
        drive = DiskDrive(spec.geometry, spec.seek_curve,
                          initial_cylinder=0)
        reqs = _requests([1000, 3000, 2000])
        total = lumped_seek_time(drive, reqs)
        expected = (float(spec.seek_curve(1000))
                    + float(spec.seek_curve(1000))
                    + float(spec.seek_curve(1000)))
        assert total == pytest.approx(expected)

    def test_without_initial_seek(self):
        spec = quantum_viking_2_1()
        drive = DiskDrive(spec.geometry, spec.seek_curve,
                          initial_cylinder=0)
        reqs = _requests([1000, 2000])
        with_initial = lumped_seek_time(drive, reqs, include_initial=True)
        without = lumped_seek_time(drive, reqs, include_initial=False)
        assert with_initial - without == pytest.approx(
            float(spec.seek_curve(1000)))

    def test_empty_batch_costs_nothing(self):
        spec = quantum_viking_2_1()
        drive = DiskDrive(spec.geometry, spec.seek_curve)
        assert lumped_seek_time(drive, []) == 0.0

    def test_scan_beats_fifo(self, rng):
        # SCAN's raison d'etre: lumped seek under SCAN <= serving the
        # same batch in arrival order.
        spec = quantum_viking_2_1()
        drive = DiskDrive(spec.geometry, spec.seek_curve)
        cylinders = rng.integers(0, 6720, size=20)
        reqs = _requests(cylinders)
        scan_total = lumped_seek_time(drive, reqs)
        fifo_dists = np.abs(np.diff(np.concatenate(([0], cylinders))))
        fifo_total = float(np.sum(spec.seek_curve(fifo_dists)))
        assert scan_total <= fifo_total + 1e-12


class TestSweepService:
    def test_serves_in_scan_order_and_moves_arm(self, rng):
        spec = quantum_viking_2_1()
        drive = DiskDrive(spec.geometry, spec.seek_curve)
        reqs = _requests([4000, 1000, 2500])
        outcome = sweep_service(drive, reqs, rng)
        assert [r.cylinder for r, _ in outcome] == [1000, 2500, 4000]
        assert drive.arm_cylinder == 4000
        assert drive.served == 3

    def test_total_time_decomposition(self, rng):
        spec = quantum_viking_2_1()
        drive = DiskDrive(spec.geometry, spec.seek_curve)
        reqs = _requests([4000, 1000, 2500])
        outcome = sweep_service(drive, reqs, rng)
        total = sum(b.total for _, b in outcome)
        assert drive.busy_time == pytest.approx(total)


class TestPresets:
    def test_table1_parameters(self):
        spec = quantum_viking_2_1()
        assert spec.cylinders == 6720
        assert spec.zone_map.zones == 15
        assert spec.rot == pytest.approx(8.34e-3)
        assert spec.zone_map.c_min == 58368.0
        assert spec.zone_map.c_max == 95744.0

    def test_single_zone_example_disk(self):
        spec = single_zone_viking()
        assert spec.zone_map.zones == 1
        # 75 KiB track => rate that gives E[T_trans]=0.0217 s for 200 KB.
        assert spec.zone_map.r_min == pytest.approx(76800.0 / 8.34e-3)

    def test_with_zones_rescales(self):
        spec = quantum_viking_2_1().with_zones(30)
        assert spec.zone_map.zones == 30
        assert spec.zone_map.c_min == 58368.0
        assert spec.zone_map.c_max == 95744.0
        assert spec.cylinders == 6720

    def test_scaled_viking(self):
        spec = scaled_viking(rate_scale=2.0)
        assert spec.zone_map.c_min == pytest.approx(2 * 58368.0)
        with pytest.raises(ConfigurationError):
            scaled_viking(rate_scale=0.0)

    def test_geometry_cached_and_consistent(self):
        spec = quantum_viking_2_1()
        assert spec.geometry is spec.geometry
        assert spec.geometry.cylinders == spec.cylinders
