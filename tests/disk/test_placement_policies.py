"""Placement-policy tests (§2.2 outlook extension)."""

import numpy as np
import pytest

from repro.core import MultiZoneTransferModel, RoundServiceTimeModel
from repro.disk.placement import (
    OrganPipePlacement,
    OuterZonesPlacement,
    SectorUniformPlacement,
)
from repro.errors import ConfigurationError
from repro.server.simulation import simulate_rounds


class TestSectorUniform:
    def test_matches_zone_map_law(self, viking):
        policy = SectorUniformPlacement()
        zone_probs = policy.zone_probabilities(viking.geometry)
        assert zone_probs == pytest.approx(
            viking.zone_map.zone_probabilities, abs=1e-12)

    def test_rate_moments_match_zone_map(self, viking):
        policy = SectorUniformPlacement()
        for k in (-2, -1, 1):
            assert policy.rate_moment(viking.geometry, k) == pytest.approx(
                viking.zone_map.rate_moment(k), rel=1e-12)

    def test_sampling_matches_probabilities(self, viking, rng):
        policy = SectorUniformPlacement()
        cyl = policy.sample_cylinders(viking.geometry, rng, size=100_000)
        zones = viking.geometry.zone_of_cylinder(cyl)
        freq = np.bincount(zones, minlength=15) / cyl.size
        assert freq == pytest.approx(
            policy.zone_probabilities(viking.geometry), abs=0.01)


class TestOuterZones:
    def test_no_mass_in_inner_region(self, viking):
        policy = OuterZonesPlacement(fraction=0.5)
        probs = policy.cylinder_probabilities(viking.geometry)
        cut = viking.geometry.cylinders // 2
        assert np.all(probs[:cut] == 0.0)
        assert np.sum(probs[cut:]) == pytest.approx(1.0)

    def test_faster_mean_rate_than_uniform(self, viking):
        uniform = SectorUniformPlacement()
        outer = OuterZonesPlacement(fraction=0.3)
        assert (outer.rate_moment(viking.geometry, -1)
                < uniform.rate_moment(viking.geometry, -1))

    def test_shorter_seeks_than_uniform(self, viking):
        uniform = SectorUniformPlacement()
        outer = OuterZonesPlacement(fraction=0.3)
        assert (outer.mean_pairwise_seek_distance(viking.geometry)
                < 0.5 * uniform.mean_pairwise_seek_distance(
                    viking.geometry))

    def test_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            OuterZonesPlacement(fraction=0.0)
        with pytest.raises(ConfigurationError):
            OuterZonesPlacement(fraction=1.5)


class TestOrganPipe:
    def test_peak_at_centre(self, viking):
        policy = OrganPipePlacement(centre_fraction=0.75, skew=1e-3)
        probs = policy.cylinder_probabilities(viking.geometry)
        centre = int(0.75 * (viking.geometry.cylinders - 1))
        assert np.argmax(probs) == pytest.approx(centre, abs=2)

    def test_skew_one_degenerates_to_uniform(self, viking):
        organ = OrganPipePlacement(centre_fraction=0.5, skew=1.0)
        uniform = SectorUniformPlacement()
        assert organ.cylinder_probabilities(viking.geometry) == \
            pytest.approx(uniform.cylinder_probabilities(viking.geometry))

    def test_stronger_skew_shortens_seeks(self, viking):
        distances = [
            OrganPipePlacement(0.75, skew).mean_pairwise_seek_distance(
                viking.geometry)
            for skew in (1.0, 1e-2, 1e-4)]
        assert distances == sorted(distances, reverse=True)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OrganPipePlacement(centre_fraction=1.5)
        with pytest.raises(ConfigurationError):
            OrganPipePlacement(skew=0.0)


class TestModelIntegration:
    def test_outer_placement_improves_transfer_time(self, viking,
                                                    paper_sizes):
        uniform = MultiZoneTransferModel(viking.zone_map, paper_sizes)
        outer_policy = OuterZonesPlacement(fraction=0.3)
        outer = MultiZoneTransferModel(
            viking.zone_map, paper_sizes,
            zone_probabilities=outer_policy.zone_probabilities(
                viking.geometry))
        assert outer.mean() < uniform.mean()

    def test_zone_probability_validation(self, viking, paper_sizes):
        with pytest.raises(ConfigurationError):
            MultiZoneTransferModel(viking.zone_map, paper_sizes,
                                   zone_probabilities=[0.5, 0.5])
        bad = np.full(15, 0.1)
        with pytest.raises(ConfigurationError):
            MultiZoneTransferModel(viking.zone_map, paper_sizes,
                                   zone_probabilities=bad)

    def test_simulator_honours_placement(self, viking, paper_sizes, rng):
        outer = OuterZonesPlacement(fraction=0.3)
        batch = simulate_rounds(viking, paper_sizes, 20, 1.0, 2000, rng,
                                placement=outer)
        uniform_batch = simulate_rounds(viking, paper_sizes, 20, 1.0,
                                        2000, rng)
        # Outer placement: faster transfers AND shorter seeks => faster
        # rounds.
        assert (float(np.mean(batch.service_times))
                < float(np.mean(uniform_batch.service_times)))
        assert (float(np.mean(batch.seek_times))
                < float(np.mean(uniform_batch.seek_times)))

    def test_placement_raises_admission(self, viking, paper_sizes):
        # The end-to-end payoff: hot-band placement admits more streams.
        from repro.core import n_max_plate
        uniform_model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        outer_policy = OuterZonesPlacement(fraction=0.3)
        transfer = MultiZoneTransferModel(
            viking.zone_map, paper_sizes,
            zone_probabilities=outer_policy.zone_probabilities(
                viking.geometry)).gamma_approximation()
        outer_model = RoundServiceTimeModel(
            seek_bound=lambda n: uniform_model.seek(n), rot=viking.rot,
            transfer=transfer)
        assert (n_max_plate(outer_model, 1.0, 0.01)
                >= n_max_plate(uniform_model, 1.0, 0.01))
