"""Controller state machine: calibrate, tighten, watchdog, relax.

The windows here are fabricated (the controller only ever reads window
aggregates), but every ``solve`` runs the real cached Chernoff
machinery on the paper's Viking disk, so the planned operating points
are the ones the daemon would actually apply:

- healthy point ``n = 28`` at ``t = 1`` stamps ``b_late = 0.0472``,
  so the default guard is ``0.75 * 0.0472 = 0.0354``;
- the failure-proof fallback ``n = 13`` stamps ``b_late ~ 1.9e-20`` --
  the regime where floating-point residue in the Wilson bounds used to
  fake violations (pinned by the regression tests below).
"""

import math

import pytest

from repro.control import (Controller, ControllerConfig,
                           RoundObservation, TelemetryWindow, Watchdog)
from repro.control.controller import SCALE_STEP, quantise_scale
from repro.core import GlitchModel, RoundServiceTimeModel
from repro.core.admission import n_max_perror
from repro.disk import quantum_viking_2_1
from repro.distributions import Gamma
from repro.errors import ConfigurationError

HEALTHY_BOUND = 0.0472   # b_late(28, 1.0), rounded
TINY_BOUND = 1.9e-20     # b_late(13, 1.0): the fallback stamp


@pytest.fixture(scope="module")
def model():
    return RoundServiceTimeModel.for_disk(
        quantum_viking_2_1(),
        Gamma.from_mean_std(200_000.0, 100_000.0))


def make_controller(model, **overrides):
    config = ControllerConfig(**overrides)
    return Controller(config, model, 1.0, delta=0.01, epsilon=0.01,
                      m=1200, g=12, healthy_n_max=28,
                      fallback_n_max=13)


def fill(window, rounds, *, late_rounds=0, bound=HEALTHY_BOUND,
         ratio=1.0, start=0):
    """``rounds`` two-disk observations, the first ``late_rounds`` of
    which carry one late sweep each."""
    for i in range(rounds):
        expected = 1.6
        window.add(RoundObservation(
            round_index=start + i, disk_rounds=2,
            late_disk_rounds=1 if i < late_rounds else 0,
            requests=56, glitched=0,
            observed_service=ratio * expected,
            expected_service=expected, bound=bound))


class TestConfigAndScale:
    def test_config_validation(self):
        for bad in (dict(guard_band=0.0), dict(guard_band=1.0),
                    dict(relax_margin=0.0), dict(watchdog_factor=1.0),
                    dict(window_rounds=0), dict(rejoin_rounds=0),
                    dict(t_ladder=()), dict(t_ladder=(0.5,)),
                    dict(safety=0.9), dict(max_scale=1.0)):
            with pytest.raises(ConfigurationError):
                ControllerConfig(**bad)

    def test_quantise_scale_snaps_to_grid(self):
        assert quantise_scale(0.5, 32.0) == 1.0
        assert quantise_scale(1.0, 32.0) == 1.0
        assert quantise_scale(SCALE_STEP ** 5, 32.0) == pytest.approx(
            SCALE_STEP ** 5)
        assert quantise_scale(1e9, 32.0) <= 32.0
        steps = math.log(quantise_scale(1.37, 32.0)) / math.log(
            SCALE_STEP)
        assert steps == pytest.approx(round(steps))


class TestSolve:
    def test_nominal_scale_keeps_healthy_point(self, model):
        ctl = make_controller(model)
        plan = ctl.solve(1.0)
        assert plan.n_max == 28 and plan.t_mult == 1.0

    def test_scaling_identity_re_solve(self, model):
        """``solve(s)`` is exactly ``n_max_perror`` at ``t/s`` (the
        paper identity P[s*T_n >= t] = P[T_n >= t/s])."""
        ctl = make_controller(model)
        plan = ctl.solve(1.2763)
        direct = n_max_perror(GlitchModel(model, 1.0 / 1.2763),
                              1200, 12, 0.01, ctl.n_cap)
        assert plan.n_max == min(direct, 28) == 21
        assert plan.predicted_p_error <= 0.01

    def test_ladder_lengthens_round_when_budget_collapses(self, model):
        ctl = make_controller(model)
        plan = ctl.solve(16.0)
        # t/16 admits nothing at t_mult 1 or 1.5; 2.0 recovers n=1.
        assert plan.t_mult == 2.0 and plan.n_max == 1

    def test_ladder_exhausted_returns_zero(self, model):
        plan = make_controller(model).solve(32.0)
        assert plan.n_max == 0 and plan.predicted_p_error is None


class TestCalibration:
    def test_comfortable_window_freezes_baseline(self, model):
        ctl = make_controller(model)
        window = TelemetryWindow(maxlen=48)
        fill(window, 8, ratio=0.99)
        assert ctl.step(window) is None
        assert ctl.state == "steady"
        assert ctl.calibration == pytest.approx(0.99)

    def test_drifting_startup_falls_back_to_model_baseline(self, model):
        ctl = make_controller(model)
        window = TelemetryWindow(maxlen=48)
        # 2/16 = 0.125: above the guard (0.035), below the watchdog
        # threshold (4 x 0.0472), so the planner path handles it.
        fill(window, 8, late_rounds=2, ratio=1.3)
        ctl.step(window)
        assert ctl.calibration == 1.0
        assert ctl.state == "steady"

    def test_underfilled_window_stays_calibrating(self, model):
        ctl = make_controller(model)
        window = TelemetryWindow(maxlen=48)
        fill(window, 4)
        assert ctl.step(window) is None
        assert ctl.state == "calibrating"


class TestTighten:
    def test_quiescent_on_comfortable_steady_window(self, model):
        ctl = make_controller(model)
        ctl.calibration, ctl.state = 1.0, "steady"
        window = TelemetryWindow(maxlen=48)
        fill(window, 48)
        assert ctl.step(window) is None
        assert ctl.retunes == 0

    def test_confident_violation_tightens_and_verifies(self, model):
        ctl = make_controller(model)
        ctl.calibration, ctl.state = 1.0, "steady"
        window = TelemetryWindow(maxlen=48)
        # 10/96 late: Wilson lower 0.058 > guard 0.035.  Ratio 1.28
        # estimates scale 1.28 * 1.1 safety -> quantised 1.4071.
        fill(window, 48, late_rounds=10, ratio=1.28)
        decision = ctl.step(window)
        assert decision is not None and decision.kind == "tighten"
        assert decision.n_max == 18  # re-solve at t/1.4071
        assert decision.predicted_p_error <= 0.01
        ctl.committed(decision)
        assert ctl.n_max == 18 and ctl.retunes == 1
        assert ctl.cooldown_left == ctl.config.cooldown_rounds
        assert ctl.state == "cooldown"

    def test_cooldown_suppresses_planning(self, model):
        ctl = make_controller(model)
        ctl.calibration, ctl.state = 1.0, "steady"
        window = TelemetryWindow(maxlen=48)
        fill(window, 48, late_rounds=10, ratio=1.28)
        ctl.committed(ctl.step(window))
        assert ctl.step(window) is None  # cooling down
        assert ctl.cooldown_left == ctl.config.cooldown_rounds - 1

    def test_zero_late_window_never_fakes_a_violation(self, model):
        """Regression: with zero late rounds the Wilson lower bound
        carries ~1e-18 of floating-point residue, which must not clear
        a ~1e-20 guard at a tight operating point."""
        ctl = make_controller(model)
        ctl.calibration, ctl.state = 1.0, "steady"
        window = TelemetryWindow(maxlen=48)
        fill(window, 48, bound=TINY_BOUND)
        assert ctl.step(window) is None
        assert ctl.retunes == 0

    def test_no_op_retune_at_fallback_floor_is_suppressed(self, model):
        """Regression: a late round at the fallback point trips the
        (near-zero) guard, but the step-down clamps at the floor -- the
        controller must return None instead of a no-op decision."""
        ctl = make_controller(model)
        ctl.calibration, ctl.state, ctl.n_max = 1.0, "steady", 13
        window = TelemetryWindow(maxlen=48)
        fill(window, 48, late_rounds=1, bound=TINY_BOUND, ratio=1.0)
        assert ctl.step(window) is None
        assert ctl.retunes == 0


class TestWatchdog:
    def test_breach_gates(self):
        dog = Watchdog(factor=4.0, min_disk_rounds=8)
        window = TelemetryWindow(maxlen=48)
        fill(window, 2, late_rounds=2)     # 4 disk-rounds: too little
        assert not dog.breached(window)
        fill(window, 10, late_rounds=10, start=2)
        assert window.observed_p_late > 4.0 * window.bound
        assert dog.breached(window)

    def test_trip_drops_to_fallback_immediately(self, model):
        ctl = make_controller(model)
        window = TelemetryWindow(maxlen=48)
        # 20/96 = 0.208 > 4 x 0.0472: outranks calibration.
        fill(window, 48, late_rounds=20, ratio=1.5)
        decision = ctl.step(window)
        assert decision is not None and decision.kind == "watchdog"
        assert decision.n_max == 13
        assert ctl.state == "escalated"
        assert ctl.watchdog.trips == 1
        ctl.committed(decision)
        assert ctl.n_max == 13

    def test_never_re_trips_at_the_fallback_floor(self, model):
        ctl = make_controller(model)
        ctl.calibration, ctl.state, ctl.n_max = 1.0, "escalated", 13
        window = TelemetryWindow(maxlen=48)
        fill(window, 48, late_rounds=20, bound=TINY_BOUND)
        decision = ctl.step(window)
        assert decision is None or decision.kind != "watchdog"
        assert ctl.watchdog.trips == 0


class TestRelax:
    def test_zero_overrun_window_relaxes_to_solved_point(self, model):
        ctl = make_controller(model)
        ctl.calibration, ctl.state, ctl.n_max = 1.0, "steady", 13
        window = TelemetryWindow(maxlen=48)
        # Still 1.25x slow, but zero overruns at the fallback point:
        # the solver lifts the limit to the drift-aware optimum.
        fill(window, 48, ratio=1.25, bound=TINY_BOUND)
        decision = ctl.step(window)
        assert decision is not None and decision.kind == "relax"
        assert decision.n_max == 18  # solve at quantised 1.375 scale
        assert decision.predicted_p_error <= 0.01
        assert "zero overruns" in decision.reason

    def test_relax_blocked_while_cooling_down(self, model):
        ctl = make_controller(model)
        ctl.calibration, ctl.state, ctl.n_max = 1.0, "cooldown", 13
        ctl.cooldown_left = 5
        window = TelemetryWindow(maxlen=48)
        fill(window, 48, ratio=1.25, bound=TINY_BOUND)
        assert ctl.step(window) is None

    def test_healthy_point_never_relaxes_past_itself(self, model):
        ctl = make_controller(model)
        ctl.calibration, ctl.state = 1.0, "steady"
        window = TelemetryWindow(maxlen=48)
        fill(window, 48, ratio=0.8)  # disk faster than nominal
        assert ctl.step(window) is None


class TestPersistence:
    def test_state_round_trips_through_dict(self, model):
        ctl = make_controller(model)
        ctl.calibration, ctl.state = 1.0, "steady"
        window = TelemetryWindow(maxlen=48)
        fill(window, 48, late_rounds=10, ratio=1.28)
        ctl.committed(ctl.step(window))

        twin = make_controller(model)
        twin.restore_dict(ctl.to_dict())
        assert twin.to_dict() == ctl.to_dict()
        assert twin.n_max == 18
        assert twin.last_decision.kind == "tighten"

    def test_unknown_state_is_refused(self, model):
        ctl = make_controller(model)
        with pytest.raises(ConfigurationError):
            ctl.restore_dict({"state": "panicking"})

    def test_summary_carries_config_and_limits(self, model):
        summary = make_controller(model).summary()
        assert summary["healthy_n_max"] == 28
        assert summary["fallback_n_max"] == 13
        assert summary["config"]["guard_band"] == 0.25
