"""TelemetryWindow aggregate arithmetic and snapshot round-trips."""

import pytest

from repro.control import RoundObservation, TelemetryWindow
from repro.control.window import LATENCY_EDGES
from repro.distributions import binomial_tail
from repro.errors import ConfigurationError


def make_obs(index, *, disk_rounds=2, late=0, requests=56, glitched=0,
             observed=1.6, expected=1.6, bound=0.047,
             counts=(0, 2, 0, 0, 0)):
    return RoundObservation(
        round_index=index, disk_rounds=disk_rounds,
        late_disk_rounds=late, requests=requests, glitched=glitched,
        observed_service=observed, expected_service=expected,
        bound=bound, latency_counts=tuple(counts))


class TestAggregates:
    def test_empty_window_is_neutral(self):
        window = TelemetryWindow(maxlen=8)
        assert window.rounds == 0
        assert window.observed_p_late == 0.0
        assert window.bound == 0.0
        assert window.glitch_rate == 0.0
        assert window.service_ratio == 1.0
        assert window.p_late_interval() == (0.0, 1.0)
        assert window.observed_p_error(1200, 12) == 0.0

    def test_counts_and_p_late(self):
        window = TelemetryWindow(maxlen=16)
        for i in range(10):
            window.add(make_obs(i, late=1 if i < 3 else 0))
        assert window.rounds == 10
        assert window.disk_rounds == 20
        assert window.late_disk_rounds == 3
        assert window.observed_p_late == pytest.approx(3 / 20)
        lower, upper = window.p_late_interval()
        assert lower < 3 / 20 < upper

    def test_bound_is_disk_round_weighted(self):
        window = TelemetryWindow(maxlen=8)
        window.add(make_obs(0, disk_rounds=1, bound=0.10,
                            counts=(0, 1, 0, 0, 0)))
        window.add(make_obs(1, disk_rounds=3, bound=0.02,
                            counts=(0, 3, 0, 0, 0)))
        assert window.bound == pytest.approx(
            (0.10 * 1 + 0.02 * 3) / 4)

    def test_service_ratio_tracks_drift(self):
        window = TelemetryWindow(maxlen=8)
        for i in range(4):
            window.add(make_obs(i, observed=2.0, expected=1.6))
        assert window.service_ratio == pytest.approx(1.25)

    def test_observed_p_error_is_binomial_tail_of_rate(self):
        window = TelemetryWindow(maxlen=8)
        window.add(make_obs(0, requests=100, glitched=3))
        assert window.glitch_rate == pytest.approx(0.03)
        assert window.observed_p_error(1200, 12) == pytest.approx(
            float(binomial_tail(1200, 0.03, 12)))

    def test_latency_histogram_sums_buckets(self):
        window = TelemetryWindow(maxlen=8)
        window.add(make_obs(0, counts=(1, 1, 0, 0, 0)))
        window.add(make_obs(1, counts=(0, 0, 1, 0, 1)))
        hist = window.latency_histogram()
        assert hist["edges"] == list(LATENCY_EDGES)
        assert hist["counts"] == [1, 1, 1, 0, 1]

    def test_maxlen_evicts_oldest(self):
        window = TelemetryWindow(maxlen=3)
        for i in range(5):
            window.add(make_obs(i, late=1 if i == 0 else 0))
        # The i=0 late observation fell off the back.
        assert window.rounds == 3
        assert window.late_disk_rounds == 0

    def test_clear_forgets_everything(self):
        window = TelemetryWindow(maxlen=8)
        window.add(make_obs(0, late=2))
        window.clear()
        assert window.rounds == 0
        assert window.observed_p_late == 0.0

    def test_maxlen_validation(self):
        with pytest.raises(ConfigurationError):
            TelemetryWindow(maxlen=0)


class TestPersistence:
    def test_round_trip_is_exact(self):
        window = TelemetryWindow(maxlen=8)
        for i in range(5):
            window.add(make_obs(i, late=i % 2, glitched=i,
                                observed=1.6 + 0.1 * i))
        restored = TelemetryWindow.from_dict(window.to_dict())
        assert restored.to_dict() == window.to_dict()
        assert restored.maxlen == 8
        assert restored.observed_p_late == window.observed_p_late
        assert restored.service_ratio == window.service_ratio

    def test_observation_round_trip(self):
        obs = make_obs(7, late=1, glitched=2)
        assert RoundObservation.from_dict(obs.to_dict()) == obs

    def test_summary_shape(self):
        window = TelemetryWindow(maxlen=8)
        window.add(make_obs(0))
        summary = window.summary(1200, 12)
        for key in ("rounds", "disk_rounds", "observed_p_late",
                    "p_late_lower", "p_late_upper", "bound",
                    "glitch_rate", "service_ratio",
                    "latency_histogram", "observed_p_error"):
            assert key in summary
