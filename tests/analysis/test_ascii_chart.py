"""ASCII chart renderer tests."""

import pytest

from repro.analysis.plotting import ascii_chart
from repro.errors import ConfigurationError


class TestRendering:
    def test_basic_shape(self):
        out = ascii_chart([0, 1, 2, 3], {"line": [0.0, 1.0, 2.0, 3.0]},
                          width=20, height=6, title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 1 + 6 + 2  # title + grid + axis + legend
        assert "*=line" in lines[-1]

    def test_marks_placed_monotone(self):
        out = ascii_chart([0, 1, 2], {"up": [0.0, 0.5, 1.0]},
                          width=21, height=7)
        grid = [l.split("|", 1)[1] for l in out.splitlines()
                if "|" in l]
        # Highest value drawn on the top row, lowest on the bottom.
        assert "*" in grid[0]
        assert "*" in grid[-1]
        assert grid[0].index("*") > grid[-1].index("*")

    def test_two_series_distinct_marks(self):
        out = ascii_chart([0, 1], {"a": [0, 1], "b": [1, 0]},
                          width=16, height=4)
        assert "*=a" in out and "o=b" in out
        grid = [l.split("|", 1)[1] for l in out.splitlines() if "|" in l]
        body = "".join(grid)
        assert "*" in body and "o" in body

    def test_log_scale_clamps_zeros(self):
        out = ascii_chart([1, 2, 3],
                          {"p": [0.0, 1e-3, 1e-1]},
                          log_y=True, y_floor=1e-5, width=24, height=6)
        # The zero is drawn at the floor (bottom row), not dropped.
        grid = [l.split("|", 1)[1] for l in out.splitlines()
                if "|" in l]
        assert "*" in grid[-1]

    def test_axis_labels_scientific(self):
        out = ascii_chart([0, 1], {"a": [1e-4, 1e-1]}, log_y=True,
                          width=20, height=8)
        assert "e-0" in out  # scientific y labels present


class TestValidation:
    def test_needs_two_points(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([1], {"a": [1.0]})

    def test_needs_series(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([1, 2], {})

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([1, 2], {"a": [1.0]})

    def test_too_many_series(self):
        series = {f"s{i}": [0.0, 1.0] for i in range(7)}
        with pytest.raises(ConfigurationError):
            ascii_chart([0, 1], series)

    def test_too_small(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([0, 1], {"a": [0, 1]}, width=4, height=2)
