"""Analysis-utility tests: intervals, batch means, tables."""

import numpy as np
import pytest

from repro.analysis import (
    ComparisonRow,
    batch_means,
    comparison_table,
    format_probability,
    mean_confidence_interval,
    render_table,
    wilson_interval,
)
from repro.errors import ConfigurationError


class TestWilson:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(7, 100)
        assert lo < 0.07 < hi

    def test_zero_successes_nonzero_width(self):
        lo, hi = wilson_interval(0, 1000)
        assert lo == pytest.approx(0.0, abs=1e-12)
        assert hi > 1e-3  # Wald would give zero width here

    def test_all_successes(self):
        lo, hi = wilson_interval(50, 50)
        assert hi == 1.0
        assert lo < 1.0

    def test_coverage_monte_carlo(self, rng):
        # ~95 % of intervals should contain the true p.
        p, n, trials = 0.05, 400, 800
        hits = 0
        draws = rng.binomial(n, p, size=trials)
        for k in draws:
            lo, hi = wilson_interval(int(k), n)
            hits += lo <= p <= hi
        assert hits / trials > 0.92

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 4)
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 10, confidence=1.0)


class TestMeanCi:
    def test_contains_true_mean_usually(self, rng):
        data = rng.normal(10.0, 2.0, size=200)
        mean, lo, hi = mean_confidence_interval(data)
        assert lo < mean < hi
        assert abs(mean - 10.0) < 1.0

    def test_degenerate_sample(self):
        mean, lo, hi = mean_confidence_interval([5.0, 5.0, 5.0])
        assert mean == lo == hi == 5.0

    def test_needs_two_samples(self):
        with pytest.raises(ConfigurationError):
            mean_confidence_interval([1.0])


class TestBatchMeans:
    def test_iid_matches_plain_mean(self, rng):
        data = rng.normal(3.0, 1.0, size=4000)
        mean, se = batch_means(data, batches=20)
        assert mean == pytest.approx(float(np.mean(data)), abs=1e-9)
        assert se == pytest.approx(1.0 / np.sqrt(4000), rel=0.5)

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            batch_means([1.0, 2.0], batches=1)
        with pytest.raises(ConfigurationError):
            batch_means(rng.random(10), batches=20)


class TestFormatting:
    def test_format_probability_bands(self):
        assert format_probability(0.0) == "0"
        assert format_probability(1.0) == "1"
        assert format_probability(0.00324) == "0.00324"
        assert format_probability(1.4e-7) == "1.40e-07"

    def test_render_table_alignment(self):
        out = render_table(["N", "p"], [[28, "0.00014"], [29, "0.318"]],
                           title="Table 2")
        lines = out.splitlines()
        assert lines[0] == "Table 2"
        assert "N" in lines[2] and "p" in lines[2]
        assert len(lines) == 6

    def test_render_table_validation(self):
        with pytest.raises(ConfigurationError):
            render_table([], [])
        with pytest.raises(ConfigurationError):
            render_table(["a"], [["x", "y"]])


class TestComparison:
    def test_conservative_flag(self):
        good = ComparisonRow("28", analytic=0.01, simulated=0.005)
        bad = ComparisonRow("29", analytic=0.001, simulated=0.005)
        assert good.conservative
        assert not bad.conservative
        assert good.slack == pytest.approx(0.005)

    def test_conservative_uses_ci(self):
        row = ComparisonRow("30", analytic=0.004, simulated=0.005,
                            ci_low=0.003, ci_high=0.008)
        assert row.conservative  # bound above the CI's lower edge

    def test_table_renders(self):
        rows = [ComparisonRow("28", 0.00014, 0.0, ci_low=0.0,
                              ci_high=0.001)]
        out = comparison_table(rows, title="perror")
        assert "conservative" in out
        assert "yes" in out
