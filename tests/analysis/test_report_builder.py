"""Report-generator tests."""

from pathlib import Path

from repro.analysis.report import build_report, write_report


class TestBuildReport:
    def test_lists_missing_artifacts(self, tmp_path):
        report = build_report(results_base=tmp_path)  # nothing run yet
        assert "# Reproduction report" in report
        assert "## Missing artifacts" in report
        assert "E5/e5_figure1" in report
        assert "not yet run" in report

    def test_embeds_present_artifacts(self, tmp_path):
        (tmp_path / "e5_figure1.txt").write_text("E5 DATA TABLE\n")
        report = build_report(results_base=tmp_path)
        assert "E5 DATA TABLE" in report
        # E5 no longer listed as missing.
        assert "E5/e5_figure1" not in report.split("Missing artifacts")[-1]

    def test_sections_ordered(self, tmp_path):
        report = build_report(results_base=tmp_path)
        assert report.index("## Paper artifacts") < \
            report.index("## Ablations and extensions")
        assert report.index("### E1") < report.index("### E8") < \
            report.index("### A1")

    def test_write_report(self, tmp_path):
        target = write_report(tmp_path / "report.md",
                              results_base=tmp_path)
        assert target.is_file()
        assert target.read_text().startswith("# Reproduction report")

    def test_against_real_results(self):
        # With the repo's actual results directory, no paper artifact
        # should be missing once the benches have run at least once.
        repo = Path(__file__).resolve().parents[2]
        results = repo / "benchmarks" / "results"
        if not results.is_dir():  # fresh checkout: nothing to assert
            return
        report = build_report(results_base=results)
        for exp_id in ("E1", "E5", "E6", "E7"):
            assert f"{exp_id}/" not in report.split(
                "Missing artifacts")[-1]
