"""Experiment-registry tests: the registry must stay in sync with the
actual bench files on disk."""

from pathlib import Path

import pytest

from repro.analysis.experiments import (
    REGISTRY,
    all_experiments,
    get,
    result_path,
)
from repro.errors import ConfigurationError

REPO = Path(__file__).resolve().parents[2]
BENCH_DIR = REPO / "benchmarks"


class TestRegistry:
    def test_paper_artifacts_complete(self):
        # Every table/figure/worked example of the paper is covered.
        paper_ids = [e.id for e in all_experiments()
                     if e.is_paper_artifact]
        assert paper_ids == [f"E{i}" for i in range(1, 9)]

    def test_all_ablations_present(self):
        ablation_ids = {e.id for e in all_experiments()
                        if not e.is_paper_artifact}
        assert ablation_ids == {f"A{i}" for i in range(1, 28)}

    def test_every_bench_file_exists(self):
        for exp in all_experiments():
            assert (BENCH_DIR / exp.bench).is_file(), exp.id

    def test_every_bench_file_is_registered(self):
        registered = {exp.bench for exp in all_experiments()}
        on_disk = {p.name for p in BENCH_DIR.glob("bench_*.py")}
        assert on_disk == registered

    def test_get(self):
        assert get("E5").title == "Figure 1"
        with pytest.raises(ConfigurationError):
            get("E99")

    def test_result_path_resolution(self):
        path = result_path("e5_figure1")
        assert path.name == "e5_figure1.txt"
        assert path.parent.name == "results"
        assert path.parent.parent.name == "benchmarks"

    def test_result_path_explicit_base(self, tmp_path):
        path = result_path("x", base=tmp_path)
        assert path == tmp_path / "x.txt"

    def test_ids_unique(self):
        ids = [e.id for e in all_experiments()]
        assert len(ids) == len(set(ids))
        assert set(ids) == set(REGISTRY)
