"""Shared fixtures: the paper's disk and workload parameter sets."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import cache as cache_mod
from repro.disk import quantum_viking_2_1, single_zone_viking
from repro.workload import paper_fragment_sizes


@pytest.fixture(scope="session", autouse=True)
def _isolated_persistent_cache(tmp_path_factory):
    """Keep the on-disk bound cache away from ``~/.cache`` during tests.

    Exported through the environment too, so worker processes and CLI
    subprocesses spawned by tests inherit the same sandboxed store.
    """
    directory = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get(cache_mod.CACHE_DIR_ENV)
    os.environ[cache_mod.CACHE_DIR_ENV] = str(directory)
    cache_mod.set_persistent_cache_dir(directory)
    yield
    if previous is None:
        os.environ.pop(cache_mod.CACHE_DIR_ENV, None)
    else:
        os.environ[cache_mod.CACHE_DIR_ENV] = previous
    cache_mod.reset_persistent_cache()


@pytest.fixture(scope="session")
def viking():
    """Table 1's Quantum Viking 2.1 (15 zones)."""
    return quantum_viking_2_1()


@pytest.fixture(scope="session")
def viking_single_zone():
    """The §3.1 worked example's single-zone variant (75 KiB tracks)."""
    return single_zone_viking()


@pytest.fixture(scope="session")
def paper_sizes():
    """Table 1's fragment-size law: Gamma(mean 200 KB, sd 100 KB)."""
    return paper_fragment_sizes()


@pytest.fixture
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(12345)
