"""Shared fixtures: the paper's disk and workload parameter sets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.disk import quantum_viking_2_1, single_zone_viking
from repro.workload import paper_fragment_sizes


@pytest.fixture(scope="session")
def viking():
    """Table 1's Quantum Viking 2.1 (15 zones)."""
    return quantum_viking_2_1()


@pytest.fixture(scope="session")
def viking_single_zone():
    """The §3.1 worked example's single-zone variant (75 KiB tracks)."""
    return single_zone_viking()


@pytest.fixture(scope="session")
def paper_sizes():
    """Table 1's fragment-size law: Gamma(mean 200 KB, sd 100 KB)."""
    return paper_fragment_sizes()


@pytest.fixture
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(12345)
