"""Units helpers and error-hierarchy tests."""

import pytest

from repro import units
from repro.errors import (
    AdmissionError,
    ChernoffError,
    ConfigurationError,
    DistributionError,
    GeometryError,
    ModelError,
    ReproError,
    SimulationError,
)


class TestUnits:
    def test_decimal_vs_binary_kilobytes(self):
        assert units.kilobytes(200) == 200_000
        assert units.kibibytes(75) == 76_800  # the §3.1 track capacity

    def test_time_conversions(self):
        assert units.milliseconds(8.34) == pytest.approx(8.34e-3)
        assert units.microseconds(500) == pytest.approx(5e-4)
        assert units.seconds_to_ms(0.00834) == pytest.approx(8.34)

    def test_size_conversions(self):
        assert units.megabytes(2) == 2_000_000
        assert units.bytes_to_kb(200_000) == 200

    def test_constants(self):
        assert units.KB == 1000
        assert units.KIB == 1024
        assert units.MIB == 1024 ** 2
        assert units.GB == 10 ** 9


class TestErrorHierarchy:
    def test_everything_is_repro_error(self):
        for exc in (ConfigurationError, ModelError, DistributionError,
                    ChernoffError, AdmissionError, SimulationError,
                    GeometryError):
            assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        # Callers using plain `except ValueError` still catch config
        # mistakes.
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(GeometryError, ConfigurationError)

    def test_model_family(self):
        assert issubclass(DistributionError, ModelError)
        assert issubclass(ChernoffError, ModelError)

    def test_admission_error_payload(self):
        err = AdmissionError("full", active_streams=26, limit=26)
        assert err.active_streams == 26
        assert err.limit == 26
        assert "full" in str(err)

    def test_admission_error_defaults(self):
        err = AdmissionError("nope")
        assert err.active_streams is None
        assert err.limit is None

    def test_single_except_catches_family(self):
        with pytest.raises(ReproError):
            raise GeometryError("bad cylinder")
