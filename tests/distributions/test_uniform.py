"""Uniform distribution unit tests (the rotational-latency law)."""

import math

import numpy as np
import pytest

from repro.distributions import Uniform
from repro.errors import ConfigurationError

ROT = 8.34e-3


class TestConstruction:
    def test_rejects_empty_interval(self):
        with pytest.raises(ConfigurationError):
            Uniform(1.0, 1.0)
        with pytest.raises(ConfigurationError):
            Uniform(2.0, 1.0)

    def test_rejects_infinite_bounds(self):
        with pytest.raises(ConfigurationError):
            Uniform(0.0, math.inf)


class TestMoments:
    def test_rotational_latency_moments(self):
        u = Uniform(0.0, ROT)
        assert u.mean() == pytest.approx(ROT / 2)
        assert u.var() == pytest.approx(ROT ** 2 / 12)

    def test_support(self):
        u = Uniform(-1.0, 3.0)
        assert u.support == (-1.0, 3.0)


class TestDensities:
    def test_pdf_inside_and_outside(self):
        u = Uniform(0.0, 2.0)
        assert u.pdf(1.0) == pytest.approx(0.5)
        assert u.pdf(-0.1) == 0.0
        assert u.pdf(2.1) == 0.0

    def test_cdf_clips(self):
        u = Uniform(0.0, 2.0)
        assert u.cdf(-1.0) == 0.0
        assert u.cdf(1.0) == pytest.approx(0.5)
        assert u.cdf(5.0) == 1.0

    def test_ppf_is_linear(self):
        u = Uniform(1.0, 3.0)
        assert u.ppf(0.0) == 1.0
        assert u.ppf(0.5) == pytest.approx(2.0)
        assert u.ppf(1.0) == 3.0

    def test_samples_in_support(self, rng):
        u = Uniform(0.0, ROT)
        s = u.sample(rng, size=10_000)
        assert np.all((s >= 0.0) & (s <= ROT))
        assert np.mean(s) == pytest.approx(ROT / 2, rel=0.02)


class TestTransform:
    def test_log_mgf_matches_paper_form(self):
        # T_rot*(s) = (1 - e^{-s ROT})/(s ROT); M(theta) = T*(-theta).
        u = Uniform(0.0, ROT)
        theta = 50.0
        expected = math.log(
            (math.exp(theta * ROT) - 1.0) / (theta * ROT))
        assert u.log_mgf(theta) == pytest.approx(expected, rel=1e-12)

    def test_log_mgf_near_zero_series(self):
        u = Uniform(0.0, ROT)
        # log M(theta) -> theta * mean as theta -> 0.
        theta = 1e-10
        assert u.log_mgf(theta) == pytest.approx(theta * ROT / 2, rel=1e-6)

    def test_log_mgf_continuous_across_branch(self):
        # Both branches evaluate near-identically around |theta*ROT|=1e-8.
        u = Uniform(0.0, ROT)
        for factor in (0.99, 1.01):
            theta = factor * 1e-8 / ROT
            series = theta * ROT / 2 + (theta * ROT) ** 2 / 24
            assert u.log_mgf(theta) == pytest.approx(series, rel=1e-9)

    def test_log_mgf_negative_theta(self):
        u = Uniform(0.0, ROT)
        s = 120.0
        expected = math.log((1.0 - math.exp(-s * ROT)) / (s * ROT))
        assert u.log_mgf(-s) == pytest.approx(expected, rel=1e-12)

    def test_log_mgf_large_theta_no_overflow(self):
        u = Uniform(0.0, ROT)
        value = u.log_mgf(1e6)  # theta*ROT = 8340: would overflow naively
        assert math.isfinite(value)
        # Dominated by theta*high - log(theta*width).
        assert value == pytest.approx(
            1e6 * ROT - math.log(1e6 * ROT), rel=1e-9)

    def test_theta_sup_unbounded(self):
        assert Uniform(0.0, 1.0).theta_sup == math.inf

    def test_nonzero_low_bound(self):
        u = Uniform(2.0, 3.0)
        theta = 0.5
        expected = math.log(
            (math.exp(3 * theta) - math.exp(2 * theta)) / theta)
        assert u.log_mgf(theta) == pytest.approx(expected, rel=1e-12)
