"""Property-based tests on the distribution substrate (hypothesis).

These pin down the invariants the analytic model relies on:
moment-matching round-trips, cdf monotonicity, ppf/cdf inversion, and
the MGF's local behaviour (derivative at 0 = mean, convexity).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    Deterministic,
    Empirical,
    Gamma,
    LogNormal,
    Pareto,
    Truncated,
    Uniform,
)

positive = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False,
                     allow_infinity=False)
moderate = st.floats(min_value=1e-2, max_value=1e3, allow_nan=False,
                     allow_infinity=False)


@st.composite
def mean_std_pairs(draw):
    mean = draw(st.floats(min_value=0.1, max_value=1e5))
    cv = draw(st.floats(min_value=0.05, max_value=2.0))
    return mean, mean * cv


class TestMomentMatching:
    @given(mean_std_pairs())
    def test_gamma_roundtrip(self, pair):
        mean, std = pair
        g = Gamma.from_mean_std(mean, std)
        assert math.isclose(g.mean(), mean, rel_tol=1e-9)
        assert math.isclose(g.std(), std, rel_tol=1e-9)

    @given(mean_std_pairs())
    def test_lognormal_roundtrip(self, pair):
        mean, std = pair
        ln = LogNormal.from_mean_std(mean, std)
        assert math.isclose(ln.mean(), mean, rel_tol=1e-9)
        assert math.isclose(ln.std(), std, rel_tol=1e-7)

    @given(mean_std_pairs())
    def test_pareto_roundtrip(self, pair):
        mean, std = pair
        p = Pareto.from_mean_std(mean, std)
        assert math.isclose(p.mean(), mean, rel_tol=1e-9)
        assert math.isclose(p.std(), std, rel_tol=1e-7)


class TestCdfInvariants:
    @given(mean_std_pairs(),
           st.lists(st.floats(min_value=0.001, max_value=0.999),
                    min_size=2, max_size=8))
    def test_gamma_cdf_monotone_and_inverts(self, pair, quantiles):
        g = Gamma.from_mean_std(*pair)
        q = np.sort(np.asarray(quantiles))
        x = g.ppf(q)
        # Monotone up to scipy ppf's last-ulp wobble at nearly-equal
        # quantiles.
        scale = max(float(np.max(np.abs(x))), 1e-300)
        assert np.all(np.diff(x) >= -1e-12 * scale)
        assert np.allclose(g.cdf(x), q, atol=1e-8)

    @given(st.floats(min_value=-10, max_value=10),
           st.floats(min_value=0.1, max_value=10))
    def test_uniform_cdf_bounds(self, low, width):
        u = Uniform(low, low + width)
        xs = np.linspace(low - 1, low + width + 1, 50)
        c = u.cdf(xs)
        assert np.all((c >= 0) & (c <= 1))
        assert np.all(np.diff(c) >= -1e-12)


class TestMgfInvariants:
    @given(mean_std_pairs(), st.floats(min_value=1e-4, max_value=0.5))
    def test_gamma_mgf_derivative_is_mean(self, pair, frac):
        g = Gamma.from_mean_std(*pair)
        h = frac * g.rate * 1e-6
        numeric = (g.log_mgf(h) - g.log_mgf(-h)) / (2 * h)
        assert math.isclose(numeric, g.mean(), rel_tol=1e-3)

    @given(st.floats(min_value=1e-4, max_value=1e3))
    def test_uniform_mgf_convex(self, rot):
        u = Uniform(0.0, rot)
        thetas = np.linspace(-2.0 / rot, 2.0 / rot, 9)
        values = [u.log_mgf(float(t)) for t in thetas]
        # Convexity: midpoint below chord.
        for i in range(len(thetas) - 2):
            mid = values[i + 1]
            chord = 0.5 * (values[i] + values[i + 2])
            assert mid <= chord + 1e-9

    @given(mean_std_pairs())
    def test_mgf_at_zero_is_zero(self, pair):
        g = Gamma.from_mean_std(*pair)
        assert g.log_mgf(0.0) == pytest.approx(0.0, abs=1e-12)


class TestTruncationInvariants:
    @settings(max_examples=25, deadline=None)
    @given(mean_std_pairs(), st.floats(min_value=1.5, max_value=20.0))
    def test_truncated_mean_below_cap(self, pair, cap_factor):
        mean, std = pair
        cap = mean * cap_factor
        t = Truncated(LogNormal.from_mean_std(mean, std), 0.0, cap)
        assert 0.0 < t.mean() <= cap
        assert t.mean() <= mean * 1.0001  # truncation can only shrink

    @settings(max_examples=25, deadline=None)
    @given(mean_std_pairs(), st.floats(min_value=2.0, max_value=50.0),
           st.floats(min_value=0.0, max_value=5.0))
    def test_truncated_mgf_bounded_by_cap(self, pair, cap_factor, theta):
        mean, std = pair
        cap = mean * cap_factor
        t = Truncated(Gamma.from_mean_std(mean, std), 0.0, cap)
        # E[e^{theta X}] <= e^{theta * cap}; equivalently log <= theta*cap.
        scaled = theta / mean  # keep exponents in a sane range
        assert t.log_mgf(scaled) <= scaled * cap + 1e-9


class TestEmpiricalInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=-1e4, max_value=1e4),
                    min_size=3, max_size=200, unique=True))
    def test_empirical_cdf_matches_rank(self, data):
        from hypothesis import assume
        # Distinct subnormal-scale values can underflow the variance to
        # exactly 0, which Empirical rightly rejects.
        assume(float(np.var(np.asarray(data))) > 0.0)
        e = Empirical(data)
        ordered = np.sort(np.asarray(data, dtype=float))
        n = len(ordered)
        for k in (0, n // 2, n - 1):
            assert float(e.cdf(ordered[k])) == pytest.approx((k + 1) / n)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=3, max_size=50, unique=True),
           st.floats(min_value=-0.2, max_value=0.2))
    def test_empirical_mgf_dominates_jensen(self, data, theta):
        # Jensen: log E[e^{tX}] >= t E[X].
        e = Empirical(data)
        assert e.log_mgf(theta) >= theta * e.mean() - 1e-9


class TestDeterministicInvariants:
    @given(st.floats(min_value=-1e6, max_value=1e6),
           st.floats(min_value=-5, max_value=5))
    def test_mgf_exactly_linear(self, value, theta):
        d = Deterministic(value)
        assert d.log_mgf(theta) == pytest.approx(theta * value, rel=1e-12)
