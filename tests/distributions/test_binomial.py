"""Binomial tail and Hagerup-Rüb bound tests (eq. 3.3.4/3.3.5)."""

import math

import pytest
from scipy import stats

from repro.distributions import (
    binomial_tail,
    hagerup_rub_tail,
    log_hagerup_rub_tail,
)
from repro.errors import ConfigurationError


class TestExactTail:
    def test_matches_direct_sum(self):
        m, p, g = 20, 0.1, 4
        direct = sum(math.comb(m, k) * p ** k * (1 - p) ** (m - k)
                     for k in range(g, m + 1))
        assert binomial_tail(m, p, g) == pytest.approx(direct, rel=1e-12)

    def test_g_zero_is_one(self):
        assert binomial_tail(100, 0.3, 0) == 1.0

    def test_p_zero(self):
        assert binomial_tail(100, 0.0, 1) == 0.0

    def test_p_one(self):
        assert binomial_tail(10, 1.0, 10) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            binomial_tail(0, 0.5, 0)
        with pytest.raises(ConfigurationError):
            binomial_tail(10, 0.5, 11)
        with pytest.raises(ConfigurationError):
            binomial_tail(10, 1.5, 2)
        with pytest.raises(ConfigurationError):
            binomial_tail(10, 0.5, -1)


class TestHagerupRub:
    def test_upper_bounds_exact_tail(self):
        # The HR bound must dominate the exact tail wherever it applies.
        for m, p, g in [(1200, 0.002, 12), (100, 0.05, 20),
                        (50, 0.01, 5), (1200, 0.008, 12)]:
            assert hagerup_rub_tail(m, p, g) >= binomial_tail(m, p, g)

    def test_paper_order_of_magnitude(self):
        # §3.3 example: N=28, M=1200, g=12, p_glitch ~ b_glitch gives
        # p_error ~ 1e-4..1e-3; sanity-check the formula at p=0.002.
        bound = hagerup_rub_tail(1200, 0.002, 12)
        assert 1e-6 < bound < 1e-2

    def test_trivial_when_precondition_fails(self):
        # g/M <= p: bound saturates at 1 (paper's Table 2 rows N>=30).
        assert hagerup_rub_tail(1200, 0.02, 12) == 1.0
        assert hagerup_rub_tail(1200, 0.01, 12) == 1.0

    def test_p_zero_gives_zero(self):
        assert hagerup_rub_tail(100, 0.0, 1) == 0.0
        assert hagerup_rub_tail(100, 0.0, 0) == 1.0

    def test_g_equals_m(self):
        # ((M-Mp)/(M-g))^(M-g) -> 1; bound = p^M... check no crash and
        # correct value (Mp/g)^g = p^M when g = M.
        m, p = 10, 0.1
        assert hagerup_rub_tail(m, p, m) == pytest.approx(p ** m, rel=1e-9)

    def test_log_version_consistent(self):
        m, p, g = 1200, 0.003, 12
        assert math.exp(log_hagerup_rub_tail(m, p, g)) == pytest.approx(
            hagerup_rub_tail(m, p, g), rel=1e-12)

    def test_deep_tail_stays_in_log_space(self):
        # With p tiny the linear bound underflows but the log survives.
        log_bound = log_hagerup_rub_tail(100_000, 1e-8, 100)
        assert log_bound < -500.0
        assert hagerup_rub_tail(100_000, 1e-8, 100) == 0.0

    def test_monotone_in_p(self):
        values = [hagerup_rub_tail(1200, p, 12)
                  for p in (0.001, 0.002, 0.004, 0.008)]
        assert values == sorted(values)

    def test_tighter_than_markov_for_small_p(self):
        m, p, g = 1200, 0.002, 12
        markov = m * p / g
        assert hagerup_rub_tail(m, p, g) < markov

    def test_matches_scipy_shape(self):
        # The exact tail should track scipy's sf.
        m, p, g = 500, 0.01, 10
        assert binomial_tail(m, p, g) == pytest.approx(
            float(stats.binom.sf(g - 1, m, p)), rel=1e-12)
