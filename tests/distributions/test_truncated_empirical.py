"""Truncated and Empirical distribution unit tests."""

import math

import numpy as np
import pytest

from repro.distributions import (
    Deterministic,
    Empirical,
    Gamma,
    LogNormal,
    Pareto,
    Truncated,
)
from repro.errors import ConfigurationError


class TestTruncated:
    def test_support_and_mass(self):
        t = Truncated(Gamma(4.0, 2.0), low=1.0, high=4.0)
        assert t.support == (1.0, 4.0)
        assert float(t.cdf(1.0)) == pytest.approx(0.0, abs=1e-12)
        assert float(t.cdf(4.0)) == pytest.approx(1.0, abs=1e-12)

    def test_pdf_renormalised(self):
        base = Gamma(4.0, 2.0)
        t = Truncated(base, low=1.0, high=4.0)
        x = np.linspace(1.0, 4.0, 20_001)
        integral = np.trapezoid(t.pdf(x), x)
        assert integral == pytest.approx(1.0, abs=1e-6)

    def test_moments_by_quadrature_match_sampling(self, rng):
        t = Truncated(LogNormal.from_mean_std(10.0, 8.0), low=0.0,
                      high=40.0)
        s = t.sample(rng, size=400_000)
        assert np.mean(s) == pytest.approx(t.mean(), rel=0.005)
        assert np.var(s) == pytest.approx(t.var(), rel=0.02)

    def test_gives_pareto_an_mgf(self):
        base = Pareto.from_mean_std(200_000.0, 100_000.0)
        t = Truncated(base, low=base.xm, high=2_000_000.0)
        assert t.has_mgf()
        theta = 1e-8
        value = t.log_mgf(theta)
        assert math.isfinite(value)
        # Second-order expansion: theta*mean + theta^2*var/2.
        expected = theta * t.mean() + 0.5 * theta ** 2 * t.var()
        assert value == pytest.approx(expected, rel=1e-3)

    def test_log_mgf_large_theta_no_overflow(self):
        t = Truncated(Gamma(4.0, 2.0), low=0.0, high=10.0)
        value = t.log_mgf(500.0)  # exp(5000) would overflow
        assert math.isfinite(value)
        assert value <= 500.0 * 10.0

    def test_samples_respect_bounds(self, rng):
        t = Truncated(Gamma(2.0, 1.0), low=1.0, high=3.0)
        s = t.sample(rng, size=20_000)
        assert np.all((s >= 1.0) & (s <= 3.0))

    def test_ppf_roundtrip(self):
        t = Truncated(Gamma(3.0, 1.0), low=0.5, high=6.0)
        q = np.array([0.05, 0.5, 0.95])
        assert t.cdf(t.ppf(q)) == pytest.approx(q, abs=1e-9)

    def test_rejects_bad_windows(self):
        g = Gamma(2.0, 1.0)
        with pytest.raises(ConfigurationError):
            Truncated(g, low=3.0, high=3.0)
        with pytest.raises(ConfigurationError):
            Truncated(g, low=1.0, high=math.inf)
        with pytest.raises(ConfigurationError):
            # Pareto has no mass below xm.
            Truncated(Pareto(5.0, 3.0), low=1.0, high=4.0)


class TestEmpirical:
    def test_moments_match_sample(self):
        data = [1.0, 2.0, 3.0, 4.0]
        e = Empirical(data)
        assert e.mean() == pytest.approx(2.5)
        assert e.var() == pytest.approx(np.var(data))

    def test_cdf_steps(self):
        e = Empirical([1.0, 2.0, 3.0])
        assert float(e.cdf(0.5)) == 0.0
        assert float(e.cdf(1.0)) == pytest.approx(1 / 3)
        assert float(e.cdf(2.5)) == pytest.approx(2 / 3)
        assert float(e.cdf(3.0)) == 1.0

    def test_ppf_picks_order_statistics(self):
        e = Empirical([10.0, 20.0, 30.0, 40.0])
        assert float(e.ppf(0.25)) == 10.0
        assert float(e.ppf(1.0)) == 40.0

    def test_resampling_stays_in_sample(self, rng):
        data = np.array([1.0, 5.0, 9.0])
        e = Empirical(data)
        drawn = e.sample(rng, size=1000)
        assert set(np.unique(drawn)) <= set(data)

    def test_log_mgf_is_sample_average(self):
        e = Empirical([0.0, 1.0])
        theta = 2.0
        expected = math.log(0.5 * (1.0 + math.exp(2.0)))
        assert e.log_mgf(theta) == pytest.approx(expected)

    def test_log_mgf_no_overflow(self):
        e = Empirical([900.0, 1000.0])
        value = e.log_mgf(10.0)  # exp(10000) overflows naively
        assert math.isfinite(value)
        assert value == pytest.approx(
            10_000.0 + math.log(0.5 * (1 + math.exp(-1000.0))), rel=1e-12)

    def test_rejects_degenerate_samples(self):
        with pytest.raises(ConfigurationError):
            Empirical([1.0])
        with pytest.raises(ConfigurationError):
            Empirical([2.0, 2.0, 2.0])
        with pytest.raises(ConfigurationError):
            Empirical([1.0, math.nan])

    def test_distinct_subnormal_samples_are_not_degenerate(self):
        # Distinct samples this tiny make np.var underflow to exactly
        # 0.0; degeneracy must be judged on the values, not the
        # variance.
        e = Empirical([0.0, 7.585714701943343e-242, 2.2250738585e-313])
        assert e.var() == 0.0
        assert e.log_mgf(0.0) == pytest.approx(0.0)
        assert e.log_mgf(0.1) >= 0.1 * e.mean() - 1e-9


class TestDeterministic:
    def test_point_mass(self):
        d = Deterministic(3.0)
        assert d.mean() == 3.0
        assert d.var() == 0.0
        assert float(d.cdf(2.999)) == 0.0
        assert float(d.cdf(3.0)) == 1.0

    def test_log_mgf_linear(self):
        d = Deterministic(0.10932)  # the SEEK constant
        assert d.log_mgf(2.0) == pytest.approx(0.21864)
        assert d.theta_sup == math.inf

    def test_sampling_constant(self, rng):
        d = Deterministic(7.0)
        assert d.sample(rng) == 7.0
        assert np.all(d.sample(rng, size=5) == 7.0)

    def test_rejects_non_finite(self):
        with pytest.raises(ConfigurationError):
            Deterministic(math.inf)
