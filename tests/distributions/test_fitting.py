"""Distribution-fitting tests."""

import numpy as np
import pytest

from repro.distributions import Gamma, LogNormal
from repro.distributions.fit import best_fit, fit_fragment_sizes
from repro.errors import ConfigurationError


class TestFitting:
    def test_recovers_gamma_data(self, rng):
        truth = Gamma.from_mean_std(200_000.0, 100_000.0)
        sample = truth.sample(rng, size=20_000)
        winner = best_fit(sample)
        assert winner.name == "gamma"
        assert winner.distribution.mean() == pytest.approx(200_000.0,
                                                           rel=0.03)
        assert winner.ks_pvalue > 0.01

    def test_recovers_lognormal_data(self, rng):
        truth = LogNormal.from_mean_std(200_000.0, 150_000.0)
        sample = truth.sample(rng, size=20_000)
        winner = best_fit(sample)
        assert winner.name == "lognormal"

    def test_results_sorted_by_ks(self, rng):
        sample = Gamma.from_mean_std(10.0, 3.0).sample(rng, 5000)
        results = fit_fragment_sizes(sample)
        stats_ = [r.ks_statistic for r in results]
        assert stats_ == sorted(stats_)
        assert {r.name for r in results} == {"gamma", "lognormal",
                                             "pareto"}

    def test_cap_makes_heavy_tails_chernoff_ready(self, rng):
        sample = Gamma.from_mean_std(200_000.0, 100_000.0).sample(
            rng, 5000)
        cap = float(np.max(sample)) * 2
        results = fit_fragment_sizes(sample, cap=cap)
        for result in results:
            assert result.distribution.has_mgf(), result.name

    def test_without_cap_heavy_tails_lack_mgf(self, rng):
        sample = Gamma.from_mean_std(10.0, 3.0).sample(rng, 2000)
        by_name = {r.name: r for r in fit_fragment_sizes(sample)}
        assert by_name["gamma"].distribution.has_mgf()
        assert not by_name["lognormal"].distribution.has_mgf()

    def test_fitted_law_drives_admission(self, viking, rng):
        # The §2.3 loop: sample -> fit -> model -> N_max.
        from repro.core import RoundServiceTimeModel, n_max_plate

        sample = Gamma.from_mean_std(200_000.0, 100_000.0).sample(
            rng, 30_000)
        winner = best_fit(sample)
        model = RoundServiceTimeModel.for_disk(viking,
                                               winner.distribution)
        assert n_max_plate(model, 1.0, 0.01) in (25, 26, 27)

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            fit_fragment_sizes([1.0] * 5)  # too few
        with pytest.raises(ConfigurationError):
            fit_fragment_sizes([-1.0] * 30)
        with pytest.raises(ConfigurationError):
            fit_fragment_sizes([5.0] * 30)  # zero variance
        sample = list(rng.gamma(4.0, 50.0, size=100))
        with pytest.raises(ConfigurationError):
            fit_fragment_sizes(sample, cap=1.0)  # cap below max
