"""Lognormal and Pareto unit tests (the heavy-tailed alternatives)."""

import math

import numpy as np
import pytest

from repro.distributions import LogNormal, Pareto
from repro.errors import ConfigurationError, DistributionError


class TestLogNormal:
    def test_moment_matching(self):
        ln = LogNormal.from_mean_var(200_000.0, 100_000.0 ** 2)
        assert ln.mean() == pytest.approx(200_000.0)
        assert ln.var() == pytest.approx(100_000.0 ** 2, rel=1e-9)

    def test_closed_form_raw_moments(self):
        ln = LogNormal(mu=1.0, sigma=0.5)
        assert ln.moment(1) == pytest.approx(ln.mean())
        assert ln.moment(2) == pytest.approx(ln.var() + ln.mean() ** 2)

    def test_no_mgf(self):
        ln = LogNormal(0.0, 1.0)
        assert not ln.has_mgf()
        with pytest.raises(DistributionError):
            ln.log_mgf(0.1)

    def test_cdf_ppf_roundtrip(self):
        ln = LogNormal(2.0, 0.7)
        q = np.array([0.05, 0.5, 0.95])
        assert ln.cdf(ln.ppf(q)) == pytest.approx(q, abs=1e-12)

    def test_sampling_matches_moments(self, rng):
        ln = LogNormal.from_mean_std(100.0, 30.0)
        s = ln.sample(rng, size=300_000)
        assert np.mean(s) == pytest.approx(100.0, rel=0.01)
        assert np.std(s) == pytest.approx(30.0, rel=0.03)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            LogNormal(mu=math.nan, sigma=1.0)
        with pytest.raises(ConfigurationError):
            LogNormal(mu=0.0, sigma=0.0)
        with pytest.raises(ConfigurationError):
            LogNormal.from_mean_var(-5.0, 1.0)


class TestPareto:
    def test_moment_matching(self):
        p = Pareto.from_mean_std(200_000.0, 100_000.0)
        assert p.mean() == pytest.approx(200_000.0, rel=1e-12)
        assert p.std() == pytest.approx(100_000.0, rel=1e-9)
        assert p.alpha > 2.0  # variance exists

    def test_tail_is_power_law(self):
        p = Pareto(xm=1.0, alpha=2.5)
        x = 10.0
        assert float(p.sf(x)) == pytest.approx(x ** -2.5)

    def test_infinite_moments_raise(self):
        with pytest.raises(DistributionError):
            Pareto(1.0, 0.9).mean()
        with pytest.raises(DistributionError):
            Pareto(1.0, 1.5).var()

    def test_no_mgf(self):
        p = Pareto(1.0, 3.0)
        assert not p.has_mgf()
        with pytest.raises(DistributionError):
            p.log_mgf(0.01)

    def test_ppf_inverts_cdf(self):
        p = Pareto(2.0, 3.0)
        q = np.array([0.1, 0.5, 0.9, 0.999])
        assert p.cdf(p.ppf(q)) == pytest.approx(q, abs=1e-12)

    def test_support_starts_at_xm(self):
        p = Pareto(2.0, 3.0)
        assert p.support[0] == 2.0
        assert p.pdf(1.9) == 0.0
        assert float(p.pdf(2.1)) > 0.0

    def test_sampling_stays_above_xm(self, rng):
        p = Pareto(5.0, 4.0)
        s = p.sample(rng, size=50_000)
        assert np.all(s >= 5.0)
        assert np.mean(s) == pytest.approx(p.mean(), rel=0.02)
