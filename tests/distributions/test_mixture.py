"""Mixture distribution tests."""

import math

import numpy as np
import pytest

from repro.distributions import Gamma, LogNormal, Mixture, Uniform
from repro.errors import ConfigurationError, DistributionError


@pytest.fixture
def audio_video():
    """Two-class mixture: light audio, heavy video."""
    return Mixture([
        (0.3, Gamma.from_mean_std(64_000.0, 20_000.0)),
        (0.7, Gamma.from_mean_std(300_000.0, 150_000.0)),
    ])


class TestMoments:
    def test_mean_is_weighted(self, audio_video):
        expected = 0.3 * 64_000.0 + 0.7 * 300_000.0
        assert audio_video.mean() == pytest.approx(expected)

    def test_variance_includes_between_class_term(self, audio_video):
        # Var > weighted within-class variance (law of total variance).
        within = 0.3 * 20_000.0 ** 2 + 0.7 * 150_000.0 ** 2
        assert audio_video.var() > within

    def test_law_of_total_variance(self, audio_video):
        means = np.array([64_000.0, 300_000.0])
        weights = np.array([0.3, 0.7])
        within = 0.3 * 20_000.0 ** 2 + 0.7 * 150_000.0 ** 2
        grand = float(weights @ means)
        between = float(weights @ (means - grand) ** 2)
        assert audio_video.var() == pytest.approx(within + between,
                                                  rel=1e-9)

    def test_weights_normalised(self):
        m = Mixture([(2.0, Gamma(1.0, 1.0)), (6.0, Gamma(2.0, 1.0))])
        assert m.weights == pytest.approx([0.25, 0.75])

    def test_raw_moments(self, audio_video):
        assert audio_video.moment(1) == pytest.approx(audio_video.mean())
        assert audio_video.moment(2) == pytest.approx(
            audio_video.second_moment())


class TestDensities:
    def test_pdf_integrates_to_one(self, audio_video):
        x = np.linspace(0.0, 2e6, 400_001)
        assert np.trapezoid(audio_video.pdf(x), x) == pytest.approx(
            1.0, abs=1e-4)

    def test_cdf_is_weighted(self, audio_video):
        x = 150_000.0
        parts = [d.cdf(x) for d in audio_video.components]
        expected = 0.3 * float(parts[0]) + 0.7 * float(parts[1])
        assert float(audio_video.cdf(x)) == pytest.approx(expected)

    def test_bimodal_shape(self):
        m = Mixture([(0.5, Gamma.from_mean_std(10.0, 1.0)),
                     (0.5, Gamma.from_mean_std(100.0, 5.0))])
        # Density has mass near both modes and a trough between.
        assert float(m.pdf(10.0)) > 10 * float(m.pdf(50.0))
        assert float(m.pdf(100.0)) > 10 * float(m.pdf(50.0))

    def test_ppf_inverts_cdf(self, audio_video):
        q = np.array([0.05, 0.3, 0.5, 0.9, 0.99])
        x = audio_video.ppf(q)
        assert audio_video.cdf(x) == pytest.approx(q, abs=1e-7)
        assert np.all(np.diff(x) > 0)

    def test_ppf_validation(self, audio_video):
        with pytest.raises(ConfigurationError):
            audio_video.ppf([1.5])


class TestSampling:
    def test_sample_moments(self, audio_video, rng):
        s = audio_video.sample(rng, size=300_000)
        assert np.mean(s) == pytest.approx(audio_video.mean(), rel=0.01)
        assert np.std(s) == pytest.approx(audio_video.std(), rel=0.02)

    def test_scalar_sample(self, audio_video, rng):
        value = audio_video.sample(rng)
        assert np.isscalar(value) or np.ndim(value) == 0

    def test_shape_preserved(self, audio_video, rng):
        s = audio_video.sample(rng, size=(7, 3))
        assert s.shape == (7, 3)


class TestTransform:
    def test_log_mgf_is_weighted_logsumexp(self, audio_video):
        theta = 1e-6
        parts = [math.exp(d.log_mgf(theta))
                 for d in audio_video.components]
        expected = math.log(0.3 * parts[0] + 0.7 * parts[1])
        assert audio_video.log_mgf(theta) == pytest.approx(expected,
                                                           rel=1e-9)

    def test_theta_sup_min_over_components(self):
        m = Mixture([(0.5, Gamma(1.0, 2.0)), (0.5, Gamma(1.0, 5.0))])
        assert m.theta_sup == 2.0
        assert math.isinf(m.log_mgf(2.0))

    def test_mgf_less_component_rejected(self):
        m = Mixture([(0.5, Gamma(1.0, 1.0)),
                     (0.5, LogNormal(0.0, 1.0))])
        with pytest.raises(DistributionError):
            m.theta_sup

    def test_uniform_components_unbounded_domain(self):
        m = Mixture([(0.5, Uniform(0.0, 1.0)), (0.5, Uniform(2.0, 3.0))])
        assert math.isinf(m.theta_sup)
        assert math.isfinite(m.log_mgf(50.0))


class TestValidation:
    def test_empty_mixture(self):
        with pytest.raises(ConfigurationError):
            Mixture([])

    def test_non_positive_weight(self):
        with pytest.raises(ConfigurationError):
            Mixture([(0.0, Gamma(1.0, 1.0))])

    def test_support_is_union_hull(self):
        m = Mixture([(0.5, Uniform(0.0, 1.0)), (0.5, Uniform(5.0, 6.0))])
        assert m.support == (0.0, 6.0)
