"""Gamma distribution unit tests."""

import math

import numpy as np
import pytest

from repro.distributions import Gamma
from repro.errors import ConfigurationError


class TestConstruction:
    def test_moment_matching_recovers_mean_and_var(self):
        g = Gamma.from_mean_var(3.0, 0.5)
        assert g.mean() == pytest.approx(3.0)
        assert g.var() == pytest.approx(0.5)

    def test_paper_parameterisation(self):
        # eq. (3.1.2): alpha = E/Var, beta = E^2/Var.
        g = Gamma.from_mean_var(0.02174, 0.00011815)
        assert g.rate == pytest.approx(0.02174 / 0.00011815)
        assert g.shape == pytest.approx(0.02174 ** 2 / 0.00011815)

    def test_from_mean_std(self):
        g = Gamma.from_mean_std(200_000.0, 100_000.0)
        assert g.shape == pytest.approx(4.0)
        assert g.std() == pytest.approx(100_000.0)

    @pytest.mark.parametrize("shape,rate", [(0.0, 1.0), (-1.0, 1.0),
                                            (1.0, 0.0), (1.0, -2.0)])
    def test_rejects_non_positive_parameters(self, shape, rate):
        with pytest.raises(ConfigurationError):
            Gamma(shape, rate)

    def test_rejects_non_positive_moments(self):
        with pytest.raises(ConfigurationError):
            Gamma.from_mean_var(-1.0, 1.0)
        with pytest.raises(ConfigurationError):
            Gamma.from_mean_var(1.0, 0.0)


class TestDensities:
    def test_pdf_integrates_to_one(self):
        g = Gamma(shape=4.0, rate=2.0)
        x = np.linspace(0.0, 40.0, 200_001)
        integral = np.trapezoid(g.pdf(x), x)
        assert integral == pytest.approx(1.0, abs=1e-6)

    def test_cdf_ppf_roundtrip(self):
        g = Gamma(shape=2.5, rate=0.7)
        q = np.array([0.01, 0.25, 0.5, 0.75, 0.99])
        assert g.cdf(g.ppf(q)) == pytest.approx(q, abs=1e-10)

    def test_percentile_used_by_eq_4_1(self):
        # 99-percentile of the Table 1 size law, quoted implicitly via
        # T_trans^max = 71.7 ms at rate C_min/ROT.
        g = Gamma.from_mean_std(200_000.0, 100_000.0)
        p99 = float(g.ppf(0.99))
        rate = 58368.0 / 8.34e-3
        assert p99 / rate == pytest.approx(0.0717, abs=5e-4)


class TestMoments:
    def test_closed_form_raw_moments(self):
        g = Gamma(shape=3.0, rate=2.0)
        # E[X^2] = beta(beta+1)/alpha^2
        assert g.moment(2) == pytest.approx(3.0 * 4.0 / 4.0)
        assert g.moment(0) == pytest.approx(1.0)
        assert g.moment(1) == pytest.approx(g.mean())

    def test_moment_rejects_negative_order(self):
        with pytest.raises(ConfigurationError):
            Gamma(1.0, 1.0).moment(-1)

    def test_sample_moments_match(self, rng):
        g = Gamma.from_mean_std(10.0, 3.0)
        sample = g.sample(rng, size=200_000)
        assert np.mean(sample) == pytest.approx(10.0, rel=0.01)
        assert np.std(sample) == pytest.approx(3.0, rel=0.02)


class TestTransform:
    def test_log_mgf_matches_paper_lst_form(self):
        # T*(s) = (alpha/(alpha+s))^beta  <=>  M(theta)=(alpha/(alpha-theta))^beta
        g = Gamma(shape=2.0, rate=5.0)
        theta = 1.3
        expected = 2.0 * math.log(5.0 / (5.0 - theta))
        assert g.log_mgf(theta) == pytest.approx(expected)

    def test_log_mgf_infinite_at_pole(self):
        g = Gamma(shape=2.0, rate=5.0)
        assert math.isinf(g.log_mgf(5.0))
        assert g.theta_sup == 5.0

    def test_log_mgf_negative_theta_is_lst(self):
        g = Gamma(shape=1.5, rate=2.0)
        s = 0.7
        assert math.exp(g.log_mgf(-s)) == pytest.approx(
            (2.0 / (2.0 + s)) ** 1.5)

    def test_mgf_derivative_at_zero_is_mean(self):
        g = Gamma(shape=4.0, rate=3.0)
        h = 1e-6
        numeric = (g.log_mgf(h) - g.log_mgf(-h)) / (2 * h)
        assert numeric == pytest.approx(g.mean(), rel=1e-5)
