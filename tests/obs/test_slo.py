"""The ε error-budget tracker: budget inversion, burn rates, alerts."""

import math

import pytest

from repro.distributions import binomial_tail
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.obs.slo import (
    SLOTracker,
    slo_report_from_records,
    slot_glitch_budget,
)


class TestSlotGlitchBudget:
    def test_inverts_the_exact_binomial_tail(self):
        budget = slot_glitch_budget(1200, 12, 0.01)
        # At the returned rate the tail is at most epsilon (the
        # bisection keeps the conservative side) and within a hair.
        tail = binomial_tail(1200, budget, 13)
        assert tail <= 0.01
        assert tail == pytest.approx(0.01, rel=1e-6)

    def test_monotone_in_epsilon(self):
        loose = slot_glitch_budget(1200, 12, 0.1)
        tight = slot_glitch_budget(1200, 12, 0.001)
        assert tight < loose

    def test_degenerate_shape_saturates(self):
        # With g = m - 1 even glitching every slot may satisfy eps.
        assert slot_glitch_budget(2, 1, 0.999999) <= 1.0

    @pytest.mark.parametrize("m,g,eps", [
        (0, 0, 0.01), (10, 10, 0.01), (10, -1, 0.01),
        (10, 2, 0.0), (10, 2, 1.0),
    ])
    def test_validation(self, m, g, eps):
        with pytest.raises(ConfigurationError):
            slot_glitch_budget(m, g, eps)


class TestSLOTracker:
    def test_burn_rate_is_hand_computable(self):
        tracker = SLOTracker(0.01, fast_window=4, slow_window=8,
                             page_burn=6.0, warn_burn=1.0)
        # 100 slots/round at budget 0.01 -> 1 allowed bad slot/round.
        for _ in range(4):
            tracker.observe(2, 100)
        # 8 bad over 4 allowed -> burn 2.0 in both windows.
        assert tracker.fast_burn == pytest.approx(2.0)
        assert tracker.slow_burn == pytest.approx(2.0)

    def test_storm_pages_and_leak_warns(self):
        tracker = SLOTracker(0.01, fast_window=4, slow_window=16,
                             page_burn=6.0, warn_burn=1.0)
        for _ in range(16):
            assert tracker.observe(0, 100) == "ok"
        # Slow leak: 2x sustainable, not enough for the fast page.
        state = "ok"
        for _ in range(16):
            state = tracker.observe(2, 100)
        assert state == "warn"
        assert tracker.warnings == 1
        # Storm: 10x sustainable torches the fast window.
        for _ in range(4):
            state = tracker.observe(10, 100)
        assert state == "page"
        assert tracker.pages == 1
        assert tracker.first_page_round is None  # no round indices fed

    def test_recovery_returns_to_ok(self):
        tracker = SLOTracker(0.01, fast_window=2, slow_window=4)
        tracker.observe(50, 100)
        assert tracker.state == "page"
        for _ in range(4):
            tracker.observe(0, 100)
        assert tracker.state == "ok"

    def test_degraded_rounds_use_the_degraded_budget(self):
        tracker = SLOTracker(0.001, degraded_budget=0.5,
                             fast_window=1, slow_window=1)
        # 10/100 bad: 100x the healthy budget, 0.2x the degraded one.
        assert tracker.observe(10, 100, degraded=True) == "ok"
        assert tracker.degraded_rounds == 1
        assert tracker.observe(10, 100, degraded=False) == "page"

    def test_zero_allowed_with_bad_is_infinite_burn(self):
        tracker = SLOTracker(0.01, fast_window=2, slow_window=2)
        tracker._entries.append((1, 0, 0.0))
        assert math.isinf(tracker.burn_rate(2))

    def test_budget_accounting(self):
        tracker = SLOTracker(0.01, fast_window=4, slow_window=4)
        for _ in range(10):
            tracker.observe(1, 100)  # spending at exactly 1.0x
        assert tracker.budget_spent_fraction() == pytest.approx(1.0)
        assert tracker.budget_remaining_fraction() == pytest.approx(
            0.0)

    def test_first_page_round_records_detection(self):
        tracker = SLOTracker(0.01, fast_window=2, slow_window=4)
        tracker.observe(0, 100, round_index=7)
        tracker.observe(60, 100, round_index=8)
        assert tracker.state == "page"
        assert tracker.first_page_round == 8

    def test_observe_validates_counts(self):
        tracker = SLOTracker(0.01)
        with pytest.raises(ConfigurationError):
            tracker.observe(5, 3)
        with pytest.raises(ConfigurationError):
            tracker.observe(-1, 3)

    @pytest.mark.parametrize("kwargs", [
        dict(budget=0.0), dict(budget=1.5),
        dict(budget=0.01, degraded_budget=0.0),
        dict(budget=0.01, fast_window=0),
        dict(budget=0.01, fast_window=8, slow_window=4),
        dict(budget=0.01, warn_burn=0.0),
        dict(budget=0.01, warn_burn=3.0, page_burn=2.0),
    ])
    def test_constructor_validation(self, kwargs):
        budget = kwargs.pop("budget")
        with pytest.raises(ConfigurationError):
            SLOTracker(budget, **kwargs)

    def test_snapshot_round_trip_is_exact(self):
        tracker = SLOTracker(0.01, degraded_budget=0.02,
                             fast_window=3, slow_window=6)
        for i in range(10):
            tracker.observe(i % 3, 50, degraded=(i % 4 == 0),
                            round_index=i)
        data = tracker.to_dict()
        clone = SLOTracker.from_dict(data)
        assert clone.to_dict() == data
        assert clone.state == tracker.state
        assert clone.fast_burn == pytest.approx(tracker.fast_burn)

    def test_restore_refuses_unknown_state(self):
        data = SLOTracker(0.01).to_dict()
        data["state"] = "on-fire"
        with pytest.raises(ConfigurationError):
            SLOTracker.from_dict(data)

    def test_publish_is_idempotent(self):
        registry = MetricsRegistry()
        tracker = SLOTracker(0.01, fast_window=2, slow_window=4)
        tracker.observe(60, 100)  # page
        tracker.publish(registry)
        tracker.publish(registry)
        snap = registry.snapshot()
        assert snap["slo_pages_total"]["value"] == 1
        assert snap["slo_state"]["value"] == 2
        assert snap["slo_burn_rate_fast"]["value"] > 1.0


def _round_record(index, glitched, requests, degraded=False,
                  seq=None):
    return {"kind": "round_observe", "seq": seq, "wall": 0.0,
            "round": index, "disk_rounds": 2, "late_disk_rounds": 0,
            "requests": requests, "glitched": glitched,
            "degraded": degraded, "bound": 1e-6}


class TestOfflineReport:
    def header(self, **over):
        record = {"kind": "run_start", "seq": 0, "wall": 0.0,
                  "seed": None, "schema": 1, "epsilon": 0.01,
                  "delta": 0.01, "m": 1200, "g": 12}
        record.update(over)
        return record

    def test_replays_round_observe_records(self):
        records = [self.header()]
        records += [_round_record(i, 0, 100, seq=i + 1)
                    for i in range(8)]
        records += [_round_record(8 + i, 40, 100, seq=9 + i)
                    for i in range(4)]
        report = slo_report_from_records(records, fast_window=4,
                                         slow_window=8)
        assert report["observed_rounds"] == 12
        assert report["state"] == "page"
        assert report["pages"] == 1
        assert report["first_page_round"] is not None
        assert report["transitions"][-1]["to"] == "page"

    def test_header_supplies_shape_and_args_override(self):
        records = [self.header(epsilon=0.2), _round_record(0, 1, 100)]
        from_header = slo_report_from_records(records)
        assert from_header["epsilon"] == 0.2
        overridden = slo_report_from_records(records, epsilon=0.001)
        assert overridden["epsilon"] == 0.001
        assert (overridden["budget_per_slot"]
                < from_header["budget_per_slot"])

    def test_falls_back_to_sweep_records(self):
        records = [
            self.header(),
            {"kind": "round_dispatch", "t": 0.0, "round": 1,
             "active_streams": 4, "failed_disks": [1]},
            {"kind": "sweep", "t": 0.0, "round": 0, "disk": 0,
             "service": 0.5, "late": False, "served": 50,
             "glitched": 0},
            {"kind": "sweep", "t": 0.0, "round": 0, "disk": 1,
             "service": 0.5, "late": False, "served": 50,
             "glitched": 2},
            {"kind": "sweep", "t": 0.0, "round": 1, "disk": 0,
             "service": 0.5, "late": True, "served": 60,
             "glitched": 5},
        ]
        report = slo_report_from_records(records)
        assert report["observed_rounds"] == 2
        assert report["slots"] == 160
        assert report["glitched_slots"] == 7
        assert report["degraded_rounds"] == 1  # round 1 had a failure

    def test_empty_trace_reports_zero_rounds(self):
        report = slo_report_from_records([self.header()])
        assert report["observed_rounds"] == 0
        assert report["state"] == "ok"
