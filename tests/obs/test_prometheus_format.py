"""Prometheus text exposition-format conformance.

The ``repro serve`` daemon hands :meth:`MetricsRegistry.to_prometheus`
to real scrapers, so the output must be *parseable*, not just
eyeballable: label values escaped (backslash, quote, newline), every
series announced by ``# TYPE`` (and ``# HELP`` when registered),
histograms cumulative with a ``+Inf`` bucket and matching
``_sum``/``_count``.  The checker below re-parses every line with a
strict grammar instead of substring assertions.
"""

import math
import re

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry

NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"
#: One escaped label value: any run of non-special chars or a legal
#: escape sequence (\\, \", \n) -- a raw quote/backslash/newline is a
#: parse error.
VALUE = r'(?:[^"\\\n]|\\\\|\\"|\\n)*'
SAMPLE_RE = re.compile(
    rf'^({NAME})(?:\{{({NAME}="{VALUE}"(?:,{NAME}="{VALUE}")*)\}})?'
    rf' (-?(?:\d+(?:\.\d+)?(?:e[+-]?\d+)?|inf|nan))$', re.IGNORECASE)
LABEL_RE = re.compile(rf'({NAME})="({VALUE})"(?:,|$)')
HELP_RE = re.compile(rf'^# HELP ({NAME}) ((?:[^\\\n]|\\\\|\\n)*)$')
TYPE_RE = re.compile(rf'^# TYPE ({NAME}) (counter|gauge|histogram)$')


def unescape(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        if value[i] == "\\":
            nxt = value[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}[nxt])
            i += 2
        else:
            out.append(value[i])
            i += 1
    return "".join(out)


def parse_exposition(text: str) -> dict:
    """Strictly parse exposition text.

    Returns ``{"samples": {name+labels: float}, "types": {name: kind},
    "help": {name: text}, "labels": {name+labels: dict}}``.  Raises
    AssertionError on any line the grammar rejects, on a ``# TYPE``
    after a sample of that series, or on a duplicate sample.
    """
    samples: dict = {}
    labels_by_key: dict = {}
    types: dict = {}
    helps: dict = {}
    announced_after_sample: list = []
    for line in text.splitlines():
        assert line == line.rstrip(), f"trailing whitespace: {line!r}"
        if not line:
            continue
        if line.startswith("# HELP "):
            match = HELP_RE.match(line)
            assert match, f"malformed HELP line: {line!r}"
            helps[match.group(1)] = match.group(2)
            continue
        if line.startswith("# TYPE "):
            match = TYPE_RE.match(line)
            assert match, f"malformed TYPE line: {line!r}"
            name = match.group(1)
            assert name not in types, f"duplicate TYPE for {name}"
            if any(key.split("{")[0].startswith(name)
                   for key in samples):
                announced_after_sample.append(name)
            types[name] = match.group(2)
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = SAMPLE_RE.match(line)
        assert match, f"malformed sample line: {line!r}"
        name, raw_labels, raw_value = match.groups()
        label_dict = {}
        if raw_labels:
            consumed = sum(
                len(m.group(0)) for m in LABEL_RE.finditer(raw_labels))
            assert consumed == len(raw_labels), (
                f"unparseable label section: {raw_labels!r}")
            for m in LABEL_RE.finditer(raw_labels):
                label_dict[m.group(1)] = unescape(m.group(2))
        key = name + (
            "{" + ",".join(f"{k}={v!r}"
                           for k, v in sorted(label_dict.items())) + "}"
            if label_dict else "")
        assert key not in samples, f"duplicate sample: {key}"
        samples[key] = float(raw_value)
        labels_by_key[key] = label_dict
    assert not announced_after_sample, (
        f"TYPE after samples for {announced_after_sample}")
    return {"samples": samples, "types": types, "help": helps,
            "labels": labels_by_key}


class TestLabelEscaping:
    def test_quotes_backslashes_newlines_round_trip(self):
        registry = MetricsRegistry()
        nasty = 'say "hi"\\path\nnext'
        registry.counter("requests_total", {"query": nasty}).inc(3)
        parsed = parse_exposition(registry.to_prometheus())
        [key] = [k for k in parsed["samples"] if "query" in k]
        assert parsed["labels"][key]["query"] == nasty
        assert parsed["samples"][key] == 3.0

    def test_raw_specials_never_leak_into_the_text(self):
        registry = MetricsRegistry()
        registry.gauge("depth", {"q": 'a"b\\c\nd'}).set(1)
        text = registry.to_prometheus()
        for line in text.splitlines():
            # No literal newline can survive inside a line, and every
            # quote inside the label section must be escaped or a
            # delimiter.
            assert "\n" not in line
            inner = line[line.index('{') + 1:line.rindex('}')] \
                if "{" in line else ""
            stripped = inner.replace('\\\\', '').replace('\\"', '')
            assert stripped.count('"') % 2 == 0

    def test_multiple_escaped_labels_sorted_and_parseable(self):
        registry = MetricsRegistry()
        registry.counter("ops_total",
                         {"b": 'x\\', "a": '"q"'}).inc()
        parsed = parse_exposition(registry.to_prometheus())
        [key] = [k for k in parsed["samples"] if "{" in k]
        assert parsed["labels"][key] == {"a": '"q"', "b": "x\\"}

    def test_label_names_are_validated(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("ok_total", {"bad-name": "v"})


class TestHelpAndType:
    def test_help_and_type_precede_samples(self):
        registry = MetricsRegistry()
        registry.counter("admits_total",
                         help="Streams admitted by the daemon").inc()
        registry.gauge("active_streams", help="Currently active")
        text = registry.to_prometheus()
        parsed = parse_exposition(text)
        assert parsed["types"] == {"admits_total": "counter",
                                   "active_streams": "gauge"}
        assert parsed["help"]["admits_total"] == \
            "Streams admitted by the daemon"
        lines = text.splitlines()
        assert lines.index("# HELP admits_total Streams admitted by "
                           "the daemon") \
            < lines.index("# TYPE admits_total counter")

    def test_help_escapes_backslash_and_newline(self):
        registry = MetricsRegistry()
        registry.counter("c_total", help="line1\nline2\\end").inc()
        parsed = parse_exposition(registry.to_prometheus())
        assert parsed["help"]["c_total"] == "line1\\nline2\\\\end"

    def test_type_emitted_once_per_labelled_family(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", {"op": "admit"}).inc(2)
        registry.counter("ops_total", {"op": "release"}).inc(5)
        text = registry.to_prometheus()
        assert text.count("# TYPE ops_total counter") == 1
        parsed = parse_exposition(text)
        assert parsed["samples"]["ops_total{op='admit'}"] == 2.0
        assert parsed["samples"]["ops_total{op='release'}"] == 5.0

    def test_help_without_registration_is_absent(self):
        registry = MetricsRegistry()
        registry.counter("quiet_total").inc()
        parsed = parse_exposition(registry.to_prometheus())
        assert "quiet_total" not in parsed["help"]
        assert parsed["types"]["quiet_total"] == "counter"


class TestHistogramExposition:
    def test_cumulative_buckets_inf_sum_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", bounds=(0.1, 1.0, 5.0),
                                  help="Admit latency")
        for value in (0.05, 0.5, 0.5, 2.0, 50.0):
            hist.observe(value)
        parsed = parse_exposition(registry.to_prometheus())
        samples = parsed["samples"]
        assert parsed["types"]["lat_seconds"] == "histogram"
        assert samples["lat_seconds_bucket{le='0.1'}"] == 1.0
        assert samples["lat_seconds_bucket{le='1'}"] == 3.0
        assert samples["lat_seconds_bucket{le='5'}"] == 4.0
        assert samples["lat_seconds_bucket{le='+Inf'}"] == 5.0
        assert samples["lat_seconds_count"] == 5.0
        assert samples["lat_seconds_sum"] == pytest.approx(53.05)

    def test_bucket_counts_monotone_and_inf_equals_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds")
        rng_values = [10 ** (i % 7 - 5) * 1.3 for i in range(100)]
        for value in rng_values:
            hist.observe(value)
        parsed = parse_exposition(registry.to_prometheus())
        buckets = [(key, value)
                   for key, value in parsed["samples"].items()
                   if key.startswith("h_seconds_bucket")]
        counts = [value for _k, value in buckets]
        assert counts == sorted(counts)
        assert counts[-1] == parsed["samples"]["h_seconds_count"] == 100
        le_values = [parsed["labels"][key]["le"] for key, _v in buckets]
        assert le_values[-1] == "+Inf"
        assert [float(le) for le in le_values[:-1]] == \
            sorted(float(le) for le in le_values[:-1])

    def test_labelled_histogram_keeps_labels_on_every_series(self):
        registry = MetricsRegistry()
        registry.histogram("rt_seconds", {"disk": "0"},
                           bounds=(1.0,)).observe(0.5)
        parsed = parse_exposition(registry.to_prometheus())
        for suffix in ("_bucket", "_sum", "_count"):
            matching = [key for key in parsed["samples"]
                        if key.startswith(f"rt_seconds{suffix}{{")]
            assert matching, f"missing rt_seconds{suffix} series"
            for key in matching:
                assert parsed["labels"][key]["disk"] == "0"

    def test_infinite_observation_lands_in_inf_bucket_only(self):
        registry = MetricsRegistry()
        hist = registry.histogram("x_seconds", bounds=(1.0,))
        hist.observe(math.inf)
        parsed = parse_exposition(registry.to_prometheus())
        assert parsed["samples"]["x_seconds_bucket{le='1'}"] == 0.0
        assert parsed["samples"]["x_seconds_bucket{le='+Inf'}"] == 1.0


class TestWholeDocument:
    def test_full_registry_parses_strictly(self):
        registry = MetricsRegistry()
        registry.counter("serve_requests_total", {"op": "admit"},
                         help="Requests by op").inc(7)
        registry.counter("serve_requests_total", {"op": "release"}).inc(2)
        registry.gauge("serve_active_streams",
                       help="Admitted right now").set(5)
        registry.histogram("serve_admit_seconds", bounds=(0.001, 0.01),
                           help="Admit call latency").observe(0.002)
        text = registry.to_prometheus()
        assert text.endswith("\n") and not text.endswith("\n\n")
        parsed = parse_exposition(text)
        assert parsed["types"] == {
            "serve_requests_total": "counter",
            "serve_active_streams": "gauge",
            "serve_admit_seconds": "histogram",
        }
        assert parsed["samples"]["serve_active_streams"] == 5.0

    def test_empty_registry_is_empty_document(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestLiveDaemonExposition:
    """The real ``/metrics`` document of a traced serve daemon -- the
    new span/SLO series must survive the strict grammar too."""

    def test_slo_and_trace_series_parse_strictly(self):
        from repro.obs import Tracer
        from repro.serve import (ServeClient, ServeConfig, ServeDaemon,
                                 ServeHandle)

        tracer = Tracer()
        daemon = ServeDaemon(ServeConfig(disks=2), tracer=tracer)
        handle = ServeHandle(daemon)
        handle.start()
        try:
            client = ServeClient(handle.url)
            stream = client.admit()["stream"]
            daemon.tick_round()  # probed: one active stream
            client.release(stream)
            parsed = parse_exposition(client.metrics())
        finally:
            handle.stop()
        samples = parsed["samples"]
        types = parsed["types"]
        # SLO engine: burn rates, state, budget, page/warn counters.
        assert types["slo_state"] == "gauge"
        assert types["slo_pages_total"] == "counter"
        assert samples["slo_state"] == 0.0
        assert samples["slo_burn_rate_fast"] == 0.0
        assert samples["slo_budget_per_slot"] > 0.0
        assert samples["slo_rounds_observed"] == 1.0
        # Trace-loss visibility: emitted/dropped counters + gauges.
        assert types["trace_emitted_total"] == "counter"
        assert types["trace_dropped_total"] == "counter"
        assert samples["trace_emitted_total"] > 0.0
        assert samples["trace_enabled"] == 1.0
        # The pre-existing serve series still parse alongside.
        assert samples["serve_requests_total{op='admit'}"] == 1.0
