"""Counter, Gauge, Histogram and MetricsRegistry tests."""

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, get_registry, reset_registry
from repro.obs.metrics import Counter, Gauge, Histogram, set_registry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("requests_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_decrease(self):
        c = Counter("requests_total")
        with pytest.raises(ConfigurationError):
            c.inc(-1.0)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("active")
        g.set(10.0)
        g.inc(2.0)
        g.dec(5.0)
        assert g.value == 7.0


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram("lat", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]  # last is the +Inf bucket
        assert h.count == 4
        assert h.sum == pytest.approx(105.0)
        assert h.min == 0.5
        assert h.max == 100.0
        assert h.mean == pytest.approx(105.0 / 4)

    def test_value_on_edge_lands_in_its_bucket(self):
        h = Histogram("lat", bounds=(1.0, 2.0))
        h.observe(1.0)  # le="1" includes 1.0
        assert h.counts == [1, 0, 0]

    def test_quantiles(self):
        h = Histogram("lat", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 0.6, 0.7, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0   # bucket upper edge
        assert h.quantile(1.0) == 3.0   # exact max
        assert math.isnan(Histogram("e", bounds=(1.0,)).quantile(0.5))
        with pytest.raises(ConfigurationError):
            h.quantile(1.5)

    def test_empty_mean_is_zero(self):
        assert Histogram("e", bounds=(1.0,)).mean == 0.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=())
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=(1.0, math.inf))


class TestMetricsRegistry:
    def test_same_name_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")
        assert len(reg) == 3

    def test_labels_fork_series(self):
        reg = MetricsRegistry()
        a = reg.gauge("p_late", labels={"n": "8"})
        b = reg.gauge("p_late", labels={"n": "12"})
        assert a is not b
        a.set(0.1)
        b.set(0.2)
        snap = reg.snapshot()
        assert snap['p_late{n="8"}']["value"] == 0.1
        assert snap['p_late{n="12"}']["value"] == 0.2

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")

    def test_bad_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("bad-name")

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "value": 3.0}
        hist = snap["h"]
        assert hist["type"] == "histogram"
        assert hist["count"] == 1
        assert hist["buckets"] == {"1": 0, "2": 1, "inf": 0}

    def test_empty_histogram_snapshot_min_max_none(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0,))
        snap = reg.snapshot()["h"]
        assert snap["min"] is None and snap["max"] is None

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("req_total").inc(5)
        h = reg.histogram("lat", bounds=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        text = reg.to_prometheus()
        assert "# TYPE req_total counter" in text
        assert "req_total 5" in text
        # Buckets are cumulative, capped by the +Inf bucket.
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 2" in text
        assert "lat_count 2" in text

    def test_json_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        path = reg.write_json(tmp_path / "m.json")
        data = json.loads(path.read_text())
        assert data["c"]["value"] == 1.0

    def test_reset_frees_names(self):
        reg = MetricsRegistry()
        reg.counter("x")
        reg.reset()
        reg.gauge("x")  # no type conflict after reset
        assert len(reg) == 1


class TestGlobalRegistry:
    def test_get_set_reset(self):
        original = get_registry()
        try:
            mine = MetricsRegistry()
            assert set_registry(mine) is mine
            assert get_registry() is mine
            mine.counter("x").inc()
            reset_registry()
            assert len(get_registry()) == 0
        finally:
            set_registry(original)

    def test_set_rejects_non_registry(self):
        with pytest.raises(ConfigurationError):
            set_registry(object())
