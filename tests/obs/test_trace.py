"""Tracer ring buffer, JSONL sink, and trace validation tests."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    EVENT_KINDS,
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    MetricsRegistry,
    Tracer,
    get_tracer,
    publish_trace_metrics,
    read_trace,
    read_trace_lenient,
    set_tracer,
    validate_record,
    validate_trace,
)


def make_tracer(**kwargs):
    ticks = iter(range(10_000))
    kwargs.setdefault("clock", lambda: float(next(ticks)))
    return Tracer(**kwargs)


class TestTracer:
    def test_records_carry_envelope(self):
        tracer = make_tracer()
        record = tracer.emit("cache_hit", layer="memory")
        assert record["kind"] == "cache_hit"
        assert record["seq"] == 0
        assert record["wall"] == 0.0
        assert record["layer"] == "memory"
        assert tracer.emitted == 1

    def test_simulation_time_stamped_when_given(self):
        tracer = make_tracer()
        assert "t" not in tracer.emit("run_end")
        assert tracer.emit("fault", t=3.5, desc="x")["t"] == 3.5

    def test_ring_buffer_drops_oldest(self):
        tracer = make_tracer(capacity=3)
        for i in range(5):
            tracer.emit("worker_task", phase="done", task=i)
        records = tracer.records()
        assert [r["task"] for r in records] == [2, 3, 4]
        assert tracer.emitted == 5
        assert tracer.dropped == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Tracer(capacity=0)

    def test_disabled_tracer_emits_nothing(self):
        tracer = make_tracer(enabled=False)
        assert tracer.emit("cache_hit", layer="memory") == {}
        assert tracer.emitted == 0
        assert len(tracer) == 0

    def test_null_tracer_stays_silent_through_a_server_run(self, viking):
        """The instrumentation contract: a server built without a tracer
        must never push a record through NULL_TRACER."""
        from repro.server import MediaServer

        before = NULL_TRACER.emitted
        server = MediaServer([viking], 1.0, admission=None, seed=3)
        server.store_object("clip", [200_000.0] * 10)
        server.open_stream("clip", balance_start=False)
        server.run_rounds(5)
        assert NULL_TRACER.emitted == before

    def test_sink_file_written_and_closed(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = make_tracer(sink=path)
        tracer.start_run(seed=7)
        tracer.emit("fault", t=1.0, desc="disk 0 down")
        tracer.end_run()
        tracer.close()
        tracer.close()  # idempotent
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[0])["kind"] == "run_start"

    def test_sink_survives_ring_overflow(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = make_tracer(capacity=2, sink=path)
        for i in range(6):
            tracer.emit("worker_task", phase="done", task=i)
        tracer.close()
        assert len(path.read_text().splitlines()) == 6
        assert len(tracer.records()) == 2

    def test_file_like_sink_left_open(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with path.open("w", encoding="utf-8") as handle:
            tracer = make_tracer(sink=handle)
            tracer.emit("cache_miss", layer="disk")
            tracer.close()
            assert not handle.closed
        assert "cache_miss" in path.read_text()

    def test_numpy_fields_serialised(self, tmp_path):
        np = pytest.importorskip("numpy")
        path = tmp_path / "t.jsonl"
        tracer = make_tracer(sink=path)
        tracer.emit("bound_solve", seconds=np.float64(0.25))
        tracer.close()
        assert json.loads(path.read_text())["seconds"] == 0.25

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with make_tracer(sink=path) as tracer:
            tracer.emit("run_end")
        assert path.exists()

    def test_global_tracer_install_and_restore(self):
        assert get_tracer() is NULL_TRACER
        mine = make_tracer()
        try:
            assert set_tracer(mine) is mine
            assert get_tracer() is mine
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER
        with pytest.raises(ConfigurationError):
            set_tracer("not a tracer")


class TestValidation:
    def _valid_trace(self):
        tracer = make_tracer()
        tracer.start_run(seed=1)
        tracer.emit("round_dispatch", t=0.0, round=0, active_streams=2,
                    failed_disks=[])
        tracer.emit("sweep", t=0.9, round=0, disk=0, service=0.9,
                    late=False, served=2, glitched=0)
        tracer.end_run()
        return tracer.records()

    def test_valid_trace_passes(self):
        assert validate_trace(self._valid_trace()) == []

    def test_every_catalogued_kind_is_emittable(self):
        tracer = make_tracer()
        tracer.start_run(seed=0)
        for kind, fields in EVENT_KINDS.items():
            if kind == "run_start":
                continue
            tracer.emit(kind, **{f: 0 for f in fields})
        assert validate_trace(tracer.records()) == []

    def test_empty_trace_flagged(self):
        assert validate_trace([]) == ["trace is empty"]

    def test_missing_header_flagged(self):
        records = self._valid_trace()[1:]
        problems = validate_trace(records)
        assert any("run_start" in p for p in problems)

    def test_wrong_schema_flagged(self):
        records = self._valid_trace()
        records[0]["schema"] = TRACE_SCHEMA_VERSION + 1
        assert any("schema" in p for p in validate_trace(records))

    def test_non_increasing_seq_flagged(self):
        records = self._valid_trace()
        records[2]["seq"] = records[1]["seq"]
        assert any("not increasing" in p for p in validate_trace(records))

    def test_unknown_kind_and_missing_fields(self):
        assert validate_record({"kind": "no_such_kind"}) \
            == ["record: unknown kind 'no_such_kind'"]
        assert validate_record({"seq": 0, "wall": 0.0}) \
            == ["record: missing or non-string 'kind'"]
        problems = validate_record(
            {"kind": "sweep", "seq": 0, "wall": 0.0}, index=4)
        assert any("missing numeric 't'" in p for p in problems)
        assert any("'disk'" in p for p in problems)

    def test_read_trace_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = make_tracer(sink=path)
        tracer.start_run(seed=9)
        tracer.end_run()
        tracer.close()
        records = read_trace(path)
        assert validate_trace(records) == []
        assert records[0]["seed"] == 9

    def test_read_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "run_end"}\nnot json\n')
        with pytest.raises(ConfigurationError):
            read_trace(path)
        path.write_text('[1, 2, 3]\n')
        with pytest.raises(ConfigurationError):
            read_trace(path)


class TestLenientRead:
    """read_trace_lenient: post-mortem parsing of damaged JSONL."""

    def test_clean_trace_reads_without_problems(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = make_tracer(sink=path)
        tracer.start_run(seed=3)
        tracer.end_run()
        tracer.close()
        records, problems = read_trace_lenient(path)
        assert problems == []
        assert [r["kind"] for r in records] == ["run_start", "run_end"]

    def test_truncated_final_line_diagnosed_and_prefix_kept(
            self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = make_tracer(sink=path)
        tracer.start_run(seed=3)
        tracer.emit("fault", t=1.0, desc="disk 0 down")
        tracer.close()
        # Simulate a SIGKILL mid-write: chop the last line in half.
        text = path.read_text()
        path.write_text(text[:len(text) - 25])
        records, problems = read_trace_lenient(path)
        assert [r["kind"] for r in records] == ["run_start"]
        assert len(problems) == 1
        assert "truncated final record" in problems[0]
        assert "line 2" in problems[0]

    def test_mid_file_garbage_skipped_with_notice(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "run_end"}\n'
                        'not json at all\n'
                        '[1, 2]\n'
                        '{"kind": "run_end"}\n')
        records, problems = read_trace_lenient(path)
        assert len(records) == 2
        assert any("line 2: unparseable record skipped" in p
                   for p in problems)
        assert any("line 3: non-object record skipped" in p
                   for p in problems)

    def test_empty_and_blank_files_yield_nothing(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert read_trace_lenient(path) == ([], [])
        path.write_text("\n  \n\n")
        assert read_trace_lenient(path) == ([], [])


class TestPublishTraceMetrics:
    def test_counters_track_tracer_totals_idempotently(self):
        registry = MetricsRegistry()
        tracer = make_tracer(capacity=2)
        for i in range(5):
            tracer.emit("worker_task", phase="done", task=i)
        publish_trace_metrics(registry, tracer)
        publish_trace_metrics(registry, tracer)  # scrape twice
        snap = registry.snapshot()
        assert snap["trace_emitted_total"]["value"] == 5
        assert snap["trace_dropped_total"]["value"] == 3
        assert snap["trace_buffered_records"]["value"] == 2
        assert snap["trace_ring_capacity"]["value"] == 2
        assert snap["trace_enabled"]["value"] == 1

    def test_counters_advance_by_delta_on_later_scrapes(self):
        registry = MetricsRegistry()
        tracer = make_tracer()
        tracer.emit("run_end")
        publish_trace_metrics(registry, tracer)
        tracer.emit("run_end")
        tracer.emit("run_end")
        publish_trace_metrics(registry, tracer)
        snap = registry.snapshot()
        assert snap["trace_emitted_total"]["value"] == 3

    def test_defaults_to_global_tracer(self):
        registry = MetricsRegistry()
        mine = make_tracer()
        mine.emit("run_end")
        try:
            set_tracer(mine)
            publish_trace_metrics(registry)
        finally:
            set_tracer(None)
        assert registry.snapshot()["trace_emitted_total"]["value"] == 1

    def test_disabled_tracer_reports_enabled_zero(self):
        registry = MetricsRegistry()
        publish_trace_metrics(registry, NULL_TRACER)
        assert registry.snapshot()["trace_enabled"]["value"] == 0
