"""RunTelemetry join and bound-comparison tests."""

import pytest

from repro.obs import BoundComparison, RunTelemetry
from repro.obs.trace import Tracer


def build_trace(bound_healthy=0.01, bound_degraded=0.05):
    """A small synthetic run: two healthy rounds, one degraded round
    with a late sweep and glitches."""
    ticks = iter(range(1000))
    tracer = Tracer(clock=lambda: float(next(ticks)))
    header = {}
    if bound_healthy is not None:
        header["bound_healthy"] = bound_healthy
    if bound_degraded is not None:
        header["bound_degraded"] = bound_degraded
    tracer.start_run(seed=42, **header)
    # Round 0: healthy, on time.
    tracer.emit("round_dispatch", t=0.0, round=0, active_streams=4,
                failed_disks=[])
    tracer.emit("sweep", t=0.8, round=0, disk=0, service=0.8, late=False,
                served=4, glitched=0)
    # Round 1: healthy, on time.
    tracer.emit("round_dispatch", t=1.0, round=1, active_streams=4,
                failed_disks=[])
    tracer.emit("sweep", t=1.7, round=1, disk=0, service=0.7, late=False,
                served=4, glitched=0)
    # Fault, then round 2: degraded, overruns with two glitches.
    tracer.emit("fault", t=1.9, desc="disk 1 failed")
    tracer.emit("round_dispatch", t=2.0, round=2, active_streams=4,
                failed_disks=[1])
    tracer.emit("fragment_glitch", t=3.1, round=2, disk=0, stream=7)
    tracer.emit("fragment_glitch", t=3.2, round=2, disk=0, stream=9)
    tracer.emit("sweep", t=3.2, round=2, disk=0, service=1.2, late=True,
                served=2, glitched=2)
    tracer.emit("stream_shed", round=2, stream=9, action="pause")
    tracer.emit("stream_resume", round=4, stream=9)
    tracer.end_run()
    return tracer.records()


class TestJoin:
    def test_rounds_joined(self):
        tel = RunTelemetry.from_records(build_trace())
        assert tel.round_count == 3
        assert tel.header["seed"] == 42
        assert not tel.rounds[0].degraded
        assert tel.rounds[2].degraded
        assert tel.rounds[2].failed_disks == (1,)
        assert tel.rounds[2].glitches == 2
        assert tel.rounds[2].late
        assert tel.rounds[2].max_service == pytest.approx(1.2)

    def test_sweep_record_accessors(self):
        tel = RunTelemetry.from_records(build_trace())
        sweeps = tel.sweeps()
        assert len(sweeps) == 3
        assert sweeps[-1].requests == 4  # served 2 + glitched 2

    def test_glitch_timeline_and_late_rounds(self):
        tel = RunTelemetry.from_records(build_trace())
        assert tel.glitch_timeline() == [(2, 2)]
        assert tel.late_rounds() == [2]

    def test_top_latency_orders_by_service(self):
        tel = RunTelemetry.from_records(build_trace())
        top = tel.top_latency(2)
        assert [s.service for s in top] == [1.2, 0.8]
        assert tel.top_latency(0) == []

    def test_faults_and_sheds_collected(self):
        tel = RunTelemetry.from_records(build_trace())
        assert len(tel.faults) == 1
        assert "disk 1" in tel.faults[0]["desc"]
        assert [s["kind"] for s in tel.sheds] \
            == ["stream_shed", "stream_resume"]

    def test_headerless_trace_tolerated(self):
        records = [r for r in build_trace() if r["kind"] != "run_start"]
        tel = RunTelemetry.from_records(records)
        assert tel.header == {}
        assert tel.round_count == 3


class TestBoundTable:
    def test_phases_compared_against_their_bounds(self):
        tel = RunTelemetry.from_records(
            build_trace(bound_healthy=0.01, bound_degraded=0.05))
        healthy, degraded = tel.bound_table()
        assert healthy.phase == "healthy"
        assert healthy.disk_rounds == 2
        assert healthy.observed_p_late == 0.0
        assert healthy.within_bound is True
        assert degraded.disk_rounds == 1
        assert degraded.observed_p_late == 1.0
        assert degraded.bound == 0.05
        assert degraded.within_bound is False

    def test_violations_flags_only_exceeding_phases(self):
        tel = RunTelemetry.from_records(build_trace())
        violations = tel.violations()
        assert [v.phase for v in violations] == ["degraded"]

    def test_missing_bound_is_undecided_not_failed(self):
        tel = RunTelemetry.from_records(
            build_trace(bound_healthy=None, bound_degraded=None))
        healthy, degraded = tel.bound_table()
        assert healthy.within_bound is None
        assert degraded.within_bound is None
        assert tel.violations() == []

    def test_empty_phase_is_undecided(self):
        row = BoundComparison(phase="degraded", rounds=0, disk_rounds=0,
                              late_disk_rounds=0, observed_p_late=0.0,
                              bound=0.01)
        assert row.within_bound is None


def drift_trace(late_rounds=(6, 7), total=8, bound_healthy=0.3,
                degraded_from=None):
    """``total`` single-sweep rounds; those in ``late_rounds`` overrun.
    Rounds >= ``degraded_from`` (if set) run with disk 1 failed."""
    ticks = iter(range(1000))
    tracer = Tracer(clock=lambda: float(next(ticks)))
    tracer.start_run(seed=7, bound_healthy=bound_healthy,
                     bound_degraded=0.05)
    for r in range(total):
        degraded = degraded_from is not None and r >= degraded_from
        tracer.emit("round_dispatch", t=float(r), round=r,
                    active_streams=4,
                    failed_disks=[1] if degraded else [])
        late = r in late_rounds
        tracer.emit("sweep", t=r + 0.9, round=r, disk=0,
                    service=1.2 if late else 0.8, late=late,
                    served=4, glitched=0)
    tracer.end_run()
    return tracer.records()


class TestWindowedBoundTable:
    def test_local_drift_invisible_in_the_run_average(self):
        """The whole-run healthy rate (2/8 = 0.25) sits inside the 0.3
        bound, but the trailing window is saturated -- exactly the gap
        the live controller's TelemetryWindow watches, reconstructed
        offline."""
        tel = RunTelemetry.from_records(drift_trace())
        (healthy, _degraded) = tel.bound_table()
        assert healthy.within_bound is True
        rows = tel.windowed_bound_table(2)
        assert [r.phase for r in rows] == [
            "rounds[0..1]", "rounds[2..3]", "rounds[4..5]",
            "rounds[6..7]"]
        assert [r.within_bound for r in rows] == [
            True, True, True, False]
        assert rows[-1].observed_p_late == 1.0
        assert rows[-1].bound == 0.3

    def test_mixed_window_labelled_by_dominant_phase(self):
        # Rounds 0-4 healthy, 5-7 degraded: the window [4..7] holds one
        # healthy and three degraded sweeps, so it compares against the
        # degraded bound.
        tel = RunTelemetry.from_records(
            drift_trace(late_rounds=(), degraded_from=5))
        rows = tel.windowed_bound_table(4)
        assert rows[0].bound == 0.3
        assert rows[1].bound == 0.05

    def test_remainder_window_is_kept(self):
        tel = RunTelemetry.from_records(drift_trace(late_rounds=()))
        rows = tel.windowed_bound_table(3)
        assert [r.rounds for r in rows] == [3, 3, 2]
        assert rows[-1].phase == "rounds[6..7]"

    def test_window_validation(self):
        tel = RunTelemetry.from_records(drift_trace())
        with pytest.raises(ValueError, match="window"):
            tel.windowed_bound_table(0)


class TestServerTrace:
    def test_faulted_run_trace_joins_end_to_end(self, tmp_path, viking,
                                                paper_sizes):
        """The real producer: a faulted failover scenario's trace must
        reconstruct rounds, phases and the bound table."""
        from repro.obs import read_trace, validate_trace
        from repro.server.faults import run_failover_scenario

        path = tmp_path / "run.jsonl"
        ticks = iter(range(100_000))
        tracer = Tracer(sink=path, clock=lambda: float(next(ticks)))
        run_failover_scenario(viking, paper_sizes, disks=2, t=1.0,
                              rounds=30, fail_round=10, seed=5,
                              tracer=tracer)
        tracer.close()

        records = read_trace(path)
        assert validate_trace(records) == []
        tel = RunTelemetry.from_records(records)
        assert tel.round_count == 30
        assert len(tel.faults) == 1
        healthy, degraded = tel.bound_table()
        assert healthy.rounds == 10
        assert degraded.rounds == 20
        assert healthy.bound is not None
        assert degraded.bound is not None
        # The run was admitted under these bounds; the trace must show
        # the empirical rate respecting them.
        assert tel.violations() == []


def latency_trace():
    """A trace carrying per-fragment completion latencies for two
    stream classes across two rounds."""
    ticks = iter(range(1000))
    tracer = Tracer(clock=lambda: float(next(ticks)))
    tracer.start_run(seed=1)
    tracer.emit("latency_batch", t=0.9, round=0, disk=0,
                streams=[1, 2, 3], latencies=[0.2, 0.4, 0.6],
                classes=["standard", "standard", "premium"])
    tracer.emit("latency_batch", t=1.9, round=1, disk=0,
                streams=[1, 3], latencies=[0.3, 0.5],
                classes=["standard", "premium"])
    tracer.end_run()
    return tracer.records()


class TestClassLatency:
    def test_latency_batches_joined_per_class(self):
        tel = RunTelemetry.from_records(latency_trace())
        summary = tel.latency_summary()
        assert [c.klass for c in summary] == ["standard", "premium"]
        standard, premium = summary
        assert standard.count == 3
        assert standard.streams == {1, 2}
        assert standard.samples == [0.2, 0.4, 0.3]
        assert premium.count == 2
        assert premium.streams == {3}
        assert premium.max == pytest.approx(0.6)

    def test_quantiles_interpolate(self):
        tel = RunTelemetry.from_records(latency_trace())
        standard = tel.latency_summary()[0]
        assert standard.quantile(0.0) == pytest.approx(0.2)
        assert standard.quantile(0.5) == pytest.approx(0.3)
        assert standard.quantile(1.0) == pytest.approx(0.4)
        assert standard.mean == pytest.approx(0.3)
        with pytest.raises(ValueError):
            standard.quantile(1.5)

    def test_histogram_buckets_with_overflow(self):
        tel = RunTelemetry.from_records(latency_trace())
        standard = tel.latency_summary()[0]
        assert standard.histogram([0.25, 0.35]) == [1, 1, 1]
        assert standard.histogram([1.0]) == [3, 0]

    def test_missing_class_defaults_to_standard(self):
        records = [{"kind": "latency_batch", "t": 0.5, "round": 0,
                    "disk": 0, "streams": [4, 5],
                    "latencies": [0.1, 0.2], "classes": ["premium"]}]
        tel = RunTelemetry.from_records(records)
        by_class = {c.klass: c for c in tel.latency_summary()}
        assert by_class["premium"].samples == [0.1]
        assert by_class["standard"].samples == [0.2]

    def test_ragged_batch_is_bounds_checked(self):
        records = [{"kind": "latency_batch", "t": 0.5, "round": 0,
                    "disk": 0, "streams": [4, 5, 6],
                    "latencies": [0.1], "classes": []}]
        tel = RunTelemetry.from_records(records)
        summary = tel.latency_summary()
        assert len(summary) == 1
        assert summary[0].samples == [0.1]

    def test_empty_class_accessors(self):
        from repro.obs import ClassLatency
        empty = ClassLatency("standard")
        assert empty.count == 0
        assert empty.mean == 0.0
        assert empty.max == 0.0
        assert empty.quantile(0.5) == 0.0

    def test_real_server_trace_carries_latencies(self, tmp_path, viking,
                                                 paper_sizes):
        """End to end: a traced failover run produces latency batches
        whose fragment count matches the report's delivered total."""
        from repro.obs import read_trace, validate_trace
        from repro.server.faults import run_failover_scenario

        path = tmp_path / "run.jsonl"
        ticks = iter(range(100_000))
        tracer = Tracer(sink=path, clock=lambda: float(next(ticks)))
        result = run_failover_scenario(viking, paper_sizes, disks=2,
                                       t=1.0, rounds=20, fail_round=8,
                                       seed=5, tracer=tracer)
        tracer.close()

        records = read_trace(path)
        assert validate_trace(records) == []
        tel = RunTelemetry.from_records(records)
        summary = tel.latency_summary()
        assert summary, "traced run must emit latency batches"
        assert sum(c.count for c in summary) \
            == result.report.delivered
        # Completion latencies are bounded by observed sweep times.
        slowest = max(s.service for s in tel.sweeps())
        assert all(c.max <= slowest + 1e-9 for c in summary)
