"""Span identity, propagation, emission, and tree reconstruction."""

import pytest

from repro.obs import NULL_TRACER, Tracer, validate_trace
from repro.obs.spans import (
    NOOP_SPAN,
    SpanContext,
    build_span_trees,
    critical_path,
    current_span,
    format_trace_header,
    new_id,
    parse_trace_header,
    render_span_tree,
    start_span,
)


def make_tracer(**kwargs):
    ticks = iter(range(100_000))
    kwargs.setdefault("clock", lambda: float(next(ticks)))
    return Tracer(**kwargs)


class TestIdentity:
    def test_ids_are_unique(self):
        ids = {new_id() for _ in range(1000)}
        assert len(ids) == 1000

    def test_child_context_keeps_trace_and_links_parent(self):
        parent = SpanContext("trace-1", "span-a")
        child = parent.child()
        assert child.trace_id == "trace-1"
        assert child.parent_id == "span-a"
        assert child.span_id != "span-a"


class TestHeaderCodec:
    def test_round_trip_with_attempt(self):
        context = SpanContext("t1", "s1")
        parsed, attempt = parse_trace_header(
            format_trace_header(context, attempt=3))
        assert parsed.trace_id == "t1"
        assert parsed.span_id == "s1"
        assert attempt == 3

    def test_default_attempt_is_one(self):
        parsed, attempt = parse_trace_header("t1/s1")
        assert parsed == SpanContext("t1", "s1")
        assert attempt == 1

    @pytest.mark.parametrize("value", [
        None, "", "noslash", "/", "a/", "/b", "  ", 42,
        "x" * 300 + "/y/1",
    ])
    def test_garbage_degrades_to_untraced(self, value):
        assert parse_trace_header(value) == (None, 1)

    def test_junk_attempt_clamped(self):
        assert parse_trace_header("t/s/bogus")[1] == 1
        assert parse_trace_header("t/s/-4")[1] == 1


class TestLiveSpans:
    def test_span_emits_start_and_end_records(self):
        tracer = make_tracer()
        with start_span("op", tracer=tracer, flavor="x") as span:
            span.set(result=7)
        kinds = [r["kind"] for r in tracer.records()]
        assert kinds == ["span_start", "span_end"]
        start, end = tracer.records()
        assert start["name"] == end["name"] == "op"
        assert start["span"] == end["span"]
        assert start["trace"] == end["trace"]
        assert start["attrs"] == {"flavor": "x"}
        assert end["attrs"]["result"] == 7
        assert end["seconds"] >= 0.0

    def test_trace_with_spans_passes_schema_validation(self):
        tracer = make_tracer()
        tracer.start_run(seed=1)
        with start_span("outer", tracer=tracer):
            with start_span("inner", tracer=tracer):
                pass
        tracer.end_run()
        assert validate_trace(tracer.records()) == []

    def test_nesting_parents_via_thread_local_stack(self):
        tracer = make_tracer()
        with start_span("outer", tracer=tracer) as outer:
            assert current_span() is outer
            with start_span("inner", tracer=tracer) as inner:
                assert inner.context.parent_id == outer.context.span_id
                assert inner.context.trace_id == outer.context.trace_id
        assert current_span() is None

    def test_explicit_context_parent_wins(self):
        tracer = make_tracer()
        remote = SpanContext("remote-trace", "remote-span")
        with start_span("handler", tracer=tracer,
                        parent=remote) as span:
            assert span.context.trace_id == "remote-trace"
            assert span.context.parent_id == "remote-span"

    def test_exception_stamps_error_attribute(self):
        tracer = make_tracer()
        with pytest.raises(ValueError):
            with start_span("boom", tracer=tracer):
                raise ValueError("no")
        end = tracer.records()[-1]
        assert end["kind"] == "span_end"
        assert end["attrs"]["error"] == "ValueError"

    def test_finish_is_idempotent(self):
        tracer = make_tracer()
        span = start_span("once", tracer=tracer)
        span.finish()
        span.finish()
        assert tracer.emitted == 2

    def test_disabled_tracer_returns_shared_noop(self):
        before = NULL_TRACER.emitted
        span = start_span("nothing", tracer=NULL_TRACER)
        assert span is NOOP_SPAN
        with span:
            span.set(x=1)
        assert NULL_TRACER.emitted == before
        assert current_span() is None


class TestTreeReconstruction:
    def build(self, tracer):
        return build_span_trees(tracer.records())

    def test_exact_tree_rebuilt(self):
        tracer = make_tracer()
        with start_span("root", tracer=tracer):
            with start_span("a", tracer=tracer):
                with start_span("leaf", tracer=tracer):
                    pass
            with start_span("b", tracer=tracer):
                pass
        roots = self.build(tracer)
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "root"
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in root.children[0].children] == ["leaf"]
        assert all(node.complete for node in root.walk())
        assert len({node.trace_id for node in root.walk()}) == 1

    def test_missing_parent_becomes_root(self):
        tracer = make_tracer()
        orphan_parent = SpanContext("shared-trace", "never-emitted")
        with start_span("handler", tracer=tracer,
                        parent=orphan_parent):
            pass
        roots = self.build(tracer)
        assert [r.name for r in roots] == ["handler"]
        assert roots[0].parent_id == "never-emitted"

    def test_start_without_end_is_incomplete(self):
        tracer = make_tracer()
        start_span("inflight", tracer=tracer)  # never finished
        roots = self.build(tracer)
        assert roots[0].complete is False
        assert roots[0].seconds is None
        assert "(no end record)" in render_span_tree(roots[0])[0]

    def test_critical_path_follows_slowest_child(self):
        fast = {"kind": "span_end", "trace": "t", "span": "f",
                "name": "fast", "seconds": 0.001}
        slow = {"kind": "span_end", "trace": "t", "span": "s",
                "name": "slow", "seconds": 0.5}
        records = [
            {"kind": "span_start", "trace": "t", "span": "r",
             "name": "root", "wall": 0.0},
            {"kind": "span_start", "trace": "t", "span": "f",
             "name": "fast", "parent": "r", "wall": 1.0},
            {"kind": "span_start", "trace": "t", "span": "s",
             "name": "slow", "parent": "r", "wall": 2.0},
            fast, slow,
            {"kind": "span_end", "trace": "t", "span": "r",
             "name": "root", "seconds": 0.6},
        ]
        (root,) = build_span_trees(records)
        assert [n.name for n in critical_path(root)] == ["root", "slow"]

    def test_non_span_records_ignored(self):
        tracer = make_tracer()
        tracer.start_run(seed=0)
        tracer.emit("cache_hit", layer="memory")
        with start_span("only", tracer=tracer):
            pass
        roots = self.build(tracer)
        assert [r.name for r in roots] == ["only"]

    def test_render_includes_duration_and_attrs(self):
        tracer = make_tracer()
        with start_span("op", tracer=tracer) as span:
            span.set(status=200)
        lines = render_span_tree(self.build(tracer)[0])
        assert "op" in lines[0]
        assert "ms" in lines[0]
        assert "status=200" in lines[0]
