"""Instrumentation of the parallel fan-out layer."""

from repro.obs import MetricsRegistry, Tracer, set_tracer
from repro.obs.metrics import set_registry, get_registry
from repro.parallel import fan_out


def _double(task):
    return task * 2


class TestFanOutMetrics:
    def setup_method(self):
        self._previous = get_registry()
        self.registry = set_registry(MetricsRegistry())

    def teardown_method(self):
        set_registry(self._previous)
        set_tracer(None)

    def test_serial_path_counts_tasks(self):
        results = fan_out(_double, [1, 2, 3], jobs=1)
        assert results == [2, 4, 6]
        snap = self.registry.snapshot()
        assert snap["parallel_fanouts_total"]["value"] == 1.0
        assert snap["parallel_tasks_total"]["value"] == 3.0
        assert snap["parallel_task_seconds"]["count"] == 3

    def test_serial_path_traces_tasks(self):
        ticks = iter(range(100))
        tracer = set_tracer(Tracer(clock=lambda: float(next(ticks))))
        fan_out(_double, [1, 2], jobs=1)
        kinds = [r["kind"] for r in tracer.records()]
        assert kinds == ["worker_task"] * 3  # 1 submit + 2 done
        phases = [r["phase"] for r in tracer.records()]
        assert phases == ["submit", "done", "done"]

    def test_pool_path_counts_tasks(self):
        results = fan_out(_double, [1, 2, 3, 4], jobs=2)
        assert results == [2, 4, 6, 8]
        snap = self.registry.snapshot()
        assert snap["parallel_tasks_total"]["value"] == 4.0
        assert snap["parallel_task_seconds"]["count"] == 4
