"""Cross-feature composition tests.

The extensions are designed to be orthogonal knobs on the same core
model; these tests pin down that they actually compose -- e.g. a
fault-injected, outer-band-placed, heterogeneous round model still
feeds every admission solver.
"""

import numpy as np
import pytest

from repro.core import (
    GlitchModel,
    MultiZoneTransferModel,
    RoundServiceTimeModel,
    n_max_perror,
    n_max_plate,
    with_recalibration,
)
from repro.core.gss import n_max_gss
from repro.core.heterogeneous import StreamClass, class_mixture_model
from repro.core.trickmode import n_max_with_ff
from repro.disk import OuterZonesPlacement, quantum_viking_2_1
from repro.distributions import Gamma
from repro.server.simulation import simulate_rounds


class TestPlacementTimesFaults:
    def test_combined_model_and_simulation(self, viking, paper_sizes):
        # Outer-band placement + thermal recalibration, both in the
        # model and in the simulator, bound still conservative.
        placement = OuterZonesPlacement(fraction=0.3)
        transfer = MultiZoneTransferModel(
            viking.zone_map, paper_sizes,
            zone_probabilities=placement.zone_probabilities(
                viking.geometry)).gamma_approximation()
        base = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        placed = RoundServiceTimeModel(
            seek_bound=lambda n: base.seek(n), rot=viking.rot,
            transfer=transfer)
        faulty = with_recalibration(placed, prob=0.05, duration=0.075)

        batch = simulate_rounds(viking, paper_sizes, 29, 1.0, 15_000,
                                np.random.default_rng(1),
                                placement=placement, recal_prob=0.05,
                                recal_duration=0.075)
        simulated = float(np.mean(batch.service_times > 1.0))
        assert faulty.b_late(29, 1.0) >= simulated
        # Placement gains and fault losses partially offset: the
        # combined N_max sits between the plain-faulty and plain-placed
        # limits.
        n_combined = n_max_plate(faulty, 1.0, 0.01)
        n_placed = n_max_plate(placed, 1.0, 0.01)
        n_faulty = n_max_plate(with_recalibration(base, 0.05, 0.075),
                               1.0, 0.01)
        assert n_faulty <= n_combined <= n_placed


class TestHeterogeneousTimesEverything:
    @pytest.fixture(scope="class")
    def classes(self):
        return [
            StreamClass("audio", Gamma.from_mean_std(64_000.0, 20_000.0),
                        share=0.5),
            StreamClass("video", Gamma.from_mean_std(300_000.0,
                                                     150_000.0),
                        share=0.5),
        ]

    def test_mixture_model_feeds_stream_level_admission(self, viking,
                                                        classes):
        model = class_mixture_model(viking, classes)
        glitch = GlitchModel(model, 1.0)
        n = n_max_perror(glitch, 1200, 12, 0.01)
        assert 10 < n < 60
        assert glitch.p_error(n, 1200, 12) <= 0.01

    def test_mixture_model_feeds_gss(self, viking, classes):
        model = class_mixture_model(viking, classes)
        scan = n_max_gss(model, 1.0, 1, 0.01)
        grouped = n_max_gss(model, 1.0, 4, 0.01)
        assert 0 < grouped < scan

    def test_mixture_model_feeds_trickmode(self, viking, classes):
        model = class_mixture_model(viking, classes)
        base = n_max_with_ff(model, 1.0, 0.01, 0.0, 2)
        ff = n_max_with_ff(model, 1.0, 0.01, 0.25, 2)
        assert 0 < ff < base

    def test_mixture_model_accepts_faults(self, viking, classes):
        model = class_mixture_model(viking, classes)
        faulty = with_recalibration(model, 0.05, 0.075)
        assert faulty.b_late(20, 1.0) > model.b_late(20, 1.0)


class TestTruncatedLawsThroughTheStack:
    def test_truncated_pareto_everywhere(self, viking):
        # A heavy-tailed capped size law drives every solver without
        # special-casing.
        from repro.workload.fragmentsize import (
            truncated_pareto_fragment_sizes,
        )

        law = truncated_pareto_fragment_sizes(200_000.0, 100_000.0,
                                              cap=2e6)
        model = RoundServiceTimeModel.for_disk(viking, law)
        glitch = GlitchModel(model, 1.0)
        assert n_max_plate(model, 1.0, 0.01) > 20
        assert n_max_perror(glitch, 1200, 12, 0.01) > 20
        assert n_max_gss(model, 1.0, 2, 0.01) > 15
        faulty = with_recalibration(model, 0.02, 0.05)
        assert faulty.b_late(26, 1.0) >= model.b_late(26, 1.0)
