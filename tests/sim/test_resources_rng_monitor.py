"""Resource, Store, RngRegistry and Monitor tests."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import (
    Engine,
    Monitor,
    Resource,
    RngRegistry,
    Store,
    TimeWeightedMonitor,
)


class TestResource:
    def test_grants_up_to_capacity(self):
        engine = Engine()
        res = Resource(engine, capacity=2)
        grants = []

        def worker(engine, res, name, hold):
            yield res.request()
            grants.append((name, engine.now))
            yield engine.timeout(hold)
            res.release()

        engine.process(worker(engine, res, "a", 5.0))
        engine.process(worker(engine, res, "b", 5.0))
        engine.process(worker(engine, res, "c", 1.0))
        engine.run()
        times = dict((name, when) for name, when in grants)
        assert times["a"] == 0.0
        assert times["b"] == 0.0
        assert times["c"] == 5.0  # had to wait for a unit

    def test_fifo_queueing(self):
        engine = Engine()
        res = Resource(engine, capacity=1)
        order = []

        def worker(engine, res, name):
            yield res.request()
            order.append(name)
            yield engine.timeout(1.0)
            res.release()

        for name in ("first", "second", "third"):
            engine.process(worker(engine, res, name))
        engine.run()
        assert order == ["first", "second", "third"]

    def test_release_without_request(self):
        engine = Engine()
        res = Resource(engine)
        with pytest.raises(SimulationError):
            res.release()

    def test_counters(self):
        engine = Engine()
        res = Resource(engine, capacity=3)
        res.request()
        res.request()
        assert res.in_use == 2
        assert res.available == 1
        assert res.queue_length == 0

    def test_bad_capacity(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            Resource(engine, capacity=0)


class TestStore:
    def test_put_then_get(self):
        engine = Engine()
        store = Store(engine)
        store.put("item")
        got = []

        def getter(engine, store):
            value = yield store.get()
            got.append(value)

        engine.process(getter(engine, store))
        engine.run()
        assert got == ["item"]

    def test_get_blocks_until_put(self):
        engine = Engine()
        store = Store(engine)
        got = []

        def getter(engine, store):
            value = yield store.get()
            got.append((engine.now, value))

        def putter(engine, store):
            yield engine.timeout(4.0)
            store.put("late")

        engine.process(getter(engine, store))
        engine.process(putter(engine, store))
        engine.run()
        assert got == [(4.0, "late")]

    def test_fifo_items(self):
        engine = Engine()
        store = Store(engine)
        store.put(1)
        store.put(2)
        got = []

        def getter(engine, store):
            got.append((yield store.get()))
            got.append((yield store.get()))

        engine.process(getter(engine, store))
        engine.run()
        assert got == [1, 2]
        assert store.size == 0


class TestRngRegistry:
    def test_reproducible(self):
        a = RngRegistry(seed=7).stream("sizes").random(5)
        b = RngRegistry(seed=7).stream("sizes").random(5)
        assert np.array_equal(a, b)

    def test_streams_independent(self):
        reg = RngRegistry(seed=7)
        a = reg.stream("sizes").random(1000)
        b = reg.stream("rotation").random(1000)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.1
        assert not np.array_equal(a[:5], b[:5])

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).stream("x").random(5)
        b = RngRegistry(seed=2).stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_same_stream_is_cached(self):
        reg = RngRegistry(seed=0)
        assert reg.stream("x") is reg.stream("x")
        assert "x" in reg


class TestMonitor:
    def test_welford_matches_numpy(self, rng):
        data = rng.normal(3.0, 2.0, size=1000)
        mon = Monitor("test")
        for x in data:
            mon.record(x)
        assert mon.count == 1000
        assert mon.mean == pytest.approx(float(np.mean(data)))
        assert mon.var == pytest.approx(float(np.var(data, ddof=1)))
        assert mon.min == pytest.approx(float(np.min(data)))
        assert mon.max == pytest.approx(float(np.max(data)))

    def test_quantiles_need_samples(self):
        mon = Monitor("q", keep_samples=True)
        for x in range(101):
            mon.record(float(x))
        assert mon.quantile(0.5) == pytest.approx(50.0)
        bare = Monitor("bare")
        bare.record(1.0)
        with pytest.raises(SimulationError):
            bare.quantile(0.5)

    def test_empty_monitor_raises(self):
        mon = Monitor("empty")
        with pytest.raises(SimulationError):
            mon.mean
        mon.record(1.0)
        with pytest.raises(SimulationError):
            mon.var  # needs two samples

    def test_empty_monitor_all_accessors_raise(self):
        mon = Monitor("empty")
        assert mon.count == 0
        for accessor in ("mean", "var", "std", "min", "max"):
            with pytest.raises(SimulationError):
                getattr(mon, accessor)
        assert repr(mon) == "Monitor('empty', empty)"

    def test_single_sample(self):
        mon = Monitor("one")
        mon.record(3.25)
        assert mon.count == 1
        assert mon.mean == 3.25
        assert mon.min == 3.25
        assert mon.max == 3.25
        with pytest.raises(SimulationError):
            mon.var  # variance undefined for n = 1
        with pytest.raises(SimulationError):
            mon.std

    def test_quantile_without_keep_samples_raises_even_empty(self):
        mon = Monitor("bare")  # keep_samples=False is the default
        with pytest.raises(SimulationError):
            mon.quantile(0.5)

    def test_quantile_with_keep_samples_but_no_data_raises(self):
        mon = Monitor("kept", keep_samples=True)
        with pytest.raises(SimulationError):
            mon.quantile(0.5)
        mon.record(2.0)
        assert mon.quantile(0.5) == pytest.approx(2.0)


class TestTimeWeightedMonitor:
    def test_piecewise_average(self):
        mon = TimeWeightedMonitor("queue", start_time=0.0, initial=0.0)
        mon.record(2.0, 10.0)   # 0 for [0,2)
        mon.record(6.0, 0.0)    # 10 for [2,6)
        # average over [0,6] = (0*2 + 10*4)/6
        assert mon.time_average(6.0) == pytest.approx(40.0 / 6.0)

    def test_extends_to_now(self):
        mon = TimeWeightedMonitor("x", initial=5.0)
        assert mon.time_average(10.0) == pytest.approx(5.0)

    def test_time_backwards_rejected(self):
        mon = TimeWeightedMonitor("x")
        mon.record(5.0, 1.0)
        with pytest.raises(SimulationError):
            mon.record(4.0, 2.0)

    def test_zero_elapsed_rejected(self):
        mon = TimeWeightedMonitor("x")
        with pytest.raises(SimulationError):
            mon.time_average()

    def test_time_average_now_before_last_rejected(self):
        mon = TimeWeightedMonitor("x")
        mon.record(5.0, 1.0)
        with pytest.raises(SimulationError):
            mon.time_average(4.0)

    def test_single_record_then_average_to_now(self):
        mon = TimeWeightedMonitor("x", start_time=0.0, initial=2.0)
        mon.record(4.0, 8.0)
        # 2.0 over [0,4), then 8.0 over [4,8): (8 + 32) / 8.
        assert mon.time_average(8.0) == pytest.approx(5.0)
