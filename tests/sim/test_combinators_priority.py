"""Tests for event combinators and the priority resource."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, PriorityResource, all_of, any_of


class TestAllOf:
    def test_waits_for_slowest(self):
        engine = Engine()
        a = engine.timeout(1.0, value="a")
        b = engine.timeout(3.0, value="b")
        done = []

        def waiter(engine):
            values = yield all_of(engine, [a, b])
            done.append((engine.now, values))

        engine.process(waiter(engine))
        engine.run()
        assert done == [(3.0, ["a", "b"])]

    def test_preserves_input_order(self):
        engine = Engine()
        slow = engine.timeout(5.0, value="slow")
        fast = engine.timeout(1.0, value="fast")
        result = all_of(engine, [slow, fast])
        engine.run()
        assert result.value == ["slow", "fast"]

    def test_already_fired_events(self):
        engine = Engine()
        a = engine.event()
        a.succeed("early")
        engine.run()
        result = all_of(engine, [a])
        assert result.triggered
        engine.run()
        assert result.value == ["early"]

    def test_failure_propagates(self):
        engine = Engine()
        good = engine.timeout(1.0)
        bad = engine.event()
        caught = []

        def waiter(engine):
            try:
                yield all_of(engine, [good, bad])
            except RuntimeError as exc:
                caught.append(str(exc))

        def failer(engine):
            yield engine.timeout(2.0)
            bad.fail(RuntimeError("broken"))

        engine.process(waiter(engine))
        engine.process(failer(engine))
        engine.run()
        assert caught == ["broken"]

    def test_empty_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            all_of(engine, [])


class TestAnyOf:
    def test_first_wins(self):
        engine = Engine()
        slow = engine.timeout(5.0, value="slow")
        fast = engine.timeout(1.0, value="fast")
        seen = []

        def waiter(engine):
            index, value = yield any_of(engine, [slow, fast])
            seen.append((engine.now, index, value))

        engine.process(waiter(engine))
        engine.run()
        assert seen == [(1.0, 1, "fast")]

    def test_timeout_race_pattern(self):
        # The admission-with-deadline idiom: a slot never frees, the
        # timeout wins.
        engine = Engine()
        never = engine.event()
        deadline = engine.timeout(2.0, value="timed out")
        outcome = []

        def waiter(engine):
            index, value = yield any_of(engine, [never, deadline])
            outcome.append((index, value))

        engine.process(waiter(engine))
        engine.run()
        assert outcome == [(1, "timed out")]

    def test_pre_fired_short_circuits(self):
        engine = Engine()
        ready = engine.event()
        ready.succeed("now")
        engine.run()
        result = any_of(engine, [ready, engine.timeout(9.0)])
        engine.run(until=0.5)
        assert result.value == (0, "now")

    def test_losers_still_usable(self):
        engine = Engine()
        fast = engine.timeout(1.0, value="fast")
        slow = engine.timeout(2.0, value="slow")
        any_of(engine, [fast, slow])
        late = []

        def waiter(engine):
            value = yield slow
            late.append(value)

        engine.process(waiter(engine))
        engine.run()
        assert late == ["slow"]

    def test_empty_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            any_of(engine, [])


class TestPriorityResource:
    def test_priority_order(self):
        engine = Engine()
        res = PriorityResource(engine, capacity=1)
        served = []

        def worker(engine, res, name, priority):
            yield res.request(priority=priority)
            served.append(name)
            yield engine.timeout(1.0)
            res.release()

        # Holder first, then queue discrete before continuous arrives.
        engine.process(worker(engine, res, "holder", 0))
        engine.process(worker(engine, res, "discrete", 10))
        engine.process(worker(engine, res, "continuous", 0))
        engine.run()
        assert served == ["holder", "continuous", "discrete"]

    def test_fifo_within_priority(self):
        engine = Engine()
        res = PriorityResource(engine, capacity=1)
        served = []

        def worker(engine, res, name):
            yield res.request(priority=5)
            served.append(name)
            yield engine.timeout(1.0)
            res.release()

        for name in ("first", "second", "third"):
            engine.process(worker(engine, res, name))
        engine.run()
        assert served == ["first", "second", "third"]

    def test_release_without_request(self):
        engine = Engine()
        res = PriorityResource(engine)
        with pytest.raises(SimulationError):
            res.release()

    def test_counters(self):
        engine = Engine()
        res = PriorityResource(engine, capacity=2)
        res.request(priority=1)
        res.request(priority=2)
        res.request(priority=0)
        assert res.in_use == 2
        assert res.queue_length == 1
