"""Discrete-event kernel tests."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, Interrupt


class TestTimeouts:
    def test_timeout_advances_clock(self):
        engine = Engine()
        log = []

        def proc(engine):
            yield engine.timeout(1.5)
            log.append(engine.now)
            yield engine.timeout(2.5)
            log.append(engine.now)

        engine.process(proc(engine))
        engine.run()
        assert log == [1.5, 4.0]

    def test_timeout_carries_value(self):
        engine = Engine()
        seen = []

        def proc(engine):
            value = yield engine.timeout(1.0, value="payload")
            seen.append(value)

        engine.process(proc(engine))
        engine.run()
        assert seen == ["payload"]

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.timeout(-1.0)

    def test_zero_delay_runs_in_order(self):
        engine = Engine()
        order = []

        def a(engine):
            yield engine.timeout(0.0)
            order.append("a")

        def b(engine):
            yield engine.timeout(0.0)
            order.append("b")

        engine.process(a(engine))
        engine.process(b(engine))
        engine.run()
        assert order == ["a", "b"]  # FIFO among simultaneous events


class TestEvents:
    def test_event_wakes_waiter(self):
        engine = Engine()
        done = engine.event()
        seen = []

        def waiter(engine):
            value = yield done
            seen.append((engine.now, value))

        def trigger(engine):
            yield engine.timeout(3.0)
            done.succeed("ready")

        engine.process(waiter(engine))
        engine.process(trigger(engine))
        engine.run()
        assert seen == [(3.0, "ready")]

    def test_event_fires_once(self):
        engine = Engine()
        event = engine.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_failed_event_raises_in_process(self):
        engine = Engine()
        event = engine.event()
        caught = []

        def waiter(engine):
            try:
                yield event
            except RuntimeError as exc:
                caught.append(str(exc))

        def failer(engine):
            yield engine.timeout(1.0)
            event.fail(RuntimeError("boom"))

        engine.process(waiter(engine))
        engine.process(failer(engine))
        engine.run()
        assert caught == ["boom"]

    def test_unwaited_failure_surfaces(self):
        engine = Engine()
        event = engine.event()
        event.fail(RuntimeError("lost"))
        with pytest.raises(RuntimeError, match="lost"):
            engine.run()

    def test_yield_on_already_processed_event(self):
        engine = Engine()
        ready = engine.event()
        ready.succeed("early")
        engine.run()
        seen = []

        def late(engine):
            value = yield ready
            seen.append(value)

        engine.process(late(engine))
        engine.run()
        assert seen == ["early"]

    def test_value_before_trigger_raises(self):
        engine = Engine()
        event = engine.event()
        with pytest.raises(SimulationError):
            event.value
        with pytest.raises(SimulationError):
            event.ok


class TestProcesses:
    def test_process_is_waitable_with_return_value(self):
        engine = Engine()

        def child(engine):
            yield engine.timeout(2.0)
            return 42

        results = []

        def parent(engine):
            result = yield engine.process(child(engine))
            results.append((engine.now, result))

        engine.process(parent(engine))
        engine.run()
        assert results == [(2.0, 42)]

    def test_yielding_non_event_is_error(self):
        engine = Engine()

        def bad(engine):
            yield 1.5  # must yield events, not floats

        engine.process(bad(engine))
        with pytest.raises(SimulationError, match="must yield events"):
            engine.run()

    def test_non_generator_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.process(lambda: None)

    def test_interrupt_wakes_sleeper(self):
        engine = Engine()
        log = []

        def sleeper(engine):
            try:
                yield engine.timeout(100.0)
            except Interrupt as stop:
                log.append((engine.now, stop.cause))

        def killer(engine, victim):
            yield engine.timeout(5.0)
            victim.interrupt("shutdown")

        victim = engine.process(sleeper(engine))
        engine.process(killer(engine, victim))
        engine.run()
        assert log == [(5.0, "shutdown")]

    def test_interrupt_finished_process_is_error(self):
        engine = Engine()

        def quick(engine):
            yield engine.timeout(0.0)

        proc = engine.process(quick(engine))
        engine.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_is_alive(self):
        engine = Engine()

        def quick(engine):
            yield engine.timeout(1.0)

        proc = engine.process(quick(engine))
        assert proc.is_alive
        engine.run()
        assert not proc.is_alive


class TestRun:
    def test_run_until_time(self):
        engine = Engine()
        log = []

        def ticker(engine):
            while True:
                yield engine.timeout(1.0)
                log.append(engine.now)

        engine.process(ticker(engine))
        engine.run(until=3.5)
        assert log == [1.0, 2.0, 3.0]
        assert engine.now == 3.5

    def test_run_until_event(self):
        engine = Engine()
        done = engine.event()

        def proc(engine):
            yield engine.timeout(2.0)
            done.succeed()
            yield engine.timeout(50.0)

        engine.process(proc(engine))
        engine.run(until=done)
        assert engine.now == 2.0

    def test_run_until_event_never_fires(self):
        engine = Engine()
        orphan = engine.event()
        with pytest.raises(SimulationError):
            engine.run(until=orphan)

    def test_run_backwards_rejected(self):
        engine = Engine()
        engine.timeout(1.0)
        engine.run(until=5.0)
        with pytest.raises(SimulationError):
            engine.run(until=1.0)

    def test_step_on_empty_calendar(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.step()


class TestCalendarCallbacks:
    def test_at_fires_at_exact_time(self):
        engine = Engine()
        fired = []
        engine.at(3.0, lambda: fired.append(engine.now))
        engine.run(until=2.0)
        assert fired == []
        engine.run(until=3.0)
        assert fired == [3.0]

    def test_at_boundary_visible_before_next_interval(self):
        # The fault-injector contract: an event scheduled exactly at a
        # round boundary k*L is applied during run(until=k*L), so state
        # is flipped before round k is dispatched.
        engine = Engine()
        state = []
        engine.at(5.0, lambda: state.append("flipped"))
        engine.run(until=5.0)
        assert state == ["flipped"]

    def test_at_orders_against_process_events(self):
        engine = Engine()
        order = []

        def proc(engine):
            order.append(("proc", engine.now))
            yield engine.timeout(1.0)
            order.append(("proc", engine.now))

        engine.process(proc(engine))
        engine.at(1.0, lambda: order.append(("at", engine.now)))
        engine.run()
        # Same instant: the process's resumption is re-enqueued when its
        # timeout fires, so the already-queued callback runs first --
        # state flips apply before work scheduled at the same time, the
        # ordering MediaServer relies on for boundary fault events.
        assert order == [("proc", 0.0), ("at", 1.0), ("proc", 1.0)]

    def test_at_rejects_nan(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.at(float("nan"), lambda: None)

    def test_at_in_the_past_runs_now(self):
        engine = Engine()
        engine.timeout(4.0)
        engine.run(until=4.0)
        fired = []
        engine.at(1.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [4.0]

    def test_at_event_can_be_awaited(self):
        engine = Engine()
        seen = []

        def proc(engine, event):
            yield event
            seen.append(engine.now)

        event = engine.at(2.5, lambda: None)
        engine.process(proc(engine, event))
        engine.run()
        assert seen == [2.5]
