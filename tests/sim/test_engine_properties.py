"""Property-based tests of the event kernel's ordering guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine

delays = st.lists(st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False),
                  min_size=1, max_size=40)


class TestTemporalOrder:
    @settings(max_examples=60, deadline=None)
    @given(delays)
    def test_timeouts_fire_in_time_order(self, ds):
        engine = Engine()
        fired: list[tuple[float, int]] = []

        def waiter(engine, delay, tag):
            yield engine.timeout(delay)
            fired.append((engine.now, tag))

        for tag, delay in enumerate(ds):
            engine.process(waiter(engine, delay, tag))
        engine.run()

        times = [t for t, _ in fired]
        assert times == sorted(times)
        assert len(fired) == len(ds)
        # Every process observed exactly its own delay.
        by_tag = dict((tag, t) for t, tag in fired)
        for tag, delay in enumerate(ds):
            assert abs(by_tag[tag] - delay) < 1e-9

    @settings(max_examples=60, deadline=None)
    @given(delays)
    def test_fifo_among_equal_times(self, ds):
        # Processes scheduled at the same instant fire in creation
        # order.
        engine = Engine()
        fired: list[int] = []
        delay = 5.0

        def waiter(engine, tag):
            yield engine.timeout(delay)
            fired.append(tag)

        count = len(ds)  # reuse the list length as a process count
        for tag in range(count):
            engine.process(waiter(engine, tag))
        engine.run()
        assert fired == list(range(count))

    @settings(max_examples=40, deadline=None)
    @given(delays, st.floats(min_value=0.0, max_value=100.0))
    def test_run_until_cuts_exactly(self, ds, horizon):
        engine = Engine()
        fired: list[float] = []

        def waiter(engine, delay):
            yield engine.timeout(delay)
            fired.append(engine.now)

        for delay in ds:
            engine.process(waiter(engine, delay))
        engine.run(until=horizon)
        assert engine.now == horizon
        assert all(t <= horizon for t in fired)
        expected = sum(1 for d in ds if d <= horizon)
        assert len(fired) == expected

    @settings(max_examples=40, deadline=None)
    @given(delays)
    def test_chained_timeouts_accumulate(self, ds):
        engine = Engine()
        checkpoints: list[float] = []

        def chain(engine):
            for delay in ds:
                yield engine.timeout(delay)
                checkpoints.append(engine.now)

        engine.process(chain(engine))
        engine.run()
        running = 0.0
        for delay, observed in zip(ds, checkpoints):
            running += delay
            assert abs(observed - running) < 1e-6
