"""Trick-mode (fast-forward) load analysis tests."""

import pytest

from repro.core import RoundServiceTimeModel, n_max_plate
from repro.core.trickmode import (
    ff_round_bound,
    n_max_with_ff,
    scan_mode_requests,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def model(viking, paper_sizes):
    return RoundServiceTimeModel.for_disk(viking, paper_sizes)


class TestScanModeRequests:
    def test_multiplier(self):
        assert scan_mode_requests(20, 5, 2) == 30
        assert scan_mode_requests(20, 0, 4) == 20
        assert scan_mode_requests(0, 5, 3) == 15

    def test_k_one_is_normal_playback(self):
        assert scan_mode_requests(10, 10, 1) == 20

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            scan_mode_requests(-1, 5, 2)
        with pytest.raises(ConfigurationError):
            scan_mode_requests(0, 0, 2)
        with pytest.raises(ConfigurationError):
            scan_mode_requests(5, 5, 0)


class TestBounds:
    def test_ff_equivalent_to_inflated_round(self, model):
        assert ff_round_bound(model, 20, 3, 2, 1.0) == pytest.approx(
            model.b_late(26, 1.0))

    def test_no_ff_recovers_plain_admission(self, model):
        assert (n_max_with_ff(model, 1.0, 0.01, ff_fraction=0.0, k=4)
                == n_max_plate(model, 1.0, 0.01))

    def test_ff_costs_streams(self, model):
        base = n_max_with_ff(model, 1.0, 0.01, 0.0, 2)
        with_ff = n_max_with_ff(model, 1.0, 0.01, 0.2, 2)
        heavy_ff = n_max_with_ff(model, 1.0, 0.01, 0.2, 4)
        assert with_ff < base
        assert heavy_ff < with_ff

    def test_full_ff_divides_capacity(self, model):
        # Everyone in 2x scan mode: every stream counts double, so the
        # limit is ~half the plain N_max (off-by-one from rounding).
        base = n_max_plate(model, 1.0, 0.01)
        all_ff = n_max_with_ff(model, 1.0, 0.01, 1.0, 2)
        assert all_ff == pytest.approx(base / 2, abs=1)

    def test_validation(self, model):
        with pytest.raises(ConfigurationError):
            n_max_with_ff(model, 1.0, 0.01, 1.5, 2)
        with pytest.raises(ConfigurationError):
            n_max_with_ff(model, 1.0, 0.0, 0.5, 2)
