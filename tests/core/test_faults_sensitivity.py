"""Fault-injection and sensitivity-analysis tests."""

import numpy as np
import pytest

from repro.analysis.sensitivity import admission_sensitivity
from repro.core import GlitchModel, RoundServiceTimeModel, n_max_perror
from repro.core.faults import recalibration_disturbance, with_recalibration
from repro.errors import ConfigurationError
from repro.server.simulation import simulate_rounds


@pytest.fixture(scope="module")
def model(viking, paper_sizes):
    return RoundServiceTimeModel.for_disk(viking, paper_sizes)


class TestRecalibration:
    def test_disturbance_law(self):
        d = recalibration_disturbance(0.1, 0.05)
        assert d.mean() == pytest.approx(0.005)
        assert d.has_mgf()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            recalibration_disturbance(0.0, 0.05)
        with pytest.raises(ConfigurationError):
            recalibration_disturbance(1.0, 0.05)
        with pytest.raises(ConfigurationError):
            recalibration_disturbance(0.1, 0.0)

    def test_degrades_the_bound(self, model):
        faulty = with_recalibration(model, prob=0.05, duration=0.075)
        assert faulty.b_late(26, 1.0) > model.b_late(26, 1.0)
        # The disturbance raises the round mean by q*d.
        assert faulty.log_mgf(26).mean() == pytest.approx(
            model.mean(26) + 0.05 * 0.075)

    def test_worse_recal_worse_bound(self, model):
        mild = with_recalibration(model, 0.02, 0.05)
        harsh = with_recalibration(model, 0.10, 0.10)
        assert harsh.b_late(26, 1.0) > mild.b_late(26, 1.0)

    def test_admission_shrinks_under_faults(self, model):
        base = n_max_perror(GlitchModel(model, 1.0), 1200, 12, 0.01)
        faulty = with_recalibration(model, prob=0.05, duration=0.075)
        degraded = n_max_perror(GlitchModel(faulty, 1.0), 1200, 12, 0.01)
        assert degraded < base

    def test_bound_covers_faulty_simulation(self, viking, paper_sizes,
                                            model):
        prob, duration = 0.05, 0.075
        faulty = with_recalibration(model, prob, duration)
        rng = np.random.default_rng(6)
        batch = simulate_rounds(viking, paper_sizes, 27, 1.0, 20_000,
                                rng, recal_prob=prob,
                                recal_duration=duration)
        simulated = float(np.mean(batch.service_times > 1.0))
        assert simulated > 0.0
        assert faulty.b_late(27, 1.0) >= simulated
        # The clean model would NOT have covered the faulty system at
        # the same certainty margin -- the term matters.
        assert simulated > model.b_late(25, 1.0)

    def test_simulator_validation(self, viking, paper_sizes, rng):
        with pytest.raises(ConfigurationError):
            simulate_rounds(viking, paper_sizes, 5, 1.0, 10, rng,
                            recal_prob=1.5)
        with pytest.raises(ConfigurationError):
            simulate_rounds(viking, paper_sizes, 5, 1.0, 10, rng,
                            recal_prob=0.1, recal_duration=0.0)


class TestSensitivity:
    @pytest.fixture(scope="class")
    def table(self, viking):
        return admission_sensitivity(viking, mean_size=200_000.0, cv=0.5,
                                     t=1.0, m=1200, g=12, epsilon=0.01,
                                     rel_delta=0.10)

    def test_covers_all_parameters(self, table):
        names = {row.parameter for row in table}
        assert names == {
            "rotation time", "zone capacities", "seek sqrt coefficient",
            "seek linear coefficient", "mean fragment size",
            "size coefficient of variation", "round length",
        }

    def test_base_is_paper_value(self, table):
        assert all(row.n_max_base == 28 for row in table)

    def test_directions_are_physical(self, table):
        rows = {row.parameter: row for row in table}
        # Faster rotation (lower ROT) and bigger capacities help.
        assert rows["rotation time"].n_max_low >= \
            rows["rotation time"].n_max_high
        assert rows["zone capacities"].n_max_low <= \
            rows["zone capacities"].n_max_high
        # Bigger fragments hurt.
        assert rows["mean fragment size"].n_max_low >= \
            rows["mean fragment size"].n_max_high
        # Longer rounds help (at matched playback time).
        assert rows["round length"].n_max_low <= \
            rows["round length"].n_max_high

    def test_capacity_dominates_seek_coefficients(self, table):
        rows = {row.parameter: row for row in table}
        assert rows["zone capacities"].swing >= \
            rows["seek sqrt coefficient"].swing

    def test_validation(self, viking):
        with pytest.raises(ConfigurationError):
            admission_sensitivity(viking, 200_000.0, 0.5, 1.0, 1200, 12,
                                  0.01, rel_delta=0.0)
