"""Phase-balance and multicast-sharing model tests."""

import numpy as np
import pytest

from repro.core import GlitchModel, RoundServiceTimeModel, n_max_perror
from repro.core.sharing import (
    effective_stream_capacity,
    expected_distinct_fetches,
    sharing_factor,
    zipf_popularity,
)
from repro.core.striping import (
    balanced_glitch_bound,
    n_max_balanced,
    n_max_random_phases,
    random_phase_glitch_bound,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def glitch(viking, paper_sizes):
    model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
    return GlitchModel(model, t=1.0)


class TestPhaseBalance:
    def test_single_disk_identical(self, glitch):
        assert random_phase_glitch_bound(glitch, 20, 1) == \
            balanced_glitch_bound(glitch, 20, 1)

    def test_random_phases_never_better(self, glitch):
        for n_total, disks in [(52, 2), (104, 4), (80, 4)]:
            assert (random_phase_glitch_bound(glitch, n_total, disks)
                    >= balanced_glitch_bound(glitch, n_total, disks)
                    - 1e-12)

    def test_balanced_matches_per_disk_model(self, glitch):
        # 4 disks, 104 streams balanced -> 26 per disk.
        assert balanced_glitch_bound(glitch, 104, 4) == pytest.approx(
            glitch.b_glitch(26))

    def test_random_phase_mixture_value(self, glitch):
        # Hand-check the binomial mixture at a small config.
        from scipy import stats
        n_total, disks = 10, 2
        pmf = stats.binom.pmf(range(10), 9, 0.5)
        expected = sum(p * glitch.b_glitch(1 + k)
                       for k, p in enumerate(pmf))
        assert random_phase_glitch_bound(glitch, 10, 2) == pytest.approx(
            min(expected, 1.0), rel=1e-9)

    def test_farm_nmax_balanced_scales_with_disks(self, glitch):
        per_disk = n_max_perror(glitch, 1200, 12, 0.01)
        for disks in (1, 2, 4):
            total = n_max_balanced(glitch, disks, 1200, 12, 0.01)
            # Balanced farms admit disks * per-disk (within rounding of
            # the ceil() in the balanced bound).
            assert disks * per_disk <= total <= disks * per_disk + disks

    def test_random_phases_cost_streams(self, glitch):
        disks = 4
        balanced = n_max_balanced(glitch, disks, 1200, 12, 0.01)
        random = n_max_random_phases(glitch, disks, 1200, 12, 0.01)
        assert random < balanced
        # The loss is substantial -- double-digit percent.
        assert random <= 0.95 * balanced

    def test_validation(self, glitch):
        with pytest.raises(ConfigurationError):
            balanced_glitch_bound(glitch, 0, 2)
        with pytest.raises(ConfigurationError):
            random_phase_glitch_bound(glitch, 10, 0)
        with pytest.raises(ConfigurationError):
            n_max_balanced(glitch, 2, 1200, 12, 0.0)


class TestSharing:
    def test_zipf_normalised_and_skewed(self):
        p = zipf_popularity(10, 1.0)
        assert float(np.sum(p)) == pytest.approx(1.0)
        assert p[0] > p[-1]
        flat = zipf_popularity(10, 0.0)
        assert flat == pytest.approx(np.full(10, 0.1))

    def test_no_sharing_limit(self):
        # Huge catalog, long objects: every stream fetches for itself.
        p = zipf_popularity(10_000, 0.5)
        assert sharing_factor(50, p, length=7200) == pytest.approx(
            1.0, abs=1e-3)

    def test_total_sharing_limit(self):
        # One object of one round: everyone shares a single fetch.
        assert expected_distinct_fetches(50, [1.0], 1) == pytest.approx(
            1.0)

    def test_matches_monte_carlo(self, rng):
        p = zipf_popularity(20, 1.1)
        length = 30
        n = 40
        trials = 2000
        objects = rng.choice(20, size=(trials, n), p=p)
        phases = rng.integers(0, length, size=(trials, n))
        cells = objects * length + phases
        distinct = np.array([len(set(row)) for row in cells])
        assert float(np.mean(distinct)) == pytest.approx(
            expected_distinct_fetches(n, p, length), rel=0.02)

    def test_monotone_in_n(self):
        p = zipf_popularity(5, 1.0)
        values = [expected_distinct_fetches(n, p, 10)
                  for n in (1, 10, 100, 1000)]
        assert values == sorted(values)
        assert values[-1] <= 50  # capped by cells

    def test_effective_capacity_exceeds_physical(self):
        p = zipf_popularity(8, 1.2)
        capacity = effective_stream_capacity(26, p, length=60)
        assert capacity > 26  # sharing stretches physical slots

    def test_effective_capacity_boundary(self):
        p = zipf_popularity(8, 1.2)
        capacity = effective_stream_capacity(26, p, length=60)
        assert expected_distinct_fetches(capacity, p, 60) <= 26

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            zipf_popularity(0)
        with pytest.raises(ConfigurationError):
            expected_distinct_fetches(5, [0.5, 0.4], 10)
        with pytest.raises(ConfigurationError):
            expected_distinct_fetches(-1, [1.0], 10)
        with pytest.raises(ConfigurationError):
            effective_stream_capacity(-1, [1.0], 10)
