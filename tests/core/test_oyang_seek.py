"""Oyang seek-bound tests (§3.1, [Oya95])."""

import numpy as np
import pytest

from repro.core import equidistant_positions, oyang_seek_bound
from repro.disk import DiskDrive, DiskRequest, quantum_viking_2_1
from repro.disk.scan import lumped_seek_time
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def spec():
    return quantum_viking_2_1()


class TestBoundValues:
    def test_paper_seek_27(self, spec):
        # §3.1: "for this disk and N = 27, we obtain SEEK = 0.10932 s".
        assert oyang_seek_bound(spec.seek_curve, 6720, 27) == pytest.approx(
            0.10932, abs=5e-5)

    def test_structure_n_plus_one_hops(self, spec):
        n = 27
        gap = 6720 / (n + 1)
        assert oyang_seek_bound(spec.seek_curve, 6720, n) == pytest.approx(
            (n + 1) * float(spec.seek_curve(gap)))

    def test_zero_requests_zero_seek(self, spec):
        assert oyang_seek_bound(spec.seek_curve, 6720, 0) == 0.0

    def test_increasing_in_n(self, spec):
        values = [oyang_seek_bound(spec.seek_curve, 6720, n)
                  for n in range(1, 60)]
        assert values == sorted(values)

    def test_rejects_negative_n(self, spec):
        with pytest.raises(ConfigurationError):
            oyang_seek_bound(spec.seek_curve, 6720, -1)


class TestEquidistantPositions:
    def test_positions(self):
        pos = equidistant_positions(6720, 27)
        assert pos.shape == (27,)
        assert pos[0] == pytest.approx(6720 / 28)
        assert pos[-1] == pytest.approx(27 * 6720 / 28)
        assert np.allclose(np.diff(pos), 6720 / 28)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            equidistant_positions(1, 5)
        with pytest.raises(ConfigurationError):
            equidistant_positions(100, 0)


class TestUpperBoundProperty:
    @pytest.mark.parametrize("n", [5, 15, 27, 40])
    def test_dominates_random_sweeps(self, spec, n, rng):
        """The heart of [Oya95]: equidistant positions maximise the
        lumped SCAN seek, so random batches must come in below SEEK(N).
        """
        bound = oyang_seek_bound(spec.seek_curve, spec.cylinders, n)
        drive = DiskDrive(spec.geometry, spec.seek_curve,
                          initial_cylinder=0)
        for _ in range(200):
            cylinders = rng.integers(0, spec.cylinders, size=n)
            requests = [DiskRequest(stream_id=i, size=1.0, cylinder=int(c))
                        for i, c in enumerate(cylinders)]
            simulated = lumped_seek_time(drive, requests,
                                         include_initial=True)
            assert simulated <= bound + 1e-12

    def test_equidistant_batch_attains_bound_minus_runout(self, spec):
        # Serving the actual equidistant batch from cylinder 0 costs
        # exactly SEEK(N) minus the final run-out hop.
        n = 27
        positions = equidistant_positions(spec.cylinders, n)
        requests = [DiskRequest(stream_id=i, size=1.0,
                                cylinder=int(round(p)))
                    for i, p in enumerate(positions)]
        drive = DiskDrive(spec.geometry, spec.seek_curve,
                          initial_cylinder=0)
        simulated = lumped_seek_time(drive, requests)
        bound = oyang_seek_bound(spec.seek_curve, spec.cylinders, n)
        gap_time = float(spec.seek_curve(spec.cylinders / (n + 1)))
        assert simulated == pytest.approx(bound - gap_time, rel=1e-3)
