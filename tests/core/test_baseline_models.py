"""Baseline-comparator tests (§1/§3.1's prior-work approaches)."""

import numpy as np
import pytest

from repro.core import RoundServiceTimeModel
from repro.core.baselines import (
    independent_seek_time_distribution,
    normal_approximation_p_late,
    tschebyscheff_p_late,
)
from repro.core.chernoff import chernoff_tail_bound
from repro.core.mgf import DistributionTerm
from repro.errors import ConfigurationError
from repro.server.simulation import simulate_rounds


@pytest.fixture(scope="module")
def model(viking, paper_sizes):
    return RoundServiceTimeModel.for_disk(viking, paper_sizes)


class TestNormalApproximation:
    def test_half_at_mean(self, model):
        n = 26
        t = model.mean(n)
        assert normal_approximation_p_late(model, n, t) == pytest.approx(
            0.5, abs=1e-9)

    def test_not_conservative_in_the_tail(self, model):
        # The paper's §3.1 criticism: CLT underestimates the tail for
        # realistic N.  The Chernoff bound dominates the true tail; the
        # normal approximation dips below the Chernoff bound far out,
        # and below the *simulated* truth in the deep tail.
        n = 26
        clt = normal_approximation_p_late(model, n, 1.0)
        chernoff = model.b_late(n, 1.0)
        assert clt < chernoff

    def test_matches_simulation_better_near_centre(self, viking,
                                                   paper_sizes, model):
        # Around the distribution's bulk the CLT is decent: within a
        # factor ~2.5 of simulation at p ~ 5-15 %.
        n = 31
        rng = np.random.default_rng(11)
        batch = simulate_rounds(viking, paper_sizes, n, 1.0, 20_000, rng)
        simulated = float(np.mean(batch.service_times >= 1.0))
        clt = normal_approximation_p_late(model, n, 1.0)
        assert 0.3 < clt / simulated < 3.0


class TestTschebyscheff:
    def test_valid_but_coarse(self, model):
        # [CL96]-style bound: valid (dominates simulation/Chernoff-truth)
        # but much weaker than Chernoff in the tail.
        n = 26
        cheb = tschebyscheff_p_late(model, n, 1.0)
        chern = model.b_late(n, 1.0)
        assert cheb >= chern
        assert cheb > 10 * chern  # "relatively coarse" indeed

    def test_trivial_below_mean(self, model):
        n = 26
        assert tschebyscheff_p_late(model, n, model.mean(n) * 0.9) == 1.0

    def test_clipped_at_one(self, model):
        assert tschebyscheff_p_late(model, 26,
                                    model.mean(26) + 1e-9) == 1.0


class TestIndependentSeeks:
    def test_distribution_moments(self, viking):
        dist = independent_seek_time_distribution(viking, samples=100_000)
        # Mean independent-seek distance is CYL/3; its time sits between
        # seek(CYL/4) and seek(CYL/2) for this curve.
        lo = float(viking.seek_curve(viking.cylinders / 4))
        hi = float(viking.seek_curve(viking.cylinders / 2))
        assert lo < dist.mean() < hi

    def test_scan_bound_beats_independent_seeks(self, viking, paper_sizes):
        # Build a round model where every request pays an independent
        # seek, and compare N_max-style bounds: SCAN admits more.
        from repro.core.mgf import ProductMGF, UniformTerm

        seek_dist = independent_seek_time_distribution(viking,
                                                       samples=50_000)
        scan_model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        n = 26
        indep_logmgf = ProductMGF([
            (DistributionTerm(seek_dist), n),
            (UniformTerm(viking.rot), n),
            (DistributionTerm(scan_model.transfer), n),
        ])
        indep_bound = chernoff_tail_bound(indep_logmgf, 1.0).bound
        scan_bound = scan_model.b_late(n, 1.0)
        assert scan_bound < indep_bound

    def test_sample_size_validation(self, viking):
        with pytest.raises(ConfigurationError):
            independent_seek_time_distribution(viking, samples=10)

    def test_deterministic_for_fixed_seed(self, viking):
        a = independent_seek_time_distribution(viking, samples=5000, seed=3)
        b = independent_seek_time_distribution(viking, samples=5000, seed=3)
        assert a.mean() == b.mean()
