"""Grouped Sweeping Scheduling tests."""

import numpy as np
import pytest

from repro.core import RoundServiceTimeModel, n_max_plate
from repro.core.gss import (
    GssOperatingPoint,
    gss_group_p_late,
    gss_tradeoff,
    n_max_gss,
)
from repro.errors import ConfigurationError
from repro.server.simulation import simulate_rounds


@pytest.fixture(scope="module")
def model(viking, paper_sizes):
    return RoundServiceTimeModel.for_disk(viking, paper_sizes)


class TestGroupBound:
    def test_one_group_is_scan(self, model):
        assert gss_group_p_late(model, 26, 1, 1.0) == pytest.approx(
            model.b_late(26, 1.0))

    def test_rescaling(self, model):
        # 28 streams in 4 groups: groups of 7 within 0.25 s.
        assert gss_group_p_late(model, 28, 4, 1.0) == pytest.approx(
            model.b_late(7, 0.25))

    def test_more_groups_worse_bound(self, model):
        n = 24
        bounds = [gss_group_p_late(model, n, g, 1.0) for g in (1, 2, 4)]
        assert bounds == sorted(bounds)

    def test_validation(self, model):
        with pytest.raises(ConfigurationError):
            gss_group_p_late(model, 0, 1, 1.0)
        with pytest.raises(ConfigurationError):
            gss_group_p_late(model, 10, 0, 1.0)
        with pytest.raises(ConfigurationError):
            gss_group_p_late(model, 10, 2, 0.0)


class TestAdmission:
    def test_scan_recovers_paper_value(self, model):
        assert n_max_gss(model, 1.0, 1, 0.01) == \
            n_max_plate(model, 1.0, 0.01) == 26

    def test_grouping_costs_streams(self, model):
        nmaxes = [n_max_gss(model, 1.0, g, 0.01) for g in (1, 2, 4, 8)]
        assert nmaxes == sorted(nmaxes, reverse=True)
        assert nmaxes[0] > nmaxes[-1]

    def test_boundary(self, model):
        g = 4
        n = n_max_gss(model, 1.0, g, 0.01)
        assert gss_group_p_late(model, n, g, 1.0) <= 0.01
        assert gss_group_p_late(model, n + 1, g, 1.0) > 0.01

    def test_validation(self, model):
        with pytest.raises(ConfigurationError):
            n_max_gss(model, 1.0, 1, 0.0)


class TestTradeoff:
    def test_profile_shape(self, model):
        points = gss_tradeoff(model, 1.0, 0.01)
        assert [p.groups for p in points] == [1, 2, 4, 8]
        # Latency and buffer shrink with g; admission shrinks too.
        latencies = [p.max_delivery_latency for p in points]
        buffers = [p.buffer_fragments for p in points]
        nmaxes = [p.n_max for p in points]
        assert latencies == sorted(latencies, reverse=True)
        assert buffers == sorted(buffers, reverse=True)
        assert nmaxes == sorted(nmaxes, reverse=True)

    def test_scan_point(self, model):
        scan = gss_tradeoff(model, 1.0, 0.01)[0]
        assert scan == GssOperatingPoint(
            groups=1, n_max=26,
            group_p_late=pytest.approx(model.b_late(26, 1.0)),
            max_delivery_latency=1.0, buffer_fragments=2.0)


class TestSimulation:
    def test_group_bound_covers_subround_simulation(self, viking,
                                                    paper_sizes, model):
        # A GSS group of size ceil(n/g) within t/g is distributionally a
        # §3 round at rescaled parameters -- simulate it directly.
        n, g, t = 24, 4, 1.0
        group_size = -(-n // g)
        batch = simulate_rounds(viking, paper_sizes, group_size, t / g,
                                10_000, np.random.default_rng(21))
        simulated = float(np.mean(batch.service_times > t / g))
        assert gss_group_p_late(model, n, g, t) >= simulated
