"""GlitchModel tests (§3.3)."""

import pytest

from repro.core import GlitchModel, RoundServiceTimeModel
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def glitch(viking, paper_sizes):
    model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
    return GlitchModel(model, t=1.0)


class TestBGlitch:
    def test_eq_3_3_3_average_of_blate(self, glitch):
        n = 28
        expected = sum(glitch.service_model.b_late(k, 1.0)
                       for k in range(1, n + 1)) / n
        assert glitch.b_glitch(n) == pytest.approx(min(expected, 1.0))

    def test_below_blate_at_same_n(self, glitch):
        # Averaging over k <= N can only reduce the bound.
        n = 28
        assert glitch.b_glitch(n) <= glitch.service_model.b_late(n, 1.0)

    def test_monotone_in_n(self, glitch):
        values = [glitch.b_glitch(n) for n in range(20, 34)]
        assert values == sorted(values)

    def test_stays_below_one_even_in_overload(self, glitch):
        # Averaging over k=1..N keeps the bound strictly below 1 as long
        # as small batches still fit the round.
        assert 0.5 < glitch.b_glitch(80) < 1.0

    def test_clipped_at_one_when_no_batch_fits(self, viking, paper_sizes):
        # With a 10 ms round even a single request's SEEK bound misses
        # the deadline, so every term is 1 and the average clips at 1.
        model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        tight = GlitchModel(model, t=0.01)
        assert tight.b_glitch(5) == 1.0

    def test_rejects_bad_n(self, glitch):
        with pytest.raises(ConfigurationError):
            glitch.b_glitch(0)

    def test_rejects_bad_round_length(self, viking, paper_sizes):
        model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        with pytest.raises(ConfigurationError):
            GlitchModel(model, t=0.0)


class TestPError:
    def test_paper_section_3_3_example(self, glitch):
        # "for ... N = 28 ... M = 1200 rounds, the probability that an
        # individual stream suffers more than 12 glitches is at most
        # 0.14e-3."  Our bound lands at the same order of magnitude.
        p = glitch.p_error(28, 1200, 12)
        assert 0.5e-4 < p < 1e-3

    def test_paper_table_2_column(self, glitch):
        # Table 2 analytic: 0.00014 / 0.318 / 1 / 1 / 1 for N=28..32.
        assert glitch.p_error(28, 1200, 12) < 1e-3
        assert 0.1 < glitch.p_error(29, 1200, 12) < 0.7
        assert glitch.p_error(30, 1200, 12) == 1.0
        assert glitch.p_error(31, 1200, 12) == 1.0
        assert glitch.p_error(32, 1200, 12) == 1.0

    def test_hr_dominates_exact_binomial_tail(self, glitch):
        for n in (26, 28, 29):
            assert (glitch.p_error(n, 1200, 12)
                    >= glitch.p_error_exact_tail(n, 1200, 12))

    def test_monotone_in_n(self, glitch):
        values = [glitch.p_error(n, 1200, 12) for n in range(24, 33)]
        assert values == sorted(values)

    def test_monotone_in_g(self, glitch):
        values = [glitch.p_error(28, 1200, g) for g in (6, 9, 12, 18)]
        assert values == sorted(values, reverse=True)

    def test_expected_glitches(self, glitch):
        n, m = 28, 1200
        assert glitch.expected_glitches(n, m) == pytest.approx(
            m * glitch.b_glitch(n))
        with pytest.raises(ConfigurationError):
            glitch.expected_glitches(28, 0)

    def test_glitch_rate_bound_alias(self, glitch):
        assert glitch.glitch_rate_bound(28) == glitch.b_glitch(28)
