"""Analytic recalibration bound vs the runtime storm injector.

``tests/core/test_faults_sensitivity.py`` already checks that
:func:`repro.core.faults.with_recalibration` dominates the *vectorised*
simulation.  Here the disturbance comes from the other direction: the
event-driven server runs under a :func:`recalibration_storm` injected by
the runtime :class:`~repro.server.faults.FaultInjector` (the stall
seizes the arm before each affected sweep), and the observed per-round
overrun rate must still sit below the analytic ``b_late`` of the
recalibrated model with the same ``(prob, stall)`` law.
"""

import numpy as np
import pytest

from repro.core import RoundServiceTimeModel
from repro.core.faults import with_recalibration
from repro.server.faults import FaultInjector, recalibration_storm
from repro.server.server import MediaServer

T = 1.0
N = 27          # one above the delta=0.01 operating point: nonzero rate
ROUNDS = 1200
PROB = 0.5      # storm law: each round stalls 0.15 s w.p. 0.5
STALL = 0.15


def _run_server(spec, size_dist, *, storm: bool, seed: int = 3):
    injector = (FaultInjector([recalibration_storm(0.0, PROB, ROUNDS * T,
                                                   stall=STALL)],
                              seed=seed)
                if storm else None)
    server = MediaServer([spec], T, admission=None, seed=seed,
                         fault_injector=injector)
    rng = np.random.default_rng(42)
    for index in range(N):
        name = f"object-{index}"
        server.store_object(
            name, np.asarray(size_dist.sample(rng, ROUNDS), dtype=float))
        server.open_stream(name)
    return server.run_rounds(ROUNDS)


@pytest.fixture(scope="module")
def storm_report(viking, paper_sizes):
    return _run_server(viking, paper_sizes, storm=True)


class TestRuntimeStormDominance:
    def test_recalibrated_bound_dominates_injected_storm(
            self, storm_report, viking, paper_sizes):
        model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        bound = with_recalibration(model, PROB, STALL).b_late(N, T)
        # The analytic mixture term prices exactly the injected law, so
        # the Chernoff bound must cover the event-driven overrun rate.
        assert storm_report.rounds == ROUNDS
        assert storm_report.p_late <= bound

    def test_clean_bound_cannot_cover_the_storm(self, storm_report,
                                                viking, paper_sizes):
        model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        clean_bound = model.b_late(N, T)
        # The storm pushes the observed rate well above the clean bound:
        # folding the disturbance into the MGF is load-bearing, not
        # slack absorbed by Chernoff conservatism.
        assert storm_report.p_late > 2 * clean_bound

    def test_storm_degrades_the_clean_server(self, storm_report, viking,
                                             paper_sizes):
        clean = _run_server(viking, paper_sizes, storm=False)
        assert clean.p_late <= RoundServiceTimeModel.for_disk(
            viking, paper_sizes).b_late(N, T)
        assert storm_report.late_rounds > 10 * clean.late_rounds

    def test_storm_run_is_deterministic(self, storm_report, viking,
                                        paper_sizes):
        again = _run_server(viking, paper_sizes, storm=True)
        assert again == storm_report
