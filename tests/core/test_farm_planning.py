"""Heterogeneous-farm and degraded-mode admission tests."""

import pytest

from repro.core.farm import degraded_mode_n_max, degraded_modes, plan_farm
from repro.disk import (
    modern_av_drive,
    quantum_viking_2_1,
    scaled_viking,
    seagate_hawk_1lp,
)
from repro.errors import ConfigurationError


class TestFarmPlanning:
    def test_homogeneous_farm_scales_linearly(self, paper_sizes):
        plan = plan_farm([quantum_viking_2_1()] * 4, paper_sizes, 1.0,
                         1200, 12, 0.01)
        assert plan.per_disk_n_max == (28, 28, 28, 28)
        assert plan.n_max_total == 112
        assert plan.wasted_streams == 0

    def test_weakest_disk_binds(self, paper_sizes):
        plan = plan_farm([quantum_viking_2_1(), seagate_hawk_1lp()],
                         paper_sizes, 1.0, 1200, 12, 0.01)
        hawk_only = plan_farm([seagate_hawk_1lp()], paper_sizes, 1.0,
                              1200, 12, 0.01)
        assert plan.binding_disk == 1  # the Hawk is slower
        assert plan.n_max_total == 2 * hawk_only.n_max_total
        assert plan.wasted_streams > 0

    def test_adding_a_slow_disk_can_hurt(self, paper_sizes):
        # Three fast drives alone vs three fast + one old Hawk: the
        # striping rule makes the mixed farm admit FEWER streams.
        fast = modern_av_drive()
        pure = plan_farm([fast] * 3, paper_sizes, 1.0, 1200, 12, 0.01)
        mixed = plan_farm([fast] * 3 + [seagate_hawk_1lp()],
                          paper_sizes, 1.0, 1200, 12, 0.01)
        assert mixed.n_max_total < pure.n_max_total

    def test_validation(self, paper_sizes):
        with pytest.raises(ConfigurationError):
            plan_farm([], paper_sizes, 1.0, 1200, 12, 0.01)
        with pytest.raises(ConfigurationError):
            plan_farm([quantum_viking_2_1()], paper_sizes, 1.0, 1200,
                      12, 0.0)


class TestDegradedMode:
    def test_failure_proof_is_stricter(self, viking, paper_sizes):
        healthy, failure_proof = degraded_mode_n_max(viking, paper_sizes,
                                                     1.0, 0.01)
        assert healthy == 26
        assert 0 < failure_proof < healthy
        # Doubling a failure-proof batch still fits; doubling one more
        # stream does not.
        from repro.core import RoundServiceTimeModel
        model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        assert model.b_late(2 * failure_proof, 1.0) <= 0.01
        assert model.b_late(2 * (failure_proof + 1), 1.0) > 0.01

    def test_faster_disk_tolerates_more(self, paper_sizes):
        _, viking_fp = degraded_mode_n_max(quantum_viking_2_1(),
                                           paper_sizes, 1.0, 0.01)
        _, fast_fp = degraded_mode_n_max(scaled_viking(rate_scale=2.0),
                                         paper_sizes, 1.0, 0.01)
        assert fast_fp > viking_fp

    def test_validation(self, viking, paper_sizes):
        with pytest.raises(ConfigurationError):
            degraded_mode_n_max(viking, paper_sizes, 1.0, 1.5)

    @pytest.mark.parametrize("delta", [0.001, 0.01, 0.1])
    def test_bisection_matches_brute_force_scan(self, paper_sizes,
                                                delta):
        # The O(log) doubled-batch bisection must agree with the
        # exhaustive scan that is exact for any predicate.
        for spec in (quantum_viking_2_1(), seagate_hawk_1lp(),
                     scaled_viking(rate_scale=2.0)):
            fast = degraded_mode_n_max(spec, paper_sizes, 1.0, delta)
            brute = degraded_mode_n_max(spec, paper_sizes, 1.0, delta,
                                        exact=True)
            assert fast == brute, spec.name


class TestFarmFanOut:
    def test_plan_farm_jobs_invariant(self, paper_sizes):
        specs = [quantum_viking_2_1(), seagate_hawk_1lp(),
                 modern_av_drive()]
        serial = plan_farm(specs, paper_sizes, 1.0, 1200, 12, 0.01)
        fanned = plan_farm(specs, paper_sizes, 1.0, 1200, 12, 0.01,
                           jobs=2)
        assert serial == fanned

    def test_degraded_modes_matches_per_disk_calls(self, paper_sizes):
        specs = [quantum_viking_2_1(), seagate_hawk_1lp()]
        expected = [degraded_mode_n_max(s, paper_sizes, 1.0, 0.01)
                    for s in specs]
        assert degraded_modes(specs, paper_sizes, 1.0, 0.01) == expected
        assert (degraded_modes(specs, paper_sizes, 1.0, 0.01, jobs=2)
                == expected)

    def test_degraded_modes_validation(self, paper_sizes):
        with pytest.raises(ConfigurationError):
            degraded_modes([], paper_sizes, 1.0, 0.01)
        with pytest.raises(ConfigurationError):
            degraded_modes([quantum_viking_2_1()], paper_sizes, 1.0,
                           0.0)
