"""Mixed continuous/discrete workload tests (§6 extension)."""

import numpy as np
import pytest

from repro.core.mixed import MixedWorkloadModel
from repro.distributions import Gamma
from repro.errors import ConfigurationError
from repro.server.mixed import simulate_mixed_rounds


@pytest.fixture(scope="module")
def mixed(viking, paper_sizes):
    return MixedWorkloadModel(
        spec=viking,
        continuous_sizes=paper_sizes,
        discrete_sizes=Gamma.from_mean_std(8_000.0, 8_000.0),
    )


class TestAnalytics:
    def test_zero_discrete_recovers_plain_model(self, mixed):
        plain = mixed.continuous_model()
        assert mixed.p_late_integrated(26, 0, 1.0) == pytest.approx(
            plain.b_late(26, 1.0), rel=1e-9)
        assert mixed.discrete_completion_bound(26, 0, 1.0) == \
            pytest.approx(plain.b_late(26, 1.0), rel=1e-9)

    def test_discrete_requests_push_the_bound_up(self, mixed):
        values = [mixed.p_late_integrated(26, k, 1.0)
                  for k in (0, 10, 20, 40)]
        assert values == sorted(values)
        assert values[-1] > 2 * values[0]

    def test_max_discrete_integrated(self, mixed):
        k_max = mixed.max_discrete_integrated(26, 1.0, 0.01)
        assert k_max > 0
        assert mixed.p_late_integrated(26, k_max, 1.0) <= 0.01
        assert mixed.p_late_integrated(26, k_max + 1, 1.0) > 0.01

    def test_no_room_when_continuous_already_over(self, mixed):
        assert mixed.max_discrete_integrated(40, 1.0, 0.01) == 0

    def test_throughput_estimate_positive_with_slack(self, mixed):
        estimate = mixed.discrete_throughput_estimate(20, 1.0)
        assert estimate > 0
        # Slack shrinks with N.
        assert (mixed.discrete_throughput_estimate(30, 1.0)
                < mixed.discrete_throughput_estimate(20, 1.0))

    def test_leftover_clamped_at_zero(self, mixed):
        assert mixed.expected_leftover(60, 1.0) == 0.0

    def test_validation(self, mixed):
        with pytest.raises(ConfigurationError):
            mixed.mixed_log_mgf(0, 0)
        with pytest.raises(ConfigurationError):
            mixed.p_late_integrated(10, 2, 0.0)
        with pytest.raises(ConfigurationError):
            mixed.max_discrete_integrated(10, 1.0, 0.0)
        with pytest.raises(ConfigurationError):
            mixed.discrete_completion_bound(10, -1, 1.0)


class TestSimulation:
    def test_integrated_bound_dominates_simulation(self, mixed, viking,
                                                   paper_sizes):
        n, k = 24, 20
        batch = simulate_mixed_rounds(
            viking, paper_sizes, mixed.discrete_sizes, n, k, 1.0, 4000,
            np.random.default_rng(1), policy="integrated")
        sim_late = float(np.mean(batch.service_times > 1.0))
        assert mixed.p_late_integrated(n, k, 1.0) >= sim_late

    def test_continuous_first_protects_streams(self, viking, paper_sizes,
                                               mixed):
        # Under continuous-first, adding discrete load must not change
        # the continuous glitch rate (discrete only eats the leftover).
        n, k = 28, 30
        rng1 = np.random.default_rng(7)
        with_disc = simulate_mixed_rounds(
            viking, paper_sizes, mixed.discrete_sizes, n, k, 1.0, 6000,
            rng1, policy="continuous-first")
        rng2 = np.random.default_rng(7)
        without = simulate_mixed_rounds(
            viking, paper_sizes, mixed.discrete_sizes, n, 0, 1.0, 6000,
            rng2, policy="continuous-first")
        # Identical RNG consumption for the continuous part up to the
        # discrete draws, so rates are statistically equal.
        assert with_disc.continuous_glitch_rate == pytest.approx(
            without.continuous_glitch_rate, abs=0.004)

    def test_integrated_hurts_streams(self, viking, paper_sizes, mixed):
        n, k = 28, 30
        integrated = simulate_mixed_rounds(
            viking, paper_sizes, mixed.discrete_sizes, n, k, 1.0, 6000,
            np.random.default_rng(3), policy="integrated")
        cont_first = simulate_mixed_rounds(
            viking, paper_sizes, mixed.discrete_sizes, n, k, 1.0, 6000,
            np.random.default_rng(3), policy="continuous-first")
        assert (integrated.continuous_glitch_rate
                > cont_first.continuous_glitch_rate)

    def test_continuous_first_discrete_throughput_near_estimate(
            self, viking, paper_sizes, mixed):
        n, k = 20, 60  # plenty of discrete demand, real slack
        batch = simulate_mixed_rounds(
            viking, paper_sizes, mixed.discrete_sizes, n, k, 1.0, 2000,
            np.random.default_rng(5), policy="continuous-first")
        estimate = mixed.discrete_throughput_estimate(n, 1.0)
        observed = batch.mean_discrete_throughput
        # The estimate charges mean random seeks; the simulated discrete
        # sweep is SCAN-ordered and beats it, but within ~3x.
        assert observed >= estimate * 0.8
        assert observed <= estimate * 4.0

    def test_discrete_served_capped_by_k(self, viking, paper_sizes,
                                         mixed):
        batch = simulate_mixed_rounds(
            viking, paper_sizes, mixed.discrete_sizes, 10, 5, 1.0, 200,
            np.random.default_rng(2))
        assert np.all(batch.discrete_served <= 5)

    def test_policy_validation(self, viking, paper_sizes, mixed):
        with pytest.raises(ConfigurationError):
            simulate_mixed_rounds(viking, paper_sizes,
                                  mixed.discrete_sizes, 10, 5, 1.0, 10,
                                  np.random.default_rng(0),
                                  policy="fifo")
        with pytest.raises(ConfigurationError):
            simulate_mixed_rounds(viking, paper_sizes,
                                  mixed.discrete_sizes, 10, -1, 1.0, 10,
                                  np.random.default_rng(0))
