"""Round-length tuning tests."""

import pytest

from repro.core.tuning import tune_round_length
from repro.disk import modern_av_drive, quantum_viking_2_1, seagate_hawk_1lp
from repro.errors import ConfigurationError


class TestSweep:
    @pytest.fixture(scope="class")
    def tuning(self, viking):
        return tune_round_length(viking, display_bandwidth=200_000.0,
                                 cv=0.5, playback_seconds=1200.0)

    def test_bandwidth_grows_through_practical_range(self, tuning):
        # Monotone up to t = 4 s; the 8 s point can dip because the
        # integer glitch budget floor(1% * M) snaps down a step.
        practical = [p.bandwidth for p in tuning.points if p.t <= 4.0]
        assert practical == sorted(practical)

    def test_integer_glitch_budget_can_bend_the_curve(self, tuning):
        # Documented non-monotonicity: the peak need not be at the
        # longest round.  (If disk/grid changes ever make the curve
        # fully monotone this assertion still holds.)
        assert tuning.peak_bandwidth >= tuning.points[-1].bandwidth

    def test_paper_point_included(self, tuning):
        at_1s = next(p for p in tuning.points if p.t == 1.0)
        assert at_1s.n_max == 28

    def test_knee_is_shortest_near_peak(self, tuning):
        target = tuning.knee_fraction * tuning.peak_bandwidth
        assert tuning.knee.bandwidth >= target
        earlier = [p for p in tuning.points if p.t < tuning.knee.t]
        assert all(p.bandwidth < target for p in earlier)

    def test_knee_shorter_than_max_candidate(self, tuning):
        # Diminishing returns: the knee comes well before 8 s rounds.
        assert tuning.knee.t <= 2.0

    def test_startup_delay_equals_t(self, tuning):
        for p in tuning.points:
            assert p.startup_delay == p.t


class TestAcrossDrives:
    def test_faster_drives_admit_more_everywhere(self):
        old = tune_round_length(seagate_hawk_1lp(), 200_000.0, 0.5,
                                1200.0)
        new = tune_round_length(modern_av_drive(), 200_000.0, 0.5,
                                1200.0)
        for p_old, p_new in zip(old.points, new.points):
            assert p_new.n_max > p_old.n_max

    def test_knee_defined_for_all_drives(self):
        for spec in (quantum_viking_2_1(), modern_av_drive(),
                     seagate_hawk_1lp()):
            tuning = tune_round_length(spec, 200_000.0, 0.5, 1200.0)
            assert tuning.knee in tuning.points
            assert tuning.knee.bandwidth >= 0.9 * tuning.peak_bandwidth


class TestValidation:
    def test_bad_inputs(self, viking):
        with pytest.raises(ConfigurationError):
            tune_round_length(viking, 0.0, 0.5, 1200.0)
        with pytest.raises(ConfigurationError):
            tune_round_length(viking, 2e5, 2.5, 1200.0)
        with pytest.raises(ConfigurationError):
            tune_round_length(viking, 2e5, 0.5, 0.0)
        with pytest.raises(ConfigurationError):
            tune_round_length(viking, 2e5, 0.5, 1200.0,
                              candidates=(0.0, 1.0))
        with pytest.raises(ConfigurationError):
            tune_round_length(viking, 2e5, 0.5, 1200.0,
                              knee_fraction=0.0)


class TestNewPresets:
    def test_hawk_parameters(self):
        spec = seagate_hawk_1lp()
        assert spec.zone_map.zones == 9
        assert spec.rot == pytest.approx(11.1e-3)
        assert abs(spec.seek_curve.discontinuity()) < 5e-4

    def test_av_drive_parameters(self):
        spec = modern_av_drive()
        assert spec.zone_map.zones == 20
        assert spec.cylinders == 10_000
        assert abs(spec.seek_curve.discontinuity()) < 5e-4

    def test_av_drive_outperforms_viking(self, paper_sizes):
        from repro.core import RoundServiceTimeModel, n_max_plate
        viking_model = RoundServiceTimeModel.for_disk(
            quantum_viking_2_1(), paper_sizes)
        av_model = RoundServiceTimeModel.for_disk(modern_av_drive(),
                                                  paper_sizes)
        assert (n_max_plate(av_model, 1.0, 0.01)
                > n_max_plate(viking_model, 1.0, 0.01))
