"""Chernoff-bound optimiser tests.

The key correctness checks exploit cases with known exact answers:
for an exponential/Gamma variable the optimal Chernoff exponent has a
closed form, and for any variable the bound must dominate the true tail.
"""

import math

import numpy as np
import pytest

from repro.core.chernoff import chernoff_tail_bound
from repro.core.mgf import (
    ConstantTerm,
    DistributionTerm,
    GammaTerm,
    ProductMGF,
    UniformTerm,
)
from repro.distributions import Gamma, Uniform
from repro.errors import ConfigurationError


class TestExactCases:
    def test_exponential_closed_form(self):
        # X ~ Exp(rate): inf_theta e^{-theta t}(rate/(rate-theta)) has
        # optimum theta* = rate - 1/t, bound = rate*t*e^{1-rate*t}.
        rate = 2.0
        t = 3.0
        result = chernoff_tail_bound(GammaTerm(Gamma(1.0, rate)), t)
        assert result.theta == pytest.approx(rate - 1.0 / t, rel=1e-6)
        assert result.bound == pytest.approx(
            rate * t * math.exp(1 - rate * t), rel=1e-8)

    def test_gamma_closed_form(self):
        # X ~ Gamma(shape,rate): theta* = rate - shape/t,
        # bound = (rate*t/shape)^shape * e^{shape - rate*t}.
        shape, rate, t = 4.0, 2.0, 6.0
        result = chernoff_tail_bound(GammaTerm(Gamma(shape, rate)), t)
        assert result.theta == pytest.approx(rate - shape / t, rel=1e-6)
        expected = (rate * t / shape) ** shape * math.exp(shape - rate * t)
        assert result.bound == pytest.approx(expected, rel=1e-8)

    def test_constant_below_threshold(self):
        # P[c >= t] = 0 for t > c: bound should collapse to ~0
        # exponentially fast... but a constant's objective is linear:
        # -theta(t - c), minimised at the domain edge.  The optimiser
        # must at least produce a very small bound.
        result = chernoff_tail_bound(ConstantTerm(1.0), 2.0)
        assert result.bound < 1e-30

    def test_trivial_when_t_below_mean(self):
        g = GammaTerm(Gamma(4.0, 2.0))  # mean 2.0
        result = chernoff_tail_bound(g, 1.5)
        assert result.bound == 1.0
        assert result.trivial

    def test_trivial_at_exact_mean(self):
        g = GammaTerm(Gamma(4.0, 2.0))
        assert chernoff_tail_bound(g, 2.0).bound == 1.0


class TestDomination:
    def test_bounds_true_gamma_tail(self):
        g = Gamma(4.0, 2.0)
        for t in (2.5, 3.0, 5.0, 8.0):
            bound = chernoff_tail_bound(GammaTerm(g), t).bound
            assert bound >= float(g.sf(t))

    def test_bounds_uniform_sum_tail_monte_carlo(self, rng):
        # Sum of 20 uniforms on [0, 1]: empirical tail must sit below
        # the Chernoff bound.
        n = 20
        term = DistributionTerm(Uniform(0.0, 1.0))
        logmgf = term.pow(n)
        t = 13.0
        bound = chernoff_tail_bound(logmgf, t).bound
        sample = rng.random((200_000, n)).sum(axis=1)
        empirical = float(np.mean(sample >= t))
        assert bound >= empirical
        # ... and is within a couple orders of magnitude (tightness).
        assert bound < max(100 * empirical, 1e-3)

    def test_monotone_in_t(self):
        g = GammaTerm(Gamma(4.0, 2.0)).pow(10)
        ts = np.linspace(25.0, 60.0, 8)
        bounds = [chernoff_tail_bound(g, float(t)).bound for t in ts]
        assert bounds == sorted(bounds, reverse=True)


class TestNumerics:
    def test_log_bound_usable_in_deep_tail(self):
        g = GammaTerm(Gamma(4.0, 2.0))
        result = chernoff_tail_bound(g, 100.0)
        assert result.bound == 0.0 or result.bound < 1e-60
        assert result.log_bound < -150.0
        assert math.isfinite(result.log_bound)

    def test_round_model_shape(self):
        # The actual model shape: constant + N uniforms + N gammas, with
        # the gamma pole bounding the domain.
        n = 27
        logmgf = ProductMGF([
            (ConstantTerm(0.10932), 1),
            (UniformTerm(8.34e-3), n),
            (GammaTerm(Gamma.from_mean_var(0.02174, 0.00011815)), n),
        ])
        result = chernoff_tail_bound(logmgf, 1.0)
        assert 0.005 < result.bound < 0.02  # ~0.0103 in the paper
        assert 0.0 < result.theta < logmgf.theta_sup

    def test_rejects_bad_threshold(self):
        g = GammaTerm(Gamma(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            chernoff_tail_bound(g, 0.0)
        with pytest.raises(ConfigurationError):
            chernoff_tail_bound(g, -1.0)
        with pytest.raises(ConfigurationError):
            chernoff_tail_bound(g, math.inf)

    def test_result_metadata(self):
        g = GammaTerm(Gamma(4.0, 2.0))
        result = chernoff_tail_bound(g, 4.0)
        assert result.t == 4.0
        assert not result.trivial
        assert result.bound == pytest.approx(math.exp(result.log_bound))
