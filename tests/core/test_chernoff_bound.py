"""Chernoff-bound optimiser tests.

The key correctness checks exploit cases with known exact answers:
for an exponential/Gamma variable the optimal Chernoff exponent has a
closed form, and for any variable the bound must dominate the true tail.
"""

import math

import numpy as np
import pytest

from repro.core.chernoff import chernoff_tail_bound
from repro.core.mgf import (
    ConstantTerm,
    LogMGF,
    DistributionTerm,
    GammaTerm,
    ProductMGF,
    UniformTerm,
)
from repro.distributions import Gamma, Uniform
from repro.errors import ConfigurationError


class TestExactCases:
    def test_exponential_closed_form(self):
        # X ~ Exp(rate): inf_theta e^{-theta t}(rate/(rate-theta)) has
        # optimum theta* = rate - 1/t, bound = rate*t*e^{1-rate*t}.
        rate = 2.0
        t = 3.0
        result = chernoff_tail_bound(GammaTerm(Gamma(1.0, rate)), t)
        assert result.theta == pytest.approx(rate - 1.0 / t, rel=1e-6)
        assert result.bound == pytest.approx(
            rate * t * math.exp(1 - rate * t), rel=1e-8)

    def test_gamma_closed_form(self):
        # X ~ Gamma(shape,rate): theta* = rate - shape/t,
        # bound = (rate*t/shape)^shape * e^{shape - rate*t}.
        shape, rate, t = 4.0, 2.0, 6.0
        result = chernoff_tail_bound(GammaTerm(Gamma(shape, rate)), t)
        assert result.theta == pytest.approx(rate - shape / t, rel=1e-6)
        expected = (rate * t / shape) ** shape * math.exp(shape - rate * t)
        assert result.bound == pytest.approx(expected, rel=1e-8)

    def test_constant_below_threshold(self):
        # P[c >= t] = 0 for t > c: bound should collapse to ~0
        # exponentially fast... but a constant's objective is linear:
        # -theta(t - c), minimised at the domain edge.  The optimiser
        # must at least produce a very small bound.
        result = chernoff_tail_bound(ConstantTerm(1.0), 2.0)
        assert result.bound < 1e-30

    def test_trivial_when_t_below_mean(self):
        g = GammaTerm(Gamma(4.0, 2.0))  # mean 2.0
        result = chernoff_tail_bound(g, 1.5)
        assert result.bound == 1.0
        assert result.trivial

    def test_trivial_at_exact_mean(self):
        g = GammaTerm(Gamma(4.0, 2.0))
        assert chernoff_tail_bound(g, 2.0).bound == 1.0


class TestDomination:
    def test_bounds_true_gamma_tail(self):
        g = Gamma(4.0, 2.0)
        for t in (2.5, 3.0, 5.0, 8.0):
            bound = chernoff_tail_bound(GammaTerm(g), t).bound
            assert bound >= float(g.sf(t))

    def test_bounds_uniform_sum_tail_monte_carlo(self, rng):
        # Sum of 20 uniforms on [0, 1]: empirical tail must sit below
        # the Chernoff bound.
        n = 20
        term = DistributionTerm(Uniform(0.0, 1.0))
        logmgf = term.pow(n)
        t = 13.0
        bound = chernoff_tail_bound(logmgf, t).bound
        sample = rng.random((200_000, n)).sum(axis=1)
        empirical = float(np.mean(sample >= t))
        assert bound >= empirical
        # ... and is within a couple orders of magnitude (tightness).
        assert bound < max(100 * empirical, 1e-3)

    def test_monotone_in_t(self):
        g = GammaTerm(Gamma(4.0, 2.0)).pow(10)
        ts = np.linspace(25.0, 60.0, 8)
        bounds = [chernoff_tail_bound(g, float(t)).bound for t in ts]
        assert bounds == sorted(bounds, reverse=True)


class TestNumerics:
    def test_log_bound_usable_in_deep_tail(self):
        g = GammaTerm(Gamma(4.0, 2.0))
        result = chernoff_tail_bound(g, 100.0)
        assert result.bound == 0.0 or result.bound < 1e-60
        assert result.log_bound < -150.0
        assert math.isfinite(result.log_bound)

    def test_round_model_shape(self):
        # The actual model shape: constant + N uniforms + N gammas, with
        # the gamma pole bounding the domain.
        n = 27
        logmgf = ProductMGF([
            (ConstantTerm(0.10932), 1),
            (UniformTerm(8.34e-3), n),
            (GammaTerm(Gamma.from_mean_var(0.02174, 0.00011815)), n),
        ])
        result = chernoff_tail_bound(logmgf, 1.0)
        assert 0.005 < result.bound < 0.02  # ~0.0103 in the paper
        assert 0.0 < result.theta < logmgf.theta_sup

    def test_rejects_bad_threshold(self):
        g = GammaTerm(Gamma(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            chernoff_tail_bound(g, 0.0)
        with pytest.raises(ConfigurationError):
            chernoff_tail_bound(g, -1.0)
        with pytest.raises(ConfigurationError):
            chernoff_tail_bound(g, math.inf)

    def test_result_metadata(self):
        g = GammaTerm(Gamma(4.0, 2.0))
        result = chernoff_tail_bound(g, 4.0)
        assert result.t == 4.0
        assert not result.trivial
        assert result.bound == pytest.approx(math.exp(result.log_bound))


class _NaiveTwoPointMGF(LogMGF):
    """Fair coin on {a, b} with the MGF evaluated the naive way.

    ``log(0.5 e^{theta a} + 0.5 e^{theta b})`` overflows double
    precision once ``theta * b > ~709`` even though the analytic
    ``theta_sup`` is infinite -- the same failure mode as
    quadrature-evaluated empirical MGFs.  Used to pin down optimiser
    behaviour when the *numeric* domain is far smaller than the
    analytic one.
    """

    def __init__(self, a: float, b: float) -> None:
        self.a = float(a)
        self.b = float(b)

    @property
    def theta_sup(self) -> float:
        return math.inf

    def __call__(self, theta: float) -> float:
        with np.errstate(over="ignore"):  # the overflow IS the point
            return float(np.log(0.5 * np.exp(theta * self.a)
                                + 0.5 * np.exp(theta * self.b)))

    def mean(self) -> float:
        return 0.5 * (self.a + self.b)

    def var(self) -> float:
        return 0.25 * (self.b - self.a) ** 2


class TestRegressions:
    """Reproducers for two historical optimiser failures."""

    @pytest.mark.parametrize("scale", [1e12, 1e13])
    def test_bracket_clamps_to_numeric_domain_boundary(self, scale):
        # Regression: with a naive MGF that overflows at theta*b ~ 709,
        # the bracket expansion used to double ``hi`` straight onto the
        # _BIG plateau and keep it there, so the whole seed grid sat on
        # the plateau and the optimiser fell back to the trivial bound 1.
        # The expansion must instead clamp ``hi`` to the last finite
        # theta.  Exact answer: for a fair coin on {a, b} and
        # a < t < b the optimal Chernoff bound at t -> b^- approaches
        # inf_theta e^{-theta t} E e^{theta X}; at t = 0.999b it is
        # ~0.5288, against a true tail of 0.5.
        logmgf = _NaiveTwoPointMGF(0.9 * scale, 1.0 * scale)
        t = 0.999 * scale
        result = chernoff_tail_bound(logmgf, t)
        assert not result.trivial
        assert result.theta > 0.0
        assert 0.5 <= result.bound < 0.6
        assert result.bound == pytest.approx(0.5288, rel=1e-2)

    @pytest.mark.parametrize("shape", [1e31, 1e32])
    def test_seed_grid_zooms_when_argmin_at_zero(self, shape):
        # Regression: for a huge-shape Gamma (tiny relative variance)
        # with t just above the mean, the optimal theta* sits far below
        # the seed grid's smallest positive point (hi * 1e-9), so the
        # grid argmin landed at index 0 and the minimiser received the
        # degenerate bracket (0, grid[1]) with a tolerance coarser than
        # the dip -- returning theta* ~ 0 and the trivial bound 1 for a
        # genuinely bounded tail (true probability ~3.7e-6, five
        # standard deviations out).  The grid must zoom toward zero
        # until the argmin is interior.
        g = GammaTerm(Gamma(shape, 1.0))
        t = shape + 5.0 * math.sqrt(shape)  # mean + 5 sd
        result = chernoff_tail_bound(g, t)
        assert not result.trivial
        assert result.theta > 0.0
        # Float cancellation at theta*mean ~ 5e15 keeps the optimised
        # exponent from matching the analytic value tightly; the
        # regression contract is "non-trivial and deep", not exact.
        assert result.bound < 1e-3
