"""Property-based tests on the core analytic machinery (hypothesis).

The strongest check exploits closure: a sum of n i.i.d. Gamma(beta,
alpha) variables is exactly Gamma(n*beta, alpha), so the Chernoff bound
built from the n-fold MGF power can be compared against the *exact*
tail probability -- the bound must dominate it for every generated
configuration, at every threshold.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.core import GlitchModel, RoundServiceTimeModel, n_max_plate
from repro.core.chernoff import chernoff_tail_bound
from repro.core.mgf import (
    ConstantTerm,
    GammaTerm,
    ProductMGF,
    UniformTerm,
)
from repro.distributions import Gamma, hagerup_rub_tail

shapes = st.floats(min_value=0.3, max_value=30.0)
rates = st.floats(min_value=0.01, max_value=100.0)
counts = st.integers(min_value=1, max_value=60)


class TestChernoffExactness:
    @settings(max_examples=60, deadline=None)
    @given(shapes, rates, counts,
           st.floats(min_value=1.05, max_value=8.0))
    def test_dominates_exact_gamma_sum_tail(self, shape, rate, n,
                                            mean_multiple):
        """Chernoff(n-fold Gamma MGF) >= exact Gamma(n*shape, rate)
        tail at any threshold above the mean."""
        term = GammaTerm(Gamma(shape, rate))
        logmgf = term.pow(n)
        t = mean_multiple * n * shape / rate
        bound = chernoff_tail_bound(logmgf, t)
        exact = float(stats.gamma.sf(t, a=n * shape,
                                     scale=1.0 / rate))
        assert bound.bound >= exact - 1e-12

    @settings(max_examples=60, deadline=None)
    @given(shapes, rates, counts,
           st.floats(min_value=1.5, max_value=6.0))
    def test_within_polynomial_factor_of_exact(self, shape, rate, n,
                                               mean_multiple):
        """Chernoff bounds lose only a sub-exponential factor: the
        log-bound must track the exact log-tail within a generous
        additive margin that grows slowly with the tail depth."""
        term = GammaTerm(Gamma(shape, rate))
        logmgf = term.pow(n)
        t = mean_multiple * n * shape / rate
        bound = chernoff_tail_bound(logmgf, t)
        exact = float(stats.gamma.logsf(t, a=n * shape,
                                        scale=1.0 / rate))
        if exact < -600:  # beyond double-precision interest
            return
        # log bound in [exact, exact * 0.2] roughly; allow wide slack.
        assert bound.log_bound >= exact
        assert bound.log_bound <= 0.5 * exact + 10.0

    @settings(max_examples=40, deadline=None)
    @given(shapes, rates, st.floats(min_value=0.2, max_value=1.0))
    def test_trivial_at_or_below_mean(self, shape, rate, fraction):
        term = GammaTerm(Gamma(shape, rate))
        t = fraction * shape / rate
        assert chernoff_tail_bound(term, t).bound == 1.0

    @settings(max_examples=40, deadline=None)
    @given(shapes, rates, counts)
    def test_monotone_in_threshold(self, shape, rate, n):
        logmgf = GammaTerm(Gamma(shape, rate)).pow(n)
        mean = n * shape / rate
        ts = [mean * m for m in (1.2, 1.7, 2.5, 4.0)]
        bounds = [chernoff_tail_bound(logmgf, t).bound for t in ts]
        assert all(b1 >= b2 - 1e-15
                   for b1, b2 in zip(bounds, bounds[1:]))


class TestRoundModelProperties:
    @st.composite
    @staticmethod
    def round_configs(draw):
        rot = draw(st.floats(min_value=1e-3, max_value=30e-3))
        seek_per_req = draw(st.floats(min_value=1e-4, max_value=8e-3))
        mean = draw(st.floats(min_value=5e-3, max_value=60e-3))
        cv = draw(st.floats(min_value=0.1, max_value=1.2))
        return rot, seek_per_req, mean, cv

    @settings(max_examples=30, deadline=None)
    @given(round_configs(), st.integers(min_value=2, max_value=40))
    def test_mean_var_additivity(self, config, n):
        rot, seek_per_req, mean, cv = config
        model = RoundServiceTimeModel(
            seek_bound=lambda k: seek_per_req * (k + 1), rot=rot,
            transfer=Gamma.from_mean_std(mean, cv * mean))
        expected_mean = (seek_per_req * (n + 1) + n * rot / 2
                         + n * mean)
        expected_var = n * rot ** 2 / 12 + n * (cv * mean) ** 2
        assert math.isclose(model.mean(n), expected_mean, rel_tol=1e-9)
        assert math.isclose(model.var(n), expected_var, rel_tol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(round_configs())
    def test_b_late_monotone_in_n(self, config):
        rot, seek_per_req, mean, cv = config
        model = RoundServiceTimeModel(
            seek_bound=lambda k: seek_per_req * (k + 1), rot=rot,
            transfer=Gamma.from_mean_std(mean, cv * mean))
        t = 20 * (mean + rot)  # keeps some n feasible
        bounds = [model.b_late(n, t) for n in (1, 5, 10, 20, 40)]
        assert all(a <= b + 1e-15 for a, b in zip(bounds, bounds[1:]))

    @settings(max_examples=20, deadline=None)
    @given(round_configs())
    def test_n_max_consistent_with_bound(self, config):
        rot, seek_per_req, mean, cv = config
        model = RoundServiceTimeModel(
            seek_bound=lambda k: seek_per_req * (k + 1), rot=rot,
            transfer=Gamma.from_mean_std(mean, cv * mean))
        t = 15 * (mean + rot)
        n_max = n_max_plate(model, t, 0.01, n_cap=200)
        if n_max > 0:
            assert model.b_late(n_max, t) <= 0.01
        if n_max < 200:
            assert model.b_late(n_max + 1, t) > 0.01


class TestGlitchTelescoping:
    def test_eq_3_3_2_against_direct_monte_carlo(self, rng):
        """Validate the telescoping identity with a direct simulation
        of the abstract §3.3 model: N streams in random service order,
        T_k = SEEK + sum of k (rot + trans), stream glitches iff its
        position k has T_k > t."""
        n, t = 8, 0.35
        seek = 0.05
        rot = 8.34e-3
        trans = Gamma.from_mean_std(0.03, 0.015)
        trials = 120_000
        rot_draws = rng.uniform(0, rot, size=(trials, n))
        trans_draws = trans.sample(rng, size=(trials, n))
        completion = seek + np.cumsum(rot_draws + trans_draws, axis=1)
        # Tagged stream occupies a uniformly random service position.
        positions = rng.integers(0, n, size=trials)
        tagged_late = completion[np.arange(trials), positions] > t
        p_tagged = float(np.mean(tagged_late))

        # Right-hand side of eq. (3.3.2): (1/N) sum_k P[T_k > t].
        p_late_k = np.mean(completion > t, axis=0)
        rhs = float(np.mean(p_late_k))
        assert p_tagged == pytest.approx(rhs, rel=0.03)

    def test_b_glitch_dominates_abstract_model(self, rng):
        """The Chernoff-based b_glitch covers the abstract model's
        tagged-stream glitch probability."""
        n, t = 8, 0.35
        seek = 0.05
        rot = 8.34e-3
        trans = Gamma.from_mean_std(0.03, 0.015)
        model = RoundServiceTimeModel(
            seek_bound=lambda k, s=seek: s, rot=rot, transfer=trans)
        glitch = GlitchModel(model, t)
        bound = glitch.b_glitch(n)

        trials = 60_000
        rot_draws = rng.uniform(0, rot, size=(trials, n))
        trans_draws = trans.sample(rng, size=(trials, n))
        completion = seek + np.cumsum(rot_draws + trans_draws, axis=1)
        positions = rng.integers(0, n, size=trials)
        p_tagged = float(
            np.mean(completion[np.arange(trials), positions] > t))
        assert bound >= p_tagged


class TestHagerupRubProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=10, max_value=5000),
           st.floats(min_value=1e-5, max_value=0.3),
           st.floats(min_value=1.2, max_value=10.0))
    def test_dominates_exact_binomial(self, m, p, g_factor):
        g = min(int(math.ceil(g_factor * m * p)) + 1, m)
        exact = float(stats.binom.sf(g - 1, m, p))
        assert hagerup_rub_tail(m, p, g) >= exact - 1e-12
