"""Transfer-time model tests (§3.1 single-zone, §3.2 multi-zone)."""

import numpy as np
import pytest

from repro.core.transfer import MultiZoneTransferModel, single_zone_transfer_time
from repro.disk import ZoneMap, quantum_viking_2_1
from repro.distributions import Gamma, LogNormal
from repro.errors import ConfigurationError, ModelError

ROT = 8.34e-3


@pytest.fixture(scope="module")
def sizes():
    return Gamma.from_mean_std(200_000.0, 100_000.0)


@pytest.fixture(scope="module")
def model(sizes):
    return MultiZoneTransferModel(quantum_viking_2_1().zone_map, sizes)


class TestSingleZone:
    def test_paper_example_moments(self, sizes):
        # §3.1: E = 0.02174 s, Var = 0.00011815 s^2 for a 75 KiB track.
        rate = 76800.0 / ROT
        t = single_zone_transfer_time(sizes, rate)
        assert t.mean() == pytest.approx(0.02174, rel=2e-3)
        assert t.var() == pytest.approx(0.00011815, rel=3e-3)

    def test_gamma_scaling_is_exact(self, sizes, rng):
        # Gamma/c is Gamma: the "approximation" is exact for Gamma sizes.
        rate = 9e6
        t = single_zone_transfer_time(sizes, rate)
        sample = sizes.sample(rng, 200_000) / rate
        assert np.mean(sample) == pytest.approx(t.mean(), rel=0.01)
        assert np.quantile(sample, 0.99) == pytest.approx(
            float(t.ppf(0.99)), rel=0.02)

    def test_rejects_bad_rate(self, sizes):
        with pytest.raises(ConfigurationError):
            single_zone_transfer_time(sizes, 0.0)


class TestMultiZoneMoments:
    def test_factorised_moments(self, model, sizes):
        zm = quantum_viking_2_1().zone_map
        assert model.mean() == pytest.approx(
            sizes.mean() * zm.rate_moment(-1), rel=1e-12)
        second = sizes.moment(2) * zm.rate_moment(-2)
        assert model.var() == pytest.approx(second - model.mean() ** 2,
                                            rel=1e-12)

    def test_moments_match_sampling(self, model, rng):
        sample = model.sample(rng, size=400_000)
        assert np.mean(sample) == pytest.approx(model.mean(), rel=0.005)
        assert np.var(sample) == pytest.approx(model.var(), rel=0.02)

    def test_gamma_approx_matches_moments(self, model):
        g = model.gamma_approximation()
        assert g.mean() == pytest.approx(model.mean(), rel=1e-12)
        assert g.var() == pytest.approx(model.var(), rel=1e-12)

    def test_slower_than_best_zone_faster_than_worst(self, model, sizes):
        zm = quantum_viking_2_1().zone_map
        assert (sizes.mean() / zm.r_max < model.mean()
                < sizes.mean() / zm.r_min)


class TestExactDensity:
    def test_integrates_to_one(self, model):
        t = np.linspace(1e-6, 0.5, 400_001)
        assert np.trapezoid(model.exact_pdf(t), t) == pytest.approx(
            1.0, abs=1e-4)

    def test_matches_monte_carlo_histogram(self, model, rng):
        sample = model.sample(rng, size=500_000)
        hist, edges = np.histogram(sample, bins=60, range=(0.0, 0.1),
                                   density=True)
        centres = 0.5 * (edges[:-1] + edges[1:])
        dens = model.exact_pdf(centres)
        mask = dens > 1.0  # only compare where there is real mass
        assert np.allclose(hist[mask], dens[mask], rtol=0.15)

    def test_cdf_consistent_with_pdf(self, model):
        ts = np.linspace(1e-5, 0.2, 20_001)
        pdf = model.exact_pdf(ts)
        cdf_numeric = np.cumsum(pdf) * (ts[1] - ts[0])
        cdf = model.exact_cdf(ts)
        assert np.allclose(cdf, cdf_numeric, atol=2e-3)

    def test_continuous_close_to_discrete_with_many_zones(self, sizes):
        zm = ZoneMap.linear(200, 58368.0, 95744.0, ROT)
        m = MultiZoneTransferModel(zm, sizes)
        ts = np.linspace(5e-3, 0.1, 50)
        assert np.allclose(m.continuous_pdf(ts), m.exact_pdf(ts),
                           rtol=0.02, atol=0.05)

    def test_continuous_rejects_single_zone(self, sizes):
        zm = ZoneMap.linear(1, 76800.0, 76800.0, ROT)
        m = MultiZoneTransferModel(zm, sizes)
        with pytest.raises(ModelError):
            m.continuous_pdf(0.02)


class TestApproximationQuality:
    def test_paper_two_percent_claim(self, model):
        # §3.2 claims "< 2 percent in the most relevant range (5-100
        # ms)".  With peak-normalised density error we measure ~3.2 %
        # (concentrated at the density mode, ~15 ms); the distribution
        # -function error is well under 1 %.  EXPERIMENTS.md records the
        # residual; here we pin the measured behaviour.
        report = model.approximation_report(5e-3, 100e-3)
        assert report.max_relative_error < 0.04

    def test_cdf_error_under_one_percent(self, model):
        import numpy as np
        ts = np.linspace(5e-3, 100e-3, 300)
        exact = model.exact_cdf(ts)
        approx = np.asarray(model.gamma_approximation().cdf(ts))
        assert float(np.max(np.abs(exact - approx))) < 0.01

    def test_report_grids(self, model):
        report = model.approximation_report(5e-3, 100e-3, points=50)
        assert report.times.shape == (50,)
        assert report.exact_pdf.shape == (50,)
        assert np.all(report.relative_error >= 0)

    def test_continuous_variant(self, model):
        report = model.approximation_report(5e-3, 100e-3,
                                            use_continuous=True)
        assert report.max_relative_error < 0.05

    def test_rejects_bad_range(self, model):
        with pytest.raises(ConfigurationError):
            model.approximation_report(0.1, 0.05)


class TestOtherSizeLaws:
    def test_lognormal_sizes_accepted(self):
        zm = quantum_viking_2_1().zone_map
        m = MultiZoneTransferModel(
            zm, LogNormal.from_mean_std(200_000.0, 100_000.0))
        assert m.mean() == pytest.approx(0.0217, rel=0.02)
        g = m.gamma_approximation()
        assert g.mean() == pytest.approx(m.mean())
