"""Log-MGF algebra unit tests."""

import math

import pytest

from repro.core.mgf import (
    ConstantTerm,
    DistributionTerm,
    GammaTerm,
    NumericTerm,
    ProductMGF,
    UniformTerm,
)
from repro.distributions import Gamma, LogNormal, Truncated, Uniform
from repro.errors import ConfigurationError, ModelError


class TestTerms:
    def test_constant_term(self):
        t = ConstantTerm(0.10932)
        assert t(2.0) == pytest.approx(0.21864)
        assert t.mean() == 0.10932
        assert t.var() == 0.0
        assert t.theta_sup == math.inf

    def test_uniform_term_matches_distribution(self):
        rot = 8.34e-3
        term = UniformTerm(rot)
        dist = Uniform(0.0, rot)
        for theta in (-100.0, 0.0, 50.0, 1000.0):
            assert term(theta) == pytest.approx(dist.log_mgf(theta))

    def test_gamma_term_pole(self):
        term = GammaTerm(Gamma(shape=2.0, rate=5.0))
        assert term.theta_sup == 5.0
        assert math.isinf(term(5.0))
        assert math.isinf(term(6.0))

    def test_gamma_term_from_moments(self):
        term = GammaTerm.from_mean_var(0.02, 1e-4)
        assert term.mean() == pytest.approx(0.02)
        assert term.var() == pytest.approx(1e-4)

    def test_numeric_term_requires_mgf(self):
        with pytest.raises(ModelError):
            NumericTerm(LogNormal(0.0, 1.0))
        truncated = Truncated(LogNormal(0.0, 1.0), 0.0, 50.0)
        term = NumericTerm(truncated)
        assert math.isfinite(term(0.5))


class TestProduct:
    def test_sum_of_independent_gammas(self):
        # Gamma(a1,r) + Gamma(a2,r) = Gamma(a1+a2,r): MGFs must agree.
        g1 = GammaTerm(Gamma(2.0, 5.0))
        g2 = GammaTerm(Gamma(3.0, 5.0))
        combined = g1 * g2
        direct = GammaTerm(Gamma(5.0, 5.0))
        for theta in (0.0, 1.0, 4.0):
            assert combined(theta) == pytest.approx(direct(theta))

    def test_pow_is_repeated_product(self):
        g = GammaTerm(Gamma(2.0, 5.0))
        assert g.pow(3)(1.0) == pytest.approx(3 * g(1.0))

    def test_mean_and_var_additive(self):
        rot = UniformTerm(8.34e-3)
        trans = GammaTerm(Gamma(4.0, 200.0))
        seek = ConstantTerm(0.1)
        n = 26
        product = ProductMGF([(seek, 1), (rot, n), (trans, n)])
        assert product.mean() == pytest.approx(
            0.1 + n * rot.mean() + n * trans.mean())
        assert product.var() == pytest.approx(
            n * rot.var() + n * trans.var())

    def test_theta_sup_is_min_over_factors(self):
        product = ProductMGF([(GammaTerm(Gamma(1.0, 3.0)), 2),
                              (UniformTerm(1.0), 1)])
        assert product.theta_sup == 3.0

    def test_paper_eq_3_1_4_shape(self):
        # T_N*(s) = e^{-s SEEK}((1-e^{-s ROT})/(s ROT))^N (a/(a+s))^{bN}
        seek, rot = 0.10932, 8.34e-3
        alpha, beta = 183.9, 4.0
        n = 27
        product = ProductMGF([
            (ConstantTerm(seek), 1),
            (UniformTerm(rot), n),
            (GammaTerm(Gamma(beta, alpha)), n),
        ])
        s = 3.7
        expected = (math.exp(-s * seek)
                    * ((1 - math.exp(-s * rot)) / (s * rot)) ** n
                    * (alpha / (alpha + s)) ** (beta * n))
        assert product.laplace_stieltjes(s) == pytest.approx(expected,
                                                             rel=1e-10)

    def test_flattening_nested_products(self):
        g = GammaTerm(Gamma(2.0, 5.0))
        inner = ProductMGF([(g, 2)])
        outer = ProductMGF([(inner, 3)])
        assert outer(1.0) == pytest.approx(6 * g(1.0))

    def test_zero_multiplicity_dropped(self):
        g = GammaTerm(Gamma(2.0, 5.0))
        product = ProductMGF([(g, 0)])
        assert product.factors == ()
        assert product(1.0) == 0.0

    def test_infinite_factor_propagates(self):
        product = ProductMGF([(GammaTerm(Gamma(1.0, 2.0)), 1),
                              (ConstantTerm(1.0), 1)])
        assert math.isinf(product(2.5))

    def test_rejects_negative_multiplicity(self):
        g = GammaTerm(Gamma(2.0, 5.0))
        with pytest.raises(ConfigurationError):
            ProductMGF([(g, -1)])
        with pytest.raises(ConfigurationError):
            g.pow(-2)

    def test_distribution_term_rejects_mgf_less(self):
        with pytest.raises(ModelError):
            DistributionTerm(LogNormal(0.0, 1.0))
