"""Heterogeneous stream-class extension tests."""

import numpy as np
import pytest

from repro.core import RoundServiceTimeModel, n_max_plate
from repro.core.heterogeneous import (
    StreamClass,
    class_mixture_model,
    fixed_mix_p_late,
)
from repro.distributions import Gamma, Mixture
from repro.errors import ConfigurationError
from repro.server.simulation import estimate_p_late


@pytest.fixture(scope="module")
def classes():
    return [
        StreamClass("audio", Gamma.from_mean_std(64_000.0, 20_000.0),
                    share=0.5),
        StreamClass("video", Gamma.from_mean_std(300_000.0, 150_000.0),
                    share=0.5),
    ]


class TestMixtureModel:
    def test_transfer_is_mixture(self, viking, classes):
        model = class_mixture_model(viking, classes)
        assert isinstance(model.transfer, Mixture)
        # Mixture mean between pure-class means.
        audio_only = class_mixture_model(viking, classes[:1])
        video_only = class_mixture_model(viking, classes[1:])
        assert (audio_only.transfer.mean() < model.transfer.mean()
                < video_only.transfer.mean())

    def test_mixed_load_admits_between_pure_loads(self, viking, classes):
        mixed = n_max_plate(class_mixture_model(viking, classes), 1.0,
                            0.01)
        audio = n_max_plate(class_mixture_model(viking, classes[:1]), 1.0,
                            0.01)
        video = n_max_plate(class_mixture_model(viking, classes[1:]), 1.0,
                            0.01)
        assert video <= mixed <= audio
        assert audio > video  # light streams pack denser

    def test_bound_dominates_mixed_simulation(self, viking, classes):
        # Simulate with the *size* mixture (each request drawn from a
        # random class) and check the analytic mixture bound covers it.
        model = class_mixture_model(viking, classes)
        size_mixture = Mixture([(c.share, c.size_dist) for c in classes])
        n = n_max_plate(model, 1.0, 0.05)
        sim = estimate_p_late(viking, size_mixture, n, 1.0, rounds=8000,
                              seed=3)
        assert model.b_late(n, 1.0) >= sim.p_late

    def test_empty_classes_rejected(self, viking):
        with pytest.raises(ConfigurationError):
            class_mixture_model(viking, [])

    def test_share_validation(self):
        with pytest.raises(ConfigurationError):
            StreamClass("bad", Gamma(1.0, 1.0), share=0.0)


class TestFixedMix:
    def test_matches_single_class_model(self, viking, classes):
        # A fixed mix of only video requests equals the plain model.
        video = classes[1]
        plain = RoundServiceTimeModel.for_disk(viking, video.size_dist)
        fixed = fixed_mix_p_late(viking, {"video": 26}, classes, 1.0)
        assert fixed == pytest.approx(plain.b_late(26, 1.0), rel=1e-6)

    def test_fixed_mix_tighter_than_mixture(self, viking, classes):
        # Pinning the mix removes multinomial variability, so the fixed
        # bound is no looser than the mixture bound at the same split.
        n = 30
        counts = {"audio": n // 2, "video": n - n // 2}
        mixture_model = class_mixture_model(viking, classes)
        fixed = fixed_mix_p_late(viking, counts, classes, 1.0)
        mixture = mixture_model.b_late(n, 1.0)
        assert fixed <= mixture * 1.0001

    def test_more_video_is_worse(self, viking, classes):
        a = fixed_mix_p_late(viking, {"audio": 20, "video": 10}, classes,
                             1.0)
        b = fixed_mix_p_late(viking, {"audio": 10, "video": 20}, classes,
                             1.0)
        assert a < b

    def test_zero_count_class_ignored(self, viking, classes):
        with_zero = fixed_mix_p_late(viking, {"audio": 0, "video": 26},
                                     classes, 1.0)
        without = fixed_mix_p_late(viking, {"video": 26}, classes, 1.0)
        assert with_zero == pytest.approx(without, rel=1e-9)

    def test_validation(self, viking, classes):
        with pytest.raises(ConfigurationError):
            fixed_mix_p_late(viking, {"nope": 5}, classes, 1.0)
        with pytest.raises(ConfigurationError):
            fixed_mix_p_late(viking, {"audio": 0}, classes, 1.0)
        with pytest.raises(ConfigurationError):
            fixed_mix_p_late(viking, {"audio": -1, "video": 2}, classes,
                             1.0)
