"""Admission-control solver tests (eq. 3.1.7, 3.3.6, 4.1, §5)."""

import pytest

from repro.core import (
    AdmissionTable,
    GlitchModel,
    RoundServiceTimeModel,
    n_max_perror,
    n_max_plate,
    worst_case_n_max,
)
from repro.core.baselines import worst_case_components
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def model(viking, paper_sizes):
    return RoundServiceTimeModel.for_disk(viking, paper_sizes)


@pytest.fixture(scope="module")
def glitch(model):
    return GlitchModel(model, t=1.0)


class TestNMaxPlate:
    def test_paper_value(self, model):
        # §3.2: delta = 1% => N_max = 26 on the Table 1 disk.
        assert n_max_plate(model, 1.0, 0.01) == 26

    def test_definition_is_boundary(self, model):
        n = n_max_plate(model, 1.0, 0.01)
        assert model.b_late(n, 1.0) <= 0.01
        assert model.b_late(n + 1, 1.0) > 0.01

    def test_looser_threshold_admits_more(self, model):
        assert (n_max_plate(model, 1.0, 0.05)
                >= n_max_plate(model, 1.0, 0.01)
                >= n_max_plate(model, 1.0, 0.001))

    def test_zero_when_even_one_stream_fails(self, model):
        # Round of 10 ms cannot even absorb SEEK(1): N_max = 0.
        assert n_max_plate(model, 0.01, 0.01) == 0

    def test_validation(self, model):
        with pytest.raises(ConfigurationError):
            n_max_plate(model, 1.0, 0.0)
        with pytest.raises(ConfigurationError):
            n_max_plate(model, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            n_max_plate(model, 1.0, 0.01, n_cap=0)


class TestNMaxPError:
    def test_paper_value(self, glitch):
        # §4: "The analytic bound according to (3.3.6) would be 28".
        assert n_max_perror(glitch, 1200, 12, 0.01) == 28

    def test_definition_is_boundary(self, glitch):
        n = n_max_perror(glitch, 1200, 12, 0.01)
        assert glitch.p_error(n, 1200, 12) <= 0.01
        assert glitch.p_error(n + 1, 1200, 12) > 0.01

    def test_stream_level_beats_round_level(self, model, glitch):
        # Tolerating 1% of rounds per stream admits more streams than
        # requiring 99% of whole rounds to be on time.
        assert (n_max_perror(glitch, 1200, 12, 0.01)
                > n_max_plate(model, 1.0, 0.01))

    def test_validation(self, glitch):
        with pytest.raises(ConfigurationError):
            n_max_perror(glitch, 1200, 12, 0.0)


class TestWorstCase:
    def test_paper_conservative_value(self, viking, paper_sizes):
        rot, seek, trans = worst_case_components(viking, paper_sizes,
                                                 0.99, "min")
        assert worst_case_n_max(1.0, rot, seek, trans) == 10

    def test_paper_optimistic_value(self, viking, paper_sizes):
        rot, seek, trans = worst_case_components(viking, paper_sizes,
                                                 0.95, "mean")
        assert worst_case_n_max(1.0, rot, seek, trans) == 14

    def test_component_values(self, viking, paper_sizes):
        rot, seek, trans = worst_case_components(viking, paper_sizes,
                                                 0.99, "min")
        assert rot == pytest.approx(8.34e-3)
        assert seek == pytest.approx(18e-3, abs=1e-4)
        assert trans == pytest.approx(71.7e-3, abs=5e-4)

    def test_stochastic_beats_worst_case(self, viking, paper_sizes, model,
                                         glitch):
        # The paper's headline: 26-28 streams stochastic vs 10 worst-case.
        rot, seek, trans = worst_case_components(viking, paper_sizes,
                                                 0.99, "min")
        wc = worst_case_n_max(1.0, rot, seek, trans)
        assert n_max_plate(model, 1.0, 0.01) >= 2.5 * wc

    def test_validation(self, viking, paper_sizes):
        with pytest.raises(ConfigurationError):
            worst_case_n_max(1.0, 0.0, 0.01, 0.01)
        with pytest.raises(ConfigurationError):
            worst_case_components(viking, paper_sizes, 1.5, "min")
        with pytest.raises(ConfigurationError):
            worst_case_components(viking, paper_sizes, 0.99, "median")


class TestAdmissionTable:
    def test_precompute_and_lookup(self, glitch):
        table = AdmissionTable(glitch, m=1200, g=12)
        table.build(plate_thresholds=(0.01, 0.05),
                    perror_thresholds=(0.01,))
        entries = table.entries()
        assert entries["plate"][0.01] == 26
        assert entries["perror"][0.01] == 28

    def test_lookup_is_cached(self, glitch):
        table = AdmissionTable(glitch, m=1200, g=12)
        first = table.n_max_perror(0.01)
        # Poison the underlying dict to prove the second call is a probe.
        table._perror[0.01] = first
        assert table.n_max_perror(0.01) == first

    def test_validation(self, glitch):
        with pytest.raises(ConfigurationError):
            AdmissionTable(glitch, m=0, g=0)
        with pytest.raises(ConfigurationError):
            AdmissionTable(glitch, m=10, g=11)


    def test_canonical_threshold_keys(self, glitch):
        # 0.1 * 0.1 != 0.01 bitwise; the table must treat them as the
        # same tolerance instead of re-solving under a noise key.
        table = AdmissionTable(glitch, m=1200, g=12)
        first = table.n_max_perror(0.01)
        assert table.n_max_perror(0.1 * 0.1) == first
        assert list(table.entries()["perror"]) == [0.01]

    def test_exact_table_matches_bisection(self, glitch):
        fast = AdmissionTable(glitch, m=1200, g=12)
        slow = AdmissionTable(glitch, m=1200, g=12, exact=True)
        assert fast.n_max_plate(0.01) == slow.n_max_plate(0.01) == 26
        assert fast.n_max_perror(0.01) == slow.n_max_perror(0.01) == 28
