"""RoundServiceTimeModel tests (§3.1/§3.2 assembly)."""

import numpy as np
import pytest

from repro.core import RoundServiceTimeModel, oyang_seek_bound
from repro.disk import single_zone_viking
from repro.distributions import LogNormal
from repro.errors import ConfigurationError, ModelError
from repro.server.simulation import simulate_rounds


@pytest.fixture(scope="module")
def mz_model(viking, paper_sizes):
    return RoundServiceTimeModel.for_disk(viking, paper_sizes)


@pytest.fixture(scope="module")
def sz_model(viking_single_zone, paper_sizes):
    return RoundServiceTimeModel.for_disk(viking_single_zone, paper_sizes,
                                          multizone=False)


class TestAssembly:
    def test_mean_decomposition(self, mz_model):
        n = 26
        expected = (mz_model.seek(n)
                    + n * mz_model.rot / 2
                    + n * mz_model.transfer.mean())
        assert mz_model.mean(n) == pytest.approx(expected)

    def test_var_decomposition(self, mz_model):
        n = 26
        expected = (n * mz_model.rot ** 2 / 12
                    + n * mz_model.transfer.var())
        assert mz_model.var(n) == pytest.approx(expected)

    def test_seek_uses_oyang(self, viking, mz_model):
        assert mz_model.seek(27) == pytest.approx(
            oyang_seek_bound(viking.seek_curve, viking.cylinders, 27))

    def test_log_mgf_rejects_bad_n(self, mz_model):
        with pytest.raises(ConfigurationError):
            mz_model.log_mgf(0)
        with pytest.raises(ConfigurationError):
            mz_model.log_mgf(-3)

    def test_rejects_mgf_less_transfer(self):
        with pytest.raises(ModelError):
            RoundServiceTimeModel(seek_bound=lambda n: 0.1, rot=8.34e-3,
                                  transfer=LogNormal(0.0, 1.0))

    def test_for_disk_single_zone_uses_disk_rate(self, viking_single_zone,
                                                 paper_sizes):
        m = RoundServiceTimeModel.for_disk(viking_single_zone, paper_sizes,
                                           multizone=False)
        rate = viking_single_zone.zone_map.r_min
        assert m.transfer.mean() == pytest.approx(paper_sizes.mean() / rate)

    def test_for_disk_multizone_collapse_preserves_mean(self, viking,
                                                        paper_sizes):
        # multizone=False on a zoned disk collapses to the harmonic-mean
        # rate, which preserves E[T_trans].
        full = RoundServiceTimeModel.for_disk(viking, paper_sizes,
                                              multizone=True)
        collapsed = RoundServiceTimeModel.for_disk(viking, paper_sizes,
                                                   multizone=False)
        assert collapsed.transfer.mean() == pytest.approx(
            full.transfer.mean(), rel=1e-9)
        # ... but under-states the variance (zone variability lost).
        assert collapsed.transfer.var() < full.transfer.var()


class TestBounds:
    def test_p_late_monotone_in_n(self, mz_model):
        bounds = mz_model.p_late_curve(range(20, 33), 1.0)
        assert bounds == sorted(bounds)

    def test_p_late_monotone_in_t(self, mz_model):
        values = [mz_model.b_late(27, t) for t in (0.8, 0.9, 1.0, 1.1, 1.3)]
        assert values == sorted(values, reverse=True)

    def test_p_late_caches(self, mz_model):
        a = mz_model.p_late(26, 1.0)
        b = mz_model.p_late(26, 1.0)
        assert a is b

    def test_p_late_saturates_under_overload(self, mz_model):
        # At N where the mean already exceeds the round, the bound is 1.
        n = 50
        assert mz_model.mean(n) > 1.0
        assert mz_model.b_late(n, 1.0) == 1.0

    def test_bound_dominates_simulation(self, viking, paper_sizes):
        model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        rng = np.random.default_rng(5)
        for n in (26, 28, 30):
            batch = simulate_rounds(viking, paper_sizes, n, 1.0, 4000, rng)
            simulated = float(np.mean(batch.service_times >= 1.0))
            assert model.b_late(n, 1.0) >= simulated

    def test_utilisation(self, mz_model):
        u = mz_model.utilisation(26, 1.0)
        assert 0.5 < u < 1.0
        with pytest.raises(ConfigurationError):
            mz_model.utilisation(26, 0.0)


class TestPaperNumbersSection31:
    """§3.1 worked example (single-zone)."""

    def test_transfer_moments(self, sz_model):
        assert sz_model.transfer.mean() == pytest.approx(0.02174, rel=2e-3)
        assert sz_model.transfer.var() == pytest.approx(0.00011815,
                                                        rel=3e-3)

    def test_p_late_27(self, sz_model):
        assert sz_model.b_late(27, 1.0) == pytest.approx(0.0103, rel=0.10)

    def test_p_late_26(self, sz_model):
        assert sz_model.b_late(26, 1.0) == pytest.approx(0.00225, rel=0.10)


class TestPaperNumbersSection32:
    """§3.2 worked example (Table 1 multi-zone disk)."""

    def test_p_late_26(self, mz_model):
        assert mz_model.b_late(26, 1.0) == pytest.approx(0.00324, rel=0.15)

    def test_p_late_27(self, mz_model):
        assert mz_model.b_late(27, 1.0) == pytest.approx(0.0133, rel=0.15)
