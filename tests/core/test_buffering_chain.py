"""Buffer-occupancy chain and prefetch-plan tests (§6 extension)."""

import numpy as np
import pytest

from repro.core import RoundServiceTimeModel
from repro.core.buffering import BufferChain, PrefetchPlan
from repro.errors import ConfigurationError


class TestBufferChain:
    def test_transition_rows_stochastic(self):
        chain = BufferChain([0.1, 0.7, 0.2], capacity=4)
        rows = chain.transition_matrix.sum(axis=1)
        assert rows == pytest.approx(np.ones(5))

    def test_no_prefetch_hiccup_equals_glitch_rate(self):
        # The headline fact: D <= 1 means buffering cannot reduce the
        # long-run hiccup rate -- it equals p for every capacity.
        for p in (0.01, 0.05, 0.2):
            for capacity in (1, 3, 10):
                chain = BufferChain([p, 1.0 - p], capacity)
                assert chain.hiccup_rate() == pytest.approx(p, abs=1e-9)

    def test_prefetch_drops_geometrically_in_capacity(self):
        pmf = [0.05, 0.80, 0.15]  # upward drift
        rates = [BufferChain(pmf, b).hiccup_rate() for b in (1, 2, 4, 8)]
        assert rates == sorted(rates, reverse=True)
        assert rates[-1] < rates[0] / 20

    def test_birth_death_closed_form(self):
        # With P[D=0]=p0, P[D=2]=p2 and the rest on 1, the interior
        # states follow a birth-death chain with ratio rho = p2/p0.
        p0, p2 = 0.1, 0.2
        chain = BufferChain([p0, 0.7, p2], capacity=20)
        pi = chain.stationary_distribution()
        rho = p2 / p0
        # Skip the state-1 boundary (its balance equation includes the
        # state-0 consume-nothing special case).
        ratios = pi[3:11] / pi[2:10]
        assert ratios == pytest.approx(np.full(8, rho), rel=1e-6)

    def test_transient_hiccups_decrease_with_prefill(self):
        pmf = [0.1, 0.8, 0.1]
        chain = BufferChain(pmf, capacity=6)
        costs = [chain.transient_hiccups(start, 100)
                 for start in (0, 2, 4, 6)]
        assert costs == sorted(costs, reverse=True)

    def test_transient_converges_to_stationary(self):
        pmf = [0.1, 0.7, 0.2]
        chain = BufferChain(pmf, capacity=4)
        horizon = 20_000
        expected = chain.transient_hiccups(2, horizon) / horizon
        assert expected == pytest.approx(chain.hiccup_rate(), rel=0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BufferChain([0.5, 0.4], capacity=2)  # doesn't sum to 1
        with pytest.raises(ConfigurationError):
            BufferChain([-0.1, 1.1], capacity=2)
        with pytest.raises(ConfigurationError):
            BufferChain([1.0], capacity=0)
        chain = BufferChain([0.5, 0.5], capacity=2)
        with pytest.raises(ConfigurationError):
            chain.transient_hiccups(5, 10)
        with pytest.raises(ConfigurationError):
            chain.transient_hiccups(0, 0)


class TestPrefetchPlan:
    @pytest.fixture(scope="class")
    def model(self, viking, paper_sizes):
        return RoundServiceTimeModel.for_disk(viking, paper_sizes)

    def test_pmf_sums_to_one(self, model):
        plan = PrefetchPlan(model, n=28, t=1.0, headroom=3)
        pmf = plan.delivery_pmf()
        assert pmf.sum() == pytest.approx(1.0)
        assert np.all(pmf >= 0)

    def test_zero_headroom_has_no_double_delivery(self, model):
        plan = PrefetchPlan(model, n=28, t=1.0, headroom=0)
        pmf = plan.delivery_pmf()
        assert pmf[2] == 0.0
        # ... and therefore buffering does not help:
        assert plan.chain(4).hiccup_rate() == pytest.approx(pmf[0],
                                                            abs=1e-9)

    def test_headroom_trades_misses_for_refills(self, model):
        small = PrefetchPlan(model, n=28, t=1.0, headroom=1).delivery_pmf()
        large = PrefetchPlan(model, n=28, t=1.0, headroom=4).delivery_pmf()
        assert large[0] > small[0]   # bigger batches miss more often
        assert large[2] > small[2]   # but refill much more often

    def test_hiccup_rate_below_no_prefetch_for_sane_headroom(self, model):
        base = PrefetchPlan(model, n=28, t=1.0, headroom=0)
        plan = PrefetchPlan(model, n=28, t=1.0, headroom=3)
        assert plan.chain(6).hiccup_rate() < base.chain(6).hiccup_rate()

    def test_validation(self, model):
        with pytest.raises(ConfigurationError):
            PrefetchPlan(model, n=0, t=1.0, headroom=1)
        with pytest.raises(ConfigurationError):
            PrefetchPlan(model, n=10, t=1.0, headroom=-1)
        with pytest.raises(ConfigurationError):
            PrefetchPlan(model, n=10, t=0.0, headroom=1)


class TestOptimalPrefill:
    def test_more_budget_less_prefill(self):
        from repro.core.buffering import optimal_prefill

        chain = BufferChain([0.1, 0.8, 0.1], capacity=6)
        prefills = [optimal_prefill(chain, horizon=100, hiccup_budget=b)
                    for b in (0.5, 2.0, 20.0)]
        assert prefills == sorted(prefills, reverse=True)

    def test_budget_met_at_returned_prefill(self):
        from repro.core.buffering import optimal_prefill

        chain = BufferChain([0.1, 0.8, 0.1], capacity=6)
        budget = 1.0
        prefill = optimal_prefill(chain, horizon=100,
                                  hiccup_budget=budget)
        assert chain.transient_hiccups(prefill, 100) <= budget
        if prefill > 0:
            assert chain.transient_hiccups(prefill - 1, 100) > budget

    def test_capacity_returned_when_budget_unreachable(self):
        from repro.core.buffering import optimal_prefill

        # Strong downward drift: hiccups are inevitable; prefill maxes
        # out at capacity.
        chain = BufferChain([0.5, 0.5], capacity=3)
        assert optimal_prefill(chain, horizon=1000,
                               hiccup_budget=0.0) == 3

    def test_validation(self):
        from repro.core.buffering import optimal_prefill

        chain = BufferChain([0.1, 0.9], capacity=2)
        with pytest.raises(ConfigurationError):
            optimal_prefill(chain, 100, -1.0)


class TestHiccupAdmission:
    def test_matches_glitch_admission_at_the_cliff(self, viking,
                                                   paper_sizes):
        """Admission by visible hiccups coincides with admission by
        glitches at the Table 1 operating point: the Chernoff bound's
        cliff around N=29 is so sharp that neither buffers nor prefetch
        headroom can push the *guaranteed* limit past it (prefetch adds
        batch load exactly where the bound explodes).  Prefetching's
        value shows up in realised quality (A8), not in the worst-case
        admission count."""
        from repro.core.buffering import n_max_hiccup

        model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        base = n_max_hiccup(model, 1.0, capacity=2, headroom=0, m=1200,
                            h=12, epsilon=0.01)
        assert base == 28  # degenerates to the glitch criterion
        for headroom, capacity in ((2, 4), (3, 8)):
            n = n_max_hiccup(model, 1.0, capacity=capacity,
                             headroom=headroom, m=1200, h=12,
                             epsilon=0.01)
            assert 28 <= n <= 29

    def test_validation(self, viking, paper_sizes):
        from repro.core.buffering import n_max_hiccup

        model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        with pytest.raises(ConfigurationError):
            n_max_hiccup(model, 1.0, 2, 0, 100, 12, 0.0)
        with pytest.raises(ConfigurationError):
            n_max_hiccup(model, 1.0, 2, 0, 100, 200, 0.01)
