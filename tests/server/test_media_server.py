"""Event-driven MediaServer integration tests."""

import numpy as np
import pytest

from repro.disk import quantum_viking_2_1, scaled_viking
from repro.errors import AdmissionError, ConfigurationError
from repro.server import AdmissionController, MediaServer
from repro.workload import Catalog


def _make_server(disks=2, n_max=26, seed=0, round_length=1.0):
    admission = AdmissionController(n_max, disks=disks)
    return MediaServer([quantum_viking_2_1()] * disks, round_length,
                       admission=admission, seed=seed)


def _stock(server, rng, n_objects=3, duration=40.0):
    catalog = Catalog.synthetic(rng, n_objects=n_objects,
                                duration_s=duration)
    for obj in catalog.objects:
        server.store_object(obj.name, obj.fragment_sizes)
    return catalog


class TestLifecycle:
    def test_delivers_everything_under_light_load(self, rng):
        server = _make_server()
        catalog = _stock(server, rng)
        for _ in range(8):
            server.open_stream(catalog.pick(rng).name)
        report = server.run_rounds(50)
        assert report.requests > 0
        assert report.delivered == report.requests
        assert report.glitches == 0
        assert server.active_streams() == 0  # 40 s objects all finished

    def test_stream_finishes_and_slot_frees(self, rng):
        server = _make_server(disks=1, n_max=5)
        server.store_object("short", [100_000.0] * 3)
        stream = server.open_stream("short")
        server.run_rounds(4)
        assert stream.stats.requested == 3
        assert server.admission.active == 0

    def test_admission_rejects_over_capacity(self, rng):
        server = _make_server(disks=1, n_max=2)
        server.store_object("movie", [100_000.0] * 50)
        server.open_stream("movie")
        server.open_stream("movie")
        with pytest.raises(AdmissionError):
            server.open_stream("movie")

    def test_no_admission_controller_allows_overload(self, rng):
        server = MediaServer([quantum_viking_2_1()], 1.0, admission=None,
                             seed=1)
        server.store_object("movie", [100_000.0] * 20)
        for _ in range(40):
            server.open_stream("movie")
        report = server.run_rounds(10)
        assert report.requests == 400

    def test_close_stream_explicitly(self, rng):
        server = _make_server(disks=1, n_max=3)
        server.store_object("movie", [100_000.0] * 50)
        stream = server.open_stream("movie")
        server.close_stream(stream)
        assert server.active_streams() == 0
        with pytest.raises(ConfigurationError):
            server.close_stream(stream)


class TestGlitchBehaviour:
    def test_overload_produces_glitches(self, rng):
        # Slow disk + too many independent streams: must glitch visibly.
        spec = scaled_viking(rate_scale=0.25, zones=15)
        server = MediaServer([spec], 1.0, admission=None, seed=2)
        for s in range(30):
            server.store_object(f"movie-{s}", [400_000.0] * 30)
            server.open_stream(f"movie-{s}")
        report = server.run_rounds(20)
        assert report.glitches > 0
        assert report.p_late > 0.5

    def test_admitted_load_keeps_glitch_rate_tiny(self, rng):
        # At the paper's admitted level (26 independent streams) the
        # glitch rate stays well under 1 %.
        server = _make_server(disks=1, n_max=26, seed=3)
        gen = np.random.default_rng(0)
        for s in range(26):
            server.store_object(f"movie-{s}",
                                gen.gamma(4.0, 50_000.0, size=100))
            server.open_stream(f"movie-{s}")
        report = server.run_rounds(80)
        assert report.requests == 26 * 80
        assert report.glitch_rate < 0.01

    def test_multicast_deduplicates_identical_fetches(self, rng):
        # 26 streams on the SAME object at the SAME offset need the same
        # fragment each round; the server fetches it once and multicasts
        # it, so every stream is served while the disk only carries one
        # physical request per round.
        server = _make_server(disks=1, n_max=26, seed=3)
        sizes = np.random.default_rng(0).gamma(4.0, 50_000.0, size=100)
        server.store_object("movie", sizes)
        for _ in range(26):
            server.open_stream("movie", balance_start=False)
        report = server.run_rounds(80)
        assert report.requests == 26 * 80
        assert report.delivered == report.requests
        assert report.glitches == 0
        # The drive really only served one request per round.
        assert server._schedulers[0].drive.served == 80


class TestLoadBalance:
    def test_balanced_starts_level_disk_batches(self, rng):
        # 4 disks, 12 streams on objects whose first fragments all live
        # on the same disk: without staggering, every round one disk
        # would serve all 12.  Balanced starts split them 3/3/3/3.
        server = MediaServer([quantum_viking_2_1()] * 4, 1.0,
                             admission=None, seed=9)
        for s in range(12):
            server.store_object(f"m{s}", [100_000.0] * 40)
        for s in range(12):
            server.open_stream(f"m{s}")
        phases = server._phase_counts
        assert max(phases) - min(phases) <= 1
        server.run_rounds(20)
        served = [sched.drive.served for sched in server._schedulers]
        # Every disk carried a near-equal share of the work.
        assert max(served) - min(served) <= 40

    def test_unbalanced_starts_overload_one_disk(self, rng):
        server = MediaServer([quantum_viking_2_1()] * 4, 1.0,
                             admission=None, seed=9)
        # All objects start on the same disk, all streams start in the
        # same round with balancing disabled: one disk per round takes
        # every request.
        for s in range(12):
            server.store_object(f"m{s}", [100_000.0] * 8)
        streams = [server.open_stream(f"m{s}", balance_start=False)
                   for s in range(12)]
        phases = [server._stream_phase[s.stream_id] for s in streams]
        # Start disks rotate per object, so phases vary here; force the
        # degenerate case by checking the mechanism instead: phase
        # counts reflect exactly the chosen starts.
        for phase in phases:
            assert 0 <= phase < 4
        assert sum(server._phase_counts) == 12

    def test_phase_freed_on_close(self, rng):
        server = MediaServer([quantum_viking_2_1()] * 2, 1.0,
                             admission=None, seed=9)
        server.store_object("m", [100_000.0] * 5)
        stream = server.open_stream("m")
        assert sum(server._phase_counts) == 1
        server.close_stream(stream)
        assert sum(server._phase_counts) == 0


class TestValidation:
    def test_mismatched_admission_disks(self):
        with pytest.raises(ConfigurationError):
            MediaServer([quantum_viking_2_1()] * 2, 1.0,
                        admission=AdmissionController(5, disks=3))

    def test_bad_round_length(self):
        with pytest.raises(ConfigurationError):
            MediaServer([quantum_viking_2_1()], 0.0)

    def test_no_disks(self):
        with pytest.raises(ConfigurationError):
            MediaServer([], 1.0)

    def test_bad_run_rounds(self):
        server = _make_server()
        with pytest.raises(ConfigurationError):
            server.run_rounds(0)
