"""Scenario compiler: compilation, kernel pricing, cross-validation.

Three layers of guarantees:

* **Compilation** -- schedules, shedding policies, trick segments and
  heterogeneous layouts produce the right phase timeline (names,
  batches, scales, storm parameters, dropped events).
* **Bit-level** -- the compiled plain-failover shape reproduces
  :func:`simulate_farm_rounds` exactly, and results are identical for
  every ``jobs`` count and transport (``threads`` included).
* **Statistical** -- compiled storm/heterogeneous scenarios agree with
  the event-driven server at the same seed (two-proportion test /
  bound checks), the contract the compiler's fidelity notes promise.
"""

import math
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.core.farm import degraded_mode_n_max
from repro.disk import quantum_viking_2_1, seagate_hawk_1lp
from repro.errors import ConfigurationError
from repro.server.faults import (FaultSchedule, SheddingPolicy, disk_fail,
                                 disk_recover, recalibration_storm,
                                 run_failover_scenario, slow_disk)
from repro.server.scenario import (TrickSegment, analytic_phase_bounds,
                                   compile_scenario, parse_farm_spec,
                                   parse_trick_spec, simulate_scenario)
from repro.server.simulation import simulate_farm_rounds, simulate_rounds

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
T = 1.0


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------
class TestCompile:
    def test_plain_failover_timeline(self, viking, paper_sizes):
        schedule = FaultSchedule([disk_fail(30 * T, disk=0),
                                  disk_recover(80 * T, disk=0)])
        compiled = compile_scenario(
            (viking,) * 2, paper_sizes, n_per_disk=20, t=T, rounds=100,
            schedule=schedule, policy=SheddingPolicy(12, mode="drop"))
        assert compiled.phase_names == ("healthy", "degraded", "recovered")
        healthy, degraded, recovered = compiled.plan
        assert (healthy.rounds, degraded.rounds, recovered.rounds) == \
            (30, 50, 20)
        assert healthy.batches == (20, 20)
        # Failed disk idles; the survivor serves its shed batch plus the
        # redirected mirror group.
        assert degraded.batches == (0, 24)
        # Drop mode holds the shed level after recovery.
        assert recovered.batches == (12, 12)

    def test_pause_mode_restores_population(self, viking, paper_sizes):
        schedule = FaultSchedule([disk_fail(10 * T), disk_recover(20 * T)])
        compiled = compile_scenario(
            (viking,) * 2, paper_sizes, n_per_disk=20, t=T, rounds=40,
            schedule=schedule, policy=SheddingPolicy(12, mode="pause"))
        assert compiled.plan[-1].name == "recovered"
        assert compiled.plan[-1].batches == (20, 20)

    def test_storm_and_slow_markers(self, viking, paper_sizes):
        schedule = FaultSchedule([
            recalibration_storm(10 * T, prob=0.3, duration=10 * T,
                                stall=0.05),
            slow_disk(30 * T, factor=1.5, disk=1),
            slow_disk(40 * T, factor=1.0, disk=1),
        ])
        compiled = compile_scenario(
            (viking,) * 2, paper_sizes, n_per_disk=10, t=T, rounds=50,
            schedule=schedule)
        assert compiled.phase_names == (
            "healthy", "healthy+storm", "healthy+slow")
        storm = compiled.plan[1]
        assert storm.recal_probs == (0.3, 0.3)
        assert storm.recal_stalls == (0.05, 0.05)
        # The storm ends at round 20, the slowdown starts at 30: a plain
        # healthy entry sits between the two marked windows.
        assert [entry.name for entry in compiled.plan] == [
            "healthy", "healthy+storm", "healthy", "healthy+slow",
            "healthy"]
        slow = compiled.plan[3]
        assert slow.scales == (1.0, 1.5)
        # factor=1.0 restored full speed for the tail.
        assert compiled.plan[-1].name == "healthy"
        assert compiled.plan[-1].scales == (1.0, 1.0)

    def test_trick_segment_batches(self, viking, paper_sizes):
        compiled = compile_scenario(
            (viking,) * 2, paper_sizes, n_per_disk=10, t=T, rounds=40,
            trick=[TrickSegment(start=10, end=25, n_ff=2, k=3)])
        assert compiled.phase_names == ("healthy", "healthy+trick")
        trick = compiled.plan[1]
        # 8 normal + 2 fast-forward streams at k=3 -> 8 + 6 requests.
        assert trick.batches == (14, 14)
        assert trick.rounds == 15
        # Non-consecutive reuse of a name keeps timeline order.
        assert [entry.name for entry in compiled.plan] == [
            "healthy", "healthy+trick", "healthy"]

    def test_past_horizon_events_are_reported(self, viking, paper_sizes):
        schedule = FaultSchedule([disk_fail(20 * T), disk_recover(500 * T)])
        compiled = compile_scenario(
            (viking,) * 2, paper_sizes, n_per_disk=10, t=T, rounds=50,
            schedule=schedule, policy=SheddingPolicy(6))
        assert len(compiled.dropped_events) == 1
        assert "recover" in compiled.dropped_events[0]
        assert compiled.plan[-1].name == "degraded"

    def test_overlapping_storms_refused(self, viking, paper_sizes):
        schedule = FaultSchedule([
            recalibration_storm(10 * T, prob=0.2, duration=20 * T),
            recalibration_storm(15 * T, prob=0.4, duration=20 * T),
        ])
        with pytest.raises(ConfigurationError, match="verlapping"):
            compile_scenario((viking,) * 2, paper_sizes, n_per_disk=10,
                             t=T, rounds=50, schedule=schedule)

    def test_overlapping_trick_segments_refused(self, viking, paper_sizes):
        with pytest.raises(ConfigurationError, match="overlap"):
            compile_scenario(
                (viking,) * 2, paper_sizes, n_per_disk=10, t=T, rounds=40,
                trick=[TrickSegment(0, 20, 1, 2),
                       TrickSegment(10, 30, 1, 2)])

    def test_parse_helpers(self):
        segment = parse_trick_spec("5:15:3:2")
        assert (segment.start, segment.end, segment.n_ff, segment.k) == \
            (5, 15, 3, 2)
        with pytest.raises(ConfigurationError):
            parse_trick_spec("5:15:3")
        specs = parse_farm_spec("quantum_viking_2_1,seagate_hawk_1lp")
        assert len(specs) == 2
        assert specs[0].name != specs[1].name
        with pytest.raises(ConfigurationError, match="unknown"):
            parse_farm_spec("no_such_disk")


# ---------------------------------------------------------------------------
# Bit-level: kernel identity and transport determinism
# ---------------------------------------------------------------------------
class TestBitIdentity:
    def test_matches_simulate_farm_rounds(self, viking, paper_sizes):
        """The compiled plain failover is simulate_farm_rounds, bit for
        bit -- same phases, same per-disk draws."""
        schedule = FaultSchedule([disk_fail(30 * T, disk=0),
                                  disk_recover(80 * T, disk=0)])
        compiled = compile_scenario(
            (viking,) * 4, paper_sizes, n_per_disk=10, t=T, rounds=100,
            schedule=schedule, policy=SheddingPolicy(6, mode="drop"))
        via_compiler = simulate_scenario(compiled, seed=5)
        direct = simulate_farm_rounds(
            viking, paper_sizes, disks=4, n_per_disk=10, t=T, rounds=100,
            fail_round=30, recover_round=80, shedding=True,
            degraded_n_max=6, seed=5)
        assert [p.name for p in via_compiler.phases] == \
            [p.name for p in direct.phases]
        assert via_compiler.per_disk == direct.per_disk

    def test_jobs_and_transports_bit_identical(self, viking, paper_sizes):
        schedule = FaultSchedule([
            disk_fail(10 * T, disk=0),
            recalibration_storm(15 * T, prob=0.3, duration=10 * T),
            disk_recover(30 * T, disk=0),
        ])
        compiled = compile_scenario(
            (viking,) * 4, paper_sizes, n_per_disk=8, t=T, rounds=40,
            schedule=schedule, policy=SheddingPolicy(5))
        serial = simulate_scenario(compiled, seed=7)
        threads3 = simulate_scenario(compiled, seed=7, jobs=3,
                                     transport="threads")
        threads1 = simulate_scenario(compiled, seed=7, jobs=1,
                                     transport="threads")
        pickled = simulate_scenario(compiled, seed=7, jobs=2,
                                    transport="pickle")
        assert serial.per_disk == threads3.per_disk
        assert serial.per_disk == threads1.per_disk
        assert serial.per_disk == pickled.per_disk

    def test_service_scale_is_exact(self, viking, paper_sizes):
        """slow_disk compiles to a linear stretch of the sweep law."""
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        base = simulate_rounds(viking, paper_sizes, 10, T, 200, rng_a)
        slow = simulate_rounds(viking, paper_sizes, 10, T, 200, rng_b,
                               service_scale=1.5)
        assert np.allclose(slow.service_times, 1.5 * base.service_times)


# ---------------------------------------------------------------------------
# Statistical: cross-validation against the event engine
# ---------------------------------------------------------------------------
def _two_proportion_close(late_a: int, trials_a: int,
                          late_b: int, trials_b: int) -> bool:
    """Two-proportion z-test at ~4 sigma (idiom of
    tests/server/test_cross_validation.py)."""
    if trials_a == 0 or trials_b == 0:
        return late_a == late_b
    pooled = (late_a + late_b) / (trials_a + trials_b)
    se = math.sqrt(pooled * (1 - pooled)
                   * (1 / trials_a + 1 / trials_b))
    return abs(late_a / trials_a - late_b / trials_b) < 4 * se + 1e-9


@pytest.mark.slow
class TestCrossValidation:
    def test_heterogeneous_farm_agrees(self, paper_sizes):
        """Same seed, same heterogeneous mirrored pair, both engines:
        glitch rates agree and both respect the weakest-disk bound."""
        specs = (quantum_viking_2_1(), seagate_hawk_1lp())
        delta = 0.01
        limits = [degraded_mode_n_max(s, paper_sizes, T, delta)
                  for s in specs]
        healthy = min(limit[0] for limit in limits)
        failure_proof = min(limit[1] for limit in limits)
        schedule = FaultSchedule([disk_fail(40 * T, disk=0),
                                  disk_recover(200 * T, disk=0)])

        event = run_failover_scenario(
            specs[0], paper_sizes, specs=list(specs), disks=2, t=T,
            delta=delta, rounds=300, schedule=schedule, shedding=True,
            seed=0)
        assert event.healthy_n_max == healthy
        assert event.degraded_n_max == failure_proof
        assert event.within_bound

        compiled = compile_scenario(
            specs, paper_sizes, n_per_disk=healthy, t=T, rounds=300,
            schedule=schedule, policy=SheddingPolicy(failure_proof))
        estimate = simulate_scenario(compiled, seed=0)
        degraded = estimate.phase("degraded")
        # Both engines keep the degraded farm within the weakest-disk
        # tolerance -- the guarantee the compiled path must preserve.
        assert degraded.glitch_rate <= delta
        total_requests = sum(p.requests for p in estimate.phases)
        total_glitches = sum(p.glitches for p in estimate.phases)
        assert _two_proportion_close(
            round(event.aggregate_glitch_rate * total_requests),
            total_requests, total_glitches, total_requests)

    def test_storm_schedule_agrees(self, viking, paper_sizes):
        """The committed fault-storm example through both engines: the
        kernel's storm-phase lateness matches the event engine's rounds
        under the same storm, two-proportion tested."""
        schedule = FaultSchedule([
            recalibration_storm(20 * T, prob=0.4, duration=120 * T,
                                stall=0.08),
        ])
        n = 24
        rounds = 160

        event = run_failover_scenario(
            viking, paper_sizes, disks=2, t=T, rounds=rounds,
            n_per_disk=n, schedule=schedule, shedding=True, seed=1,
            fail_round=None)
        compiled = compile_scenario(
            (viking,) * 2, paper_sizes, n_per_disk=n, t=T, rounds=rounds,
            schedule=schedule)
        estimate = simulate_scenario(compiled, seed=1)
        storm = estimate.phase("healthy+storm")
        assert storm.rounds == 120

        # No failures here, so every event-engine stream is a survivor
        # and the aggregate rates share a denominator basis.
        total_requests = sum(p.requests for p in estimate.phases)
        total_glitches = sum(p.glitches for p in estimate.phases)
        assert _two_proportion_close(
            round(event.aggregate_glitch_rate * total_requests),
            total_requests, total_glitches, total_requests)

    def test_trick_segment_agrees_with_flat_load(self, viking,
                                                 paper_sizes):
        """A trick window is, to the kernel, just a bigger batch: the
        ``healthy+trick`` phase must match a flat run at the scan-mode
        request count."""
        compiled = compile_scenario(
            (viking,) * 2, paper_sizes, n_per_disk=20, t=T, rounds=400,
            trick=[TrickSegment(0, 400, n_ff=4, k=2)])
        estimate = simulate_scenario(compiled, seed=3)
        trick = estimate.phase("healthy+trick")
        assert trick.requests > 0

        rng = np.random.default_rng(9)
        flat = simulate_rounds(viking, paper_sizes, 24, T, 800, rng)
        assert _two_proportion_close(
            trick.late_disk_rounds, trick.disk_rounds,
            int(np.sum(flat.service_times > T)), 800)


# ---------------------------------------------------------------------------
# Bounds
# ---------------------------------------------------------------------------
class TestBounds:
    def test_storm_bound_dominates_and_slow_is_unbounded(
            self, viking, paper_sizes):
        schedule = FaultSchedule([
            recalibration_storm(10 * T, prob=0.3, duration=10 * T,
                                stall=0.05),
            slow_disk(30 * T, factor=1.5, disk=1),
        ])
        compiled = compile_scenario(
            (viking,) * 2, paper_sizes, n_per_disk=20, t=T, rounds=40,
            schedule=schedule)
        bounds = analytic_phase_bounds(compiled)
        assert bounds["healthy"] is not None
        assert bounds["healthy+storm"] > bounds["healthy"]
        assert bounds["healthy+slow"] is None

    def test_estimate_respects_phase_bounds(self, viking, paper_sizes):
        """Observed per-phase lateness stays under the analytic b_late
        for a storm scenario at the paper's operating point."""
        schedule = FaultSchedule([
            recalibration_storm(50 * T, prob=0.2, duration=100 * T,
                                stall=0.05),
        ])
        compiled = compile_scenario(
            (viking,) * 2, paper_sizes, n_per_disk=24, t=T, rounds=300,
            schedule=schedule)
        bounds = analytic_phase_bounds(compiled)
        estimate = simulate_scenario(compiled, seed=11)
        for phase in estimate.phases:
            bound = bounds[phase.name]
            assert bound is not None
            assert phase.p_late <= bound + 3 * math.sqrt(
                bound * (1 - bound) / max(phase.disk_rounds, 1))


# ---------------------------------------------------------------------------
# CLI: scenarios must run compiled on --engine kernel, or fail loudly
# ---------------------------------------------------------------------------
class TestCli:
    def test_kernel_engine_runs_storm_schedule(self, capsys):
        """Regression: --engine kernel used to reject any schedule that
        was not the plain fail/recover shape (exit 2); it now compiles
        and prices storms, slow disks, and recoveries."""
        code = main(["simulate", "--faults",
                     str(EXAMPLES / "fault_storm.toml"),
                     "--engine", "kernel", "--server-rounds", "120",
                     "--seed", "3"])
        out = capsys.readouterr().out
        # Exit 0/1 is the priced verdict (1 when the slow disk pushes a
        # degraded phase past delta); the old path exited 2 unpriced.
        assert code in (0, 1)
        assert "scenario kernel" in out
        assert "+storm" in out
        assert "+slow" in out

    def test_kernel_engine_trick_and_heterogeneous(self, capsys):
        code = main(["simulate", "--engine", "kernel",
                     "--trick", "5:15:2:2",
                     "--farm-spec",
                     "quantum_viking_2_1,quantum_viking_2_1",
                     "--server-rounds", "30", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "healthy+trick" in out

    def test_event_engine_rejects_trick(self, capsys):
        code = main(["simulate", "--engine", "event",
                     "--trick", "5:15:2:2", "--server-rounds", "30"])
        err = capsys.readouterr().err
        assert code == 2
        assert "--engine kernel" in err
