"""ShardedAdmissionController: batch grants, rebalance, debt, and
cross-validation against the single-lock reference controller.

The sharded invariant under test everywhere:
``sum(shard.limit) == capacity + debt`` with
``shard.active <= shard.limit`` per stripe -- no interleaving of
admits, releases, retargets and rebalances may ever let the live count
exceed the analytic capacity.
"""

import random
import threading

import pytest

from repro.core import AdmissionTable, GlitchModel, RoundServiceTimeModel
from repro.disk import quantum_viking_2_1
from repro.errors import AdmissionError, ConfigurationError
from repro.workload import paper_fragment_sizes
from repro.server import (
    AdmissionController,
    ShardedAdmissionController,
    default_shard_count,
)


def assert_invariant(controller):
    snap = controller.snapshot()
    assert sum(snap["shard_limit"]) == snap["capacity"] + snap["debt"]
    for active, limit in zip(snap["shard_active"],
                             snap["shard_limit"]):
        assert 0 <= active <= limit
    assert 0 <= snap["active"] <= snap["capacity"] + snap["debt"]
    return snap


class TestCounting:
    def test_admit_release_roundtrip(self):
        controller = ShardedAdmissionController(7, disks=4, shards=4)
        assert controller.capacity == 28
        for _ in range(28):
            controller.admit()
        assert controller.active == 28
        with pytest.raises(AdmissionError):
            controller.admit()
        for _ in range(28):
            controller.release()
        assert controller.active == 0
        assert controller.requests == 29
        assert controller.rejections == 1
        assert_invariant(controller)

    def test_release_without_active_raises(self):
        controller = ShardedAdmissionController(2, shards=4)
        with pytest.raises(ConfigurationError,
                           match="without an active stream"):
            controller.release()

    def test_rejection_error_attributes(self):
        controller = ShardedAdmissionController(1, disks=2, shards=2)
        controller.admit()
        controller.admit()
        with pytest.raises(AdmissionError) as info:
            controller.admit()
        assert "admission denied" in str(info.value)
        assert info.value.active_streams == 2
        assert info.value.limit == 2

    def test_default_shard_count_bounds(self):
        assert 4 <= default_shard_count() <= 32

    def test_from_table_matches_legacy(self):
        model = RoundServiceTimeModel.for_disk(
            quantum_viking_2_1(), paper_fragment_sizes())
        table = AdmissionTable(GlitchModel(model, t=1.0),
                               m=1200, g=12)
        legacy = AdmissionController.from_table(
            table, epsilon=0.01, disks=4)
        sharded = ShardedAdmissionController.from_table(
            table, epsilon=0.01, disks=4, shards=8)
        assert sharded.capacity == legacy.capacity == 112
        assert sharded.n_max_per_disk == legacy.n_max_per_disk == 28
        assert sharded.shards == 8


class TestBatch:
    def test_batch_takes_k_in_one_call(self):
        controller = ShardedAdmissionController(10, disks=2, shards=4)
        assert controller.admit_batch(8) == 8
        assert controller.active == 8
        assert controller.requests == 8

    def test_partial_grant_when_capacity_runs_out(self):
        controller = ShardedAdmissionController(5, disks=2, shards=4)
        assert controller.admit_batch(7) == 7
        granted = controller.admit_batch(7)
        assert granted == 3
        assert controller.active == 10
        assert controller.rejections == 4  # the ungranted remainder

    def test_zero_count_is_a_probe(self):
        controller = ShardedAdmissionController(5, shards=4)
        assert controller.admit_batch(0) == 0
        assert controller.requests == 0

    def test_negative_count_raises(self):
        controller = ShardedAdmissionController(5, shards=4)
        with pytest.raises(ConfigurationError, match="count >= 0"):
            controller.admit_batch(-1)

    def test_zero_grant_raises_not_partial(self):
        controller = ShardedAdmissionController(2, disks=2, shards=4)
        controller.admit_batch(4)
        with pytest.raises(AdmissionError):
            controller.admit_batch(3)
        assert controller.rejections == 3

    def test_on_grant_runs_under_the_lock_with_the_count(self):
        controller = ShardedAdmissionController(10, shards=4)
        seen = []
        controller.admit_batch(
            6, shard=2, on_grant=lambda idx, n: seen.append((idx, n)))
        assert seen == [(2, 6)]


class TestRebalance:
    def test_no_false_reject_when_one_stripe_is_hot(self):
        """Every admit lands on stripe 0: its slice exhausts after
        capacity/S tickets, but rebalances must carry it to the full
        global capacity."""
        controller = ShardedAdmissionController(7, disks=8, shards=8)
        for _ in range(controller.capacity):
            assert controller.admit_batch(1, shard=0) == 1
        assert controller.active == controller.capacity
        assert controller.rebalances > 0
        with pytest.raises(AdmissionError):
            controller.admit_batch(1, shard=0)
        assert_invariant(controller)

    def test_rebalance_amortises_instead_of_thrashing(self):
        """The slow path steals a reserve beyond the immediate grant,
        so a hot stripe re-enters it O(S) times, not O(capacity)."""
        controller = ShardedAdmissionController(32, disks=4, shards=8)
        for _ in range(controller.capacity):
            controller.admit_batch(1, shard=3)
        # O(S log capacity) steals, nowhere near one per ticket.
        assert controller.rebalances <= 3 * controller.shards
        assert controller.rebalances < controller.capacity // 4

    def test_epoch_bumps_on_retarget_and_rebalance(self):
        controller = ShardedAdmissionController(4, disks=4, shards=4)
        before = controller.epoch
        controller.degrade(2)
        assert controller.epoch == before + 1
        controller.restore()
        assert controller.epoch == before + 2
        for _ in range(controller.capacity):
            controller.admit_batch(1, shard=0)
        assert controller.epoch > before + 2


class TestDebt:
    def test_down_retarget_creates_debt_and_blocks_admits(self):
        controller = ShardedAdmissionController(8, disks=2, shards=4)
        controller.admit_batch(16)
        controller.degrade(3)  # capacity 6, live 16 -> debt 10
        assert controller.debt == 10
        assert controller.active == 16
        assert not controller.would_admit()
        with pytest.raises(AdmissionError):
            controller.admit()
        assert_invariant(controller)

    def test_releases_pay_debt_before_freeing_slots(self):
        controller = ShardedAdmissionController(8, disks=2, shards=4)
        controller.admit_batch(16)
        controller.degrade(3)
        for _ in range(10):
            controller.release()
            assert not controller.would_admit()
            assert_invariant(controller)
        assert controller.debt == 0
        assert controller.active == 6  # exactly at the new capacity
        with pytest.raises(AdmissionError):
            controller.admit()
        controller.release()
        controller.admit()  # real slack only once debt is paid
        assert controller.active == 6

    def test_restore_clears_debt(self):
        controller = ShardedAdmissionController(8, disks=2, shards=4)
        controller.admit_batch(16)
        controller.degrade(3)
        controller.restore()
        assert controller.debt == 0
        assert controller.capacity == 16
        assert not controller.degraded
        assert_invariant(controller)


class TestQuiescedOps:
    def test_admit_locked_picks_the_slackest_stripe(self):
        controller = ShardedAdmissionController(4, disks=2, shards=4)
        taken = []
        with controller.quiesced():
            for _ in range(controller.capacity):
                taken.append(controller.admit_locked())
            with pytest.raises(AdmissionError):
                controller.admit_locked()
        assert controller.active == controller.capacity
        assert set(taken) <= set(range(4))

    def test_release_locked_validates_the_stripe(self):
        controller = ShardedAdmissionController(4, shards=4)
        controller.admit_batch(2, shard=1)
        with controller.quiesced():
            controller.release_locked(1, 2)
            with pytest.raises(ConfigurationError):
                controller.release_locked(1, 1)
        assert controller.active == 0

    def test_release_on_callback_zero_means_untouched(self):
        controller = ShardedAdmissionController(4, shards=4)
        controller.admit_batch(1, shard=2)
        assert controller.release_on(2, on_release=lambda: 0) == 0
        assert controller.active == 1
        assert controller.release_on(2) == 1
        assert controller.active == 0

    def test_restore_state_locked_restripes_exactly(self):
        controller = ShardedAdmissionController(8, disks=2, shards=4)
        with controller.quiesced():
            controller.restore_state_locked(
                shard_actives=[5, 4, 4, 4], requests=20,
                rejections=3)
        assert controller.active == 17
        assert controller.requests == 20
        assert controller.rejections == 3
        assert controller.debt == 1  # 17 live vs capacity 16
        assert_invariant(controller)

    def test_restore_state_locked_validates_width(self):
        controller = ShardedAdmissionController(8, shards=4)
        with controller.quiesced():
            with pytest.raises(ConfigurationError, match="stripe"):
                controller.restore_state_locked(shard_actives=[1, 2])

    def test_compat_restore_state_spreads_evenly(self):
        controller = ShardedAdmissionController(8, disks=2, shards=4)
        controller.restore_state(active=10, requests=12, rejections=2)
        snap = assert_invariant(controller)
        assert snap["active"] == 10
        assert sorted(snap["shard_active"]) == [2, 2, 3, 3]


class TestCrossValidation:
    """Satellite: the sharded controller is behaviourally identical to
    the single-lock reference on the same operation sequence."""

    def drive(self, controller, script):
        decisions = []
        for op, arg in script:
            if op == "admit":
                try:
                    controller.admit()
                    decisions.append("grant")
                except AdmissionError:
                    decisions.append("reject")
            elif op == "release":
                try:
                    controller.release()
                    decisions.append("release")
                except ConfigurationError:
                    decisions.append("empty")
            elif op == "degrade":
                controller.degrade(arg)
                decisions.append(f"degrade:{arg}")
            elif op == "restore":
                controller.restore()
                decisions.append("restore")
        return decisions

    def make_script(self, rng, length=400):
        ops = []
        for _ in range(length):
            roll = rng.random()
            if roll < 0.55:
                ops.append(("admit", None))
            elif roll < 0.9:
                ops.append(("release", None))
            elif roll < 0.95:
                ops.append(("degrade", rng.randint(0, 6)))
            else:
                ops.append(("restore", None))
        return ops

    @pytest.mark.parametrize("seed", [7, 23, 1997])
    @pytest.mark.parametrize("shards", [1, 3, 8])
    def test_same_decisions_as_legacy(self, seed, shards):
        script = self.make_script(random.Random(seed))
        legacy = AdmissionController(6, disks=3)
        sharded = ShardedAdmissionController(6, disks=3,
                                             shards=shards)
        assert (self.drive(sharded, script)
                == self.drive(legacy, script))
        assert sharded.active == legacy.active
        assert sharded.requests == legacy.requests
        assert sharded.rejections == legacy.rejections
        assert sharded.degraded == legacy.degraded
        assert_invariant(sharded)

    def test_concurrent_totals_match_accounting(self):
        """8 threads hammer admit/release while a flipper retargets:
        the live count may never exceed capacity + debt, and the final
        totals must equal the per-thread accounting."""
        controller = ShardedAdmissionController(7, disks=8, shards=8)
        capacity = controller.capacity
        stop = threading.Event()
        tallies = []

        def churner(seed):
            rng = random.Random(seed)
            grants = releases = 0
            while not stop.is_set():
                if rng.random() < 0.6:
                    try:
                        got = controller.admit_batch(
                            rng.randint(1, 4))
                        grants += got
                    except AdmissionError:
                        pass
                else:
                    try:
                        controller.release()
                        releases += 1
                    except ConfigurationError:
                        pass
            tallies.append((grants, releases))

        def flipper():
            toggle = False
            while not stop.is_set():
                if toggle:
                    controller.degrade(3)
                else:
                    controller.restore()
                toggle = not toggle
                snap = controller.snapshot()
                assert snap["active"] <= (snap["capacity"]
                                          + snap["debt"])

        pool = [threading.Thread(target=churner, args=(seed,))
                for seed in range(8)]
        pool.append(threading.Thread(target=flipper))
        for thread in pool:
            thread.start()
        threading.Event().wait(0.3)
        stop.set()
        for thread in pool:
            thread.join()
        controller.restore()
        grants = sum(g for g, _ in tallies)
        releases = sum(r for _, r in tallies)
        assert controller.active == grants - releases
        assert 0 <= controller.active <= capacity
        snap = assert_invariant(controller)
        assert snap["requests"] >= grants
        # Drain: every admitted stream can be released, then empty.
        for _ in range(controller.active):
            controller.release()
        assert controller.active == 0


class TestSnapshot:
    def test_snapshot_is_a_superset_of_legacy(self):
        legacy = AdmissionController(5, disks=2)
        sharded = ShardedAdmissionController(5, disks=2, shards=4)
        for controller in (legacy, sharded):
            controller.admit()
            controller.admit()
        legacy_snap = legacy.snapshot()
        sharded_snap = sharded.snapshot()
        for key, value in legacy_snap.items():
            assert sharded_snap[key] == value, key
        for key in ("shards", "epoch", "debt", "rebalances",
                    "shard_active", "shard_limit"):
            assert key in sharded_snap


class TestLegacyThreshold:
    """Satellite: the single-lock controller's float ceil test became
    a precomputed integer threshold -- pin the admit/reject sequence
    around every retarget so the arithmetic can never drift."""

    def test_pinned_sequence_across_degrade_restore(self):
        controller = AdmissionController(2, disks=2)  # capacity 4
        outcomes = []

        def admit():
            try:
                controller.admit()
                outcomes.append("grant")
            except AdmissionError:
                outcomes.append("reject")

        for _ in range(5):
            admit()                      # 4 grants, then reject
        controller.degrade(1)            # capacity 2, live 4
        admit()                          # reject: over the new limit
        controller.release()
        controller.release()
        admit()                          # reject: live 2 == limit 2
        controller.release()
        admit()                          # grant: live 1 < limit 2
        controller.restore()             # capacity back to 4
        admit()                          # grant
        admit()                          # grant
        admit()                          # reject at 4
        assert outcomes == ["grant", "grant", "grant", "grant",
                            "reject", "reject", "reject", "grant",
                            "grant", "grant", "reject"]

    def test_threshold_recomputed_on_retarget(self):
        controller = AdmissionController(3, disks=4)
        assert controller._active_limit == 12
        controller.degrade(1)
        assert controller._active_limit == 4
        controller.restore()
        assert controller._active_limit == 12
        controller.resize(5)
        assert controller._active_limit == 20
        controller.resize(disks=2)
        assert controller._active_limit == 10

    def test_degraded_resize_defers_to_restore(self):
        controller = AdmissionController(4, disks=2)
        controller.degrade(2)
        controller.resize(6)  # new healthy point, still degraded
        assert controller._active_limit == 4
        controller.restore()
        assert controller.n_max_per_disk == 6
        assert controller._active_limit == 12
