"""Vectorised Monte-Carlo simulator tests."""

import numpy as np
import pytest

from repro.core import RoundServiceTimeModel, oyang_seek_bound
from repro.errors import ConfigurationError
from repro.server.simulation import (
    estimate_p_error,
    estimate_p_late,
    simulate_rounds,
    simulate_stream_glitches,
)


class TestSimulateRounds:
    def test_shapes(self, viking, paper_sizes, rng):
        batch = simulate_rounds(viking, paper_sizes, n=10, t=1.0,
                                rounds=50, rng=rng)
        assert batch.service_times.shape == (50,)
        assert batch.glitches.shape == (50, 10)
        assert batch.seek_times.shape == (50,)
        assert batch.rounds == 50
        assert batch.n == 10

    def test_service_time_composition(self, viking, paper_sizes, rng):
        # Mean service time must sit near the analytic expectation
        # (below it, since the analytic SEEK is a worst-case constant).
        n = 26
        model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        batch = simulate_rounds(viking, paper_sizes, n, 1.0, 5000, rng)
        sim_mean = float(np.mean(batch.service_times))
        ana_mean = model.mean(n)
        assert sim_mean < ana_mean
        assert sim_mean > ana_mean - model.seek(n)  # only seek slack

    def test_seek_below_oyang_bound(self, viking, paper_sizes, rng):
        n = 26
        bound = oyang_seek_bound(viking.seek_curve, viking.cylinders, n)
        batch = simulate_rounds(viking, paper_sizes, n, 1.0, 2000, rng)
        assert float(np.max(batch.seek_times)) <= bound

    def test_glitches_follow_service_times(self, viking, paper_sizes, rng):
        batch = simulate_rounds(viking, paper_sizes, 30, 1.0, 3000, rng)
        overran = batch.service_times > 1.0
        has_glitch = batch.glitches.any(axis=1)
        assert np.array_equal(overran, has_glitch)

    def test_glitches_spread_over_streams(self, viking, paper_sizes, rng):
        # §3.3's independence condition: glitches hit streams uniformly.
        batch = simulate_rounds(viking, paper_sizes, 30, 1.0, 30_000, rng)
        per_stream = batch.glitches.sum(axis=0).astype(float)
        mean = per_stream.mean()
        assert mean > 10  # enough glitches for the check to bite
        assert np.all(np.abs(per_stream - mean) < 6 * np.sqrt(mean))

    def test_reproducible(self, viking, paper_sizes):
        a = simulate_rounds(viking, paper_sizes, 10, 1.0, 100,
                            np.random.default_rng(3))
        b = simulate_rounds(viking, paper_sizes, 10, 1.0, 100,
                            np.random.default_rng(3))
        assert np.array_equal(a.service_times, b.service_times)

    def test_chunking_invariant(self, viking, paper_sizes, monkeypatch):
        # Forcing a tiny chunk size must not change counts materially
        # (streams are i.i.d. across rounds; use statistics not equality
        # since the RNG consumption order differs).
        import repro.server.simulation as sim
        rng1 = np.random.default_rng(9)
        full = simulate_rounds(viking, paper_sizes, 20, 1.0, 2000, rng1)
        monkeypatch.setenv(sim.SIM_CHUNK_ENV, "64")
        rng2 = np.random.default_rng(9)
        chunked = sim.simulate_rounds(viking, paper_sizes, 20, 1.0, 2000,
                                      rng2)
        assert chunked.service_times.shape == full.service_times.shape
        assert float(np.mean(chunked.service_times)) == pytest.approx(
            float(np.mean(full.service_times)), rel=0.01)

    def test_validation(self, viking, paper_sizes, rng):
        with pytest.raises(ConfigurationError):
            simulate_rounds(viking, paper_sizes, 0, 1.0, 10, rng)
        with pytest.raises(ConfigurationError):
            simulate_rounds(viking, paper_sizes, 5, -1.0, 10, rng)
        with pytest.raises(ConfigurationError):
            simulate_rounds(viking, paper_sizes, 5, 1.0, 0, rng)


class TestEstimators:
    def test_p_late_estimate_fields(self, viking, paper_sizes):
        est = estimate_p_late(viking, paper_sizes, 28, 1.0, rounds=4000,
                              seed=1)
        assert est.rounds == 4000
        assert est.p_late == est.late_rounds / 4000
        assert est.ci_low <= est.p_late <= est.ci_high

    def test_figure1_crossover(self, viking, paper_sizes):
        # Figure 1's simulated curve: N=28 still under 1 %, N=29 above.
        below = estimate_p_late(viking, paper_sizes, 28, 1.0,
                                rounds=20_000, seed=2)
        above = estimate_p_late(viking, paper_sizes, 29, 1.0,
                                rounds=20_000, seed=2)
        assert below.p_late < 0.01
        assert above.p_late > 0.01

    def test_stream_glitch_matrix(self, viking, paper_sizes):
        counts = simulate_stream_glitches(viking, paper_sizes, n=30,
                                          t=1.0, m=300, runs=4, seed=5)
        assert counts.shape == (4, 30)
        assert counts.dtype == np.int64
        assert np.all(counts >= 0)
        assert np.all(counts <= 300)

    def test_p_error_estimate(self, viking, paper_sizes):
        est = estimate_p_error(viking, paper_sizes, n=32, t=1.0, m=300,
                               g=3, runs=10, seed=5)
        assert est.streams == 320
        assert 0.0 <= est.p_error <= 1.0
        assert est.mean_glitches > 0.0

    def test_p_error_validation(self, viking, paper_sizes):
        with pytest.raises(ConfigurationError):
            estimate_p_error(viking, paper_sizes, 30, 1.0, m=100, g=200,
                             runs=2)
        with pytest.raises(ConfigurationError):
            simulate_stream_glitches(viking, paper_sizes, 30, 1.0, 100,
                                     runs=0)
