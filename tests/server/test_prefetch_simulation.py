"""Prefetching-server simulation tests (§6 extension)."""

import numpy as np
import pytest

from repro.core.buffering import BufferChain
from repro.errors import ConfigurationError
from repro.server.prefetch import simulate_prefetch


class TestMechanics:
    def test_result_accounting(self, viking, paper_sizes):
        result = simulate_prefetch(viking, paper_sizes, n=20, t=1.0,
                                   rounds=200, headroom=2, capacity=4,
                                   prefill=2, seed=1)
        assert result.hiccups.shape == (20,)
        assert result.glitches.shape == (20,)
        assert result.prefetches_issued <= 2 * 200
        assert result.prefetches_delivered <= result.prefetches_issued
        assert 0.0 <= result.mean_buffer <= 4.0

    def test_no_headroom_means_no_prefetches(self, viking, paper_sizes):
        result = simulate_prefetch(viking, paper_sizes, n=20, t=1.0,
                                   rounds=100, headroom=0, capacity=4,
                                   prefill=1, seed=1)
        assert result.prefetches_issued == 0
        assert result.mean_buffer <= 1.0

    def test_reproducible(self, viking, paper_sizes):
        a = simulate_prefetch(viking, paper_sizes, 15, 1.0, 100, 2, 4,
                              seed=9)
        b = simulate_prefetch(viking, paper_sizes, 15, 1.0, 100, 2, 4,
                              seed=9)
        assert np.array_equal(a.hiccups, b.hiccups)

    def test_validation(self, viking, paper_sizes):
        with pytest.raises(ConfigurationError):
            simulate_prefetch(viking, paper_sizes, 10, 1.0, 10, -1, 4)
        with pytest.raises(ConfigurationError):
            simulate_prefetch(viking, paper_sizes, 10, 1.0, 10, 1, 0)
        with pytest.raises(ConfigurationError):
            simulate_prefetch(viking, paper_sizes, 10, 1.0, 10, 1, 4,
                              prefill=9)


class TestBehaviour:
    def test_prefetch_fills_buffers(self, viking, paper_sizes):
        without = simulate_prefetch(viking, paper_sizes, 28, 1.0, 1500,
                                    headroom=0, capacity=6, prefill=2,
                                    seed=2)
        with_pf = simulate_prefetch(viking, paper_sizes, 28, 1.0, 1500,
                                    headroom=3, capacity=6, prefill=2,
                                    seed=2)
        assert with_pf.mean_buffer > without.mean_buffer + 2.0

    def test_prefetch_eliminates_visible_hiccups(self, viking,
                                                 paper_sizes):
        # At N=30 the no-prefetch system shows hiccups; headroom 3 with
        # a 6-deep buffer absorbs essentially all of them even though
        # the enlarged batches glitch *more* often.
        without = simulate_prefetch(viking, paper_sizes, 30, 1.0, 3000,
                                    headroom=0, capacity=6, prefill=2,
                                    seed=3)
        with_pf = simulate_prefetch(viking, paper_sizes, 30, 1.0, 3000,
                                    headroom=3, capacity=6, prefill=2,
                                    seed=3)
        assert without.hiccup_rate > 0.0
        assert with_pf.glitch_rate >= without.glitch_rate
        assert with_pf.hiccup_rate < without.hiccup_rate / 5

    def test_no_prefetch_hiccups_approach_glitch_rate(self, viking,
                                                      paper_sizes):
        # The BufferChain's headline fact, observed in simulation: with
        # headroom 0 the long-run hiccup rate tracks the glitch rate
        # (buffers only delay hiccups).
        result = simulate_prefetch(viking, paper_sizes, 31, 1.0, 12_000,
                                   headroom=0, capacity=4, prefill=2,
                                   seed=4)
        assert result.glitch_rate > 0.003  # enough events
        assert result.hiccup_rate == pytest.approx(result.glitch_rate,
                                                   rel=0.15)

    def test_chain_predicts_simulated_hiccups(self, viking, paper_sizes):
        # Feed the chain the *measured* delivery pmf and compare hiccup
        # rates -- validates the Markov model itself, independent of the
        # conservative analytic p's.
        n, rounds, headroom, capacity = 30, 12_000, 2, 3
        result = simulate_prefetch(viking, paper_sizes, n, 1.0, rounds,
                                   headroom=headroom, capacity=capacity,
                                   prefill=1, seed=5)
        p0 = result.glitch_rate
        p2 = (result.prefetches_delivered / (rounds * n))
        # Condition the double-delivery on a successful due fetch:
        p2 = min(p2, 1.0 - p0)
        chain = BufferChain([p0, 1.0 - p0 - p2, p2], capacity)
        predicted = chain.hiccup_rate()
        observed = result.hiccup_rate
        # Same order of magnitude (the sim prefetches the *neediest*
        # clients, which beats the chain's uniform assumption).
        assert observed <= predicted * 2 + 1e-4
