"""Layout and stream-state tests."""

import numpy as np
import pytest

from repro.disk import quantum_viking_2_1
from repro.errors import ConfigurationError, SimulationError
from repro.server import ClientBuffer, Stream, StripedLayout


@pytest.fixture
def layout(rng):
    return StripedLayout([quantum_viking_2_1()] * 4, rng)


class TestStripedLayout:
    def test_round_robin_striping(self, layout):
        layout.store("movie", [1000.0] * 10)
        disks = [layout.locate("movie", i).disk for i in range(10)]
        first = disks[0]
        assert disks == [(first + i) % 4 for i in range(10)]

    def test_successive_fragments_hit_different_disks(self, layout):
        # §2.1: time-wise successive fragments of a stream never share a
        # disk (for D > 1).
        layout.store("movie", [1000.0] * 20)
        locs = layout.locate_all("movie")
        for a, b in zip(locs, locs[1:]):
            assert a.disk != b.disk

    def test_balanced_load(self, layout):
        layout.store("movie", [1000.0] * 22)
        profile = layout.disk_load_profile("movie")
        assert profile.max() - profile.min() <= 1
        assert profile.sum() == 22

    def test_start_disk_rotates_per_object(self, layout):
        layout.store("a", [1.0])
        layout.store("b", [1.0])
        assert layout.locate("a", 0).disk != layout.locate("b", 0).disk

    def test_positions_are_scattered(self, rng):
        layout = StripedLayout([quantum_viking_2_1()], rng)
        layout.store("movie", [1000.0] * 500)
        cylinders = np.array([loc.cylinder
                              for loc in layout.locate_all("movie")])
        # Random placement: spread across the disk, not clustered.
        assert cylinders.std() > 1000
        assert len(np.unique(cylinders)) > 400

    def test_validation(self, layout, rng):
        with pytest.raises(ConfigurationError):
            StripedLayout([], rng)
        with pytest.raises(ConfigurationError):
            layout.store("empty", [])
        with pytest.raises(ConfigurationError):
            layout.store("bad", [0.0])
        layout.store("dup", [1.0])
        with pytest.raises(ConfigurationError):
            layout.store("dup", [1.0])
        with pytest.raises(ConfigurationError):
            layout.locate("missing", 0)
        with pytest.raises(ConfigurationError):
            layout.locate("dup", 5)


class TestClientBuffer:
    def test_minimum_capacity(self):
        with pytest.raises(ConfigurationError):
            ClientBuffer(1)

    def test_deliver_consume_cycle(self):
        buf = ClientBuffer(2)
        buf.deliver()
        assert buf.occupied == 1
        assert buf.consume()
        assert buf.occupied == 0

    def test_underrun_returns_false(self):
        buf = ClientBuffer(2)
        assert not buf.consume()

    def test_overflow_raises(self):
        buf = ClientBuffer(2)
        buf.deliver()
        buf.deliver()
        with pytest.raises(SimulationError):
            buf.deliver()

    def test_high_watermark(self):
        buf = ClientBuffer(3)
        buf.deliver()
        buf.deliver()
        buf.consume()
        assert buf.high_watermark == 2


class TestStream:
    def test_fragment_schedule(self):
        s = Stream(0, "movie", length=5, start_round=10)
        assert s.fragment_for_round(9) is None
        assert s.fragment_for_round(10) == 0
        assert s.fragment_for_round(14) == 4
        assert s.fragment_for_round(15) is None
        assert not s.is_finished(14)
        assert s.is_finished(15)

    def test_glitch_accounting(self):
        s = Stream(0, "movie", length=100, start_round=0)
        s.record_delivery(0)
        s.record_glitch(1)
        s.record_delivery(2)
        assert s.stats.delivered == 2
        assert s.stats.glitches == 1
        assert s.stats.glitch_rounds == [1]
        assert s.stats.glitch_rate() == pytest.approx(1 / 3)

    def test_glitch_rate_requires_requests(self):
        s = Stream(0, "movie", length=1, start_round=0)
        with pytest.raises(SimulationError):
            s.stats.glitch_rate()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Stream(0, "movie", length=0, start_round=0)
        with pytest.raises(ConfigurationError):
            Stream(0, "movie", length=5, start_round=-1)
