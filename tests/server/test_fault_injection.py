"""Runtime fault injection, mirror failover and load shedding.

The contracts under test:

- the schedule DSL and its TOML loader validate and round-trip;
- fault events fire deterministically at exact simulation times, and a
  whole scenario's :class:`ServerReport` (including the shed/failover
  event logs) is identical across repeated runs with the same seed;
- a failed disk's requests fail over to the RAID-1 mirror; without a
  live mirror they are dropped and counted;
- the shedding policy pauses the newest streams down to the
  degraded-mode bound, keeps every surviving stream within the analytic
  tolerance ``delta``, and resumes paused streams -- at the exact frozen
  playback offset -- once capacity returns, while the no-shedding
  configuration demonstrably violates the bound.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.server.admission import AdmissionController
from repro.server.faults import (
    DEFAULT_STALL,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    SheddingPolicy,
    disk_fail,
    disk_recover,
    recalibration_storm,
    run_failover_scenario,
    slow_disk,
)
from repro.server.server import MediaServer
from repro.server.streams import Stream

T = 1.0
DELTA = 0.01


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def _loaded_server(spec, n_streams, rounds, *, disks=2, mirrored=True,
                   faults=None, shedding=None, admission=None, seed=0):
    """A farm with ``n_streams`` single-object streams of ``rounds``
    fragments each."""
    server = MediaServer([spec] * disks, T, admission=admission,
                         seed=seed, fault_injector=faults,
                         shedding=shedding, mirrored=mirrored)
    size_rng = np.random.default_rng(7)
    streams = []
    for index in range(n_streams):
        sizes = np.full(rounds, 150_000.0) * (
            1.0 + 0.1 * size_rng.random(rounds))
        server.store_object(f"obj-{index}", sizes)
        streams.append(server.open_stream(f"obj-{index}"))
    return server, streams


# ----------------------------------------------------------------------
# schedule DSL
# ----------------------------------------------------------------------

class TestFaultDSL:
    def test_constructors(self):
        assert disk_fail(3.0, 1) == FaultEvent("disk_fail", 3.0, disk=1)
        assert disk_recover(4.0).disk == 0
        assert slow_disk(1.0, 2.5, disk=1).factor == 2.5
        storm = recalibration_storm(2.0, 0.3, 5.0)
        assert storm.disk is None
        assert storm.stall == DEFAULT_STALL

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultEvent("disk_melt", 1.0, disk=0)
        with pytest.raises(ConfigurationError):
            disk_fail(-1.0)
        with pytest.raises(ConfigurationError):
            FaultEvent("disk_fail", 1.0)  # no disk
        with pytest.raises(ConfigurationError):
            slow_disk(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            recalibration_storm(1.0, 1.0, 5.0)  # prob must be < 1
        with pytest.raises(ConfigurationError):
            recalibration_storm(1.0, 0.5, 0.0)  # duration
        with pytest.raises(ConfigurationError):
            recalibration_storm(1.0, 0.5, 5.0, stall=0.0)

    def test_schedule_sorts_and_validates_disks(self):
        schedule = FaultSchedule([disk_recover(9.0, 0), disk_fail(2.0, 0)])
        assert [e.t for e in schedule] == [2.0, 9.0]
        assert len(schedule) == 2
        schedule.validate_disks(1)
        with pytest.raises(ConfigurationError):
            FaultSchedule([disk_fail(1.0, disk=5)]).validate_disks(2)

    def test_from_dict(self):
        schedule = FaultSchedule.from_dict({"events": [
            {"kind": "disk_fail", "t": 4.0, "disk": 1},
            {"kind": "recalibration_storm", "t": 1.0, "prob": 0.2,
             "duration": 3.0},
        ]})
        assert [e.kind for e in schedule] == ["recalibration_storm",
                                              "disk_fail"]

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule.from_dict({})
        with pytest.raises(ConfigurationError):
            FaultSchedule.from_dict({"events": []})
        with pytest.raises(ConfigurationError):
            FaultSchedule.from_dict({"events": [{"kind": "disk_fail"}]})
        with pytest.raises(ConfigurationError):
            FaultSchedule.from_dict({"events": [
                {"kind": "disk_fail", "t": 1.0, "disk": 0,
                 "severity": 11}]})

    def test_from_toml(self, tmp_path):
        path = tmp_path / "schedule.toml"
        path.write_text(
            '[[events]]\nkind = "disk_fail"\nt = 40.0\ndisk = 0\n\n'
            '[[events]]\nkind = "disk_recover"\nt = 90.0\ndisk = 0\n',
            encoding="utf-8")
        schedule = FaultSchedule.from_toml(path)
        assert [e.describe() for e in schedule] == [
            "t=40: disk 0 failed", "t=90: disk 0 recovered"]

    def test_from_toml_rejects_malformed(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("events = not toml [", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            FaultSchedule.from_toml(path)

    def test_example_schedule_parses(self):
        from pathlib import Path
        example = (Path(__file__).resolve().parents[2] / "examples"
                   / "single_disk_failure.toml")
        schedule = FaultSchedule.from_toml(example)
        assert [e.kind for e in schedule] == ["disk_fail", "disk_recover"]


# ----------------------------------------------------------------------
# injector semantics
# ----------------------------------------------------------------------

class TestFaultInjector:
    def test_bind_twice_rejected(self):
        from repro.sim.engine import Engine
        injector = FaultInjector([disk_fail(1.0, 0)])
        injector.bind(Engine(), 1)
        with pytest.raises(ConfigurationError):
            injector.bind(Engine(), 1)

    def test_bind_validates_schedule_against_farm(self):
        from repro.sim.engine import Engine
        injector = FaultInjector([disk_fail(1.0, disk=3)])
        with pytest.raises(ConfigurationError):
            injector.bind(Engine(), 2)

    def test_state_flips_at_exact_times(self):
        from repro.sim.engine import Engine
        engine = Engine()
        injector = FaultInjector([disk_fail(2.0, 0), disk_recover(5.0, 0),
                                  slow_disk(3.0, 4.0, disk=1)])
        injector.bind(engine, 2)
        assert injector.available(0)
        engine.run(until=2.0)
        assert not injector.available(0)
        assert injector.failed_disks() == frozenset({0})
        assert injector.service_scale(1) == 1.0
        engine.run(until=3.0)
        assert injector.service_scale(1) == 4.0
        engine.run(until=5.0)
        assert injector.available(0)
        assert [t for t, _ in injector.log] == [2.0, 3.0, 5.0]

    def test_storm_stall_is_counter_based(self):
        storm = recalibration_storm(10.0, 0.5, 20.0, stall=0.05)
        a = FaultInjector([storm], seed=3)
        b = FaultInjector([storm], seed=3)
        # Query in different orders: answers depend only on the
        # (seed, storm, disk, round) coordinates.
        grid = [(d, r) for d in range(2) for r in range(10, 30)]
        forward = {key: a.round_stall(key[0], key[1], 15.0)
                   for key in grid}
        backward = {key: b.round_stall(key[0], key[1], 15.0)
                    for key in reversed(grid)}
        assert forward == backward
        stalls = set(forward.values())
        assert stalls <= {0.0, 0.05}
        assert len(stalls) == 2  # both outcomes occur at prob 0.5

    def test_storm_respects_window_and_disk(self):
        storm = recalibration_storm(10.0, 0.99, 5.0, disk=1)
        injector = FaultInjector([storm], seed=0)
        assert injector.round_stall(0, 12, 12.0) == 0.0  # other disk
        assert injector.round_stall(1, 8, 8.0) == 0.0    # before window
        assert injector.round_stall(1, 15, 15.0) == 0.0  # after window
        inside = [injector.round_stall(1, r, float(r))
                  for r in range(10, 15)]
        assert sum(1 for s in inside if s > 0.0) >= 4  # prob 0.99

    def test_seed_changes_storm_draws(self):
        storm = recalibration_storm(0.0, 0.5, 100.0)
        a = FaultInjector([storm], seed=0)
        b = FaultInjector([storm], seed=1)
        draws_a = [a.round_stall(0, r, 50.0) for r in range(64)]
        draws_b = [b.round_stall(0, r, 50.0) for r in range(64)]
        assert draws_a != draws_b


# ----------------------------------------------------------------------
# shedding policy
# ----------------------------------------------------------------------

class TestSheddingPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SheddingPolicy(-1)
        with pytest.raises(ConfigurationError):
            SheddingPolicy(5, mode="panic")
        assert SheddingPolicy(5).target(4) == 20

    def test_from_model(self, viking, paper_sizes):
        policy = SheddingPolicy.from_model(viking, paper_sizes, T, DELTA)
        assert policy.mode == "pause"
        # The paper's operating point: 26 healthy, 13 failure-proof.
        assert policy.degraded_n_max == 13

    def test_admission_degrade_restore(self):
        ctrl = AdmissionController(26, disks=2)
        assert not ctrl.degraded
        ctrl.degrade(13)
        assert ctrl.degraded
        assert ctrl.capacity == 26
        ctrl.restore()
        assert not ctrl.degraded
        assert ctrl.capacity == 52
        with pytest.raises(ConfigurationError):
            ctrl.degrade(-1)


# ----------------------------------------------------------------------
# stream pause/resume mechanics
# ----------------------------------------------------------------------

class TestStreamPause:
    def test_pause_freezes_playback_offset(self):
        stream = Stream(0, "obj", length=10, start_round=0)
        assert stream.fragment_for_round(4) == 4
        stream.pause()
        assert stream.fragment_for_round(4) is None
        for _ in range(3):  # three paused rounds slip the schedule
            stream.defer_round()
        stream.resume()
        assert stream.fragment_for_round(7) == 4  # same fragment
        assert stream.stats.pauses == 1
        assert stream.stats.paused_rounds == 3

    def test_double_pause_and_stray_resume_rejected(self):
        stream = Stream(0, "obj", length=5, start_round=0)
        with pytest.raises(SimulationError):
            stream.resume()
        with pytest.raises(SimulationError):
            stream.defer_round()
        stream.pause()
        with pytest.raises(SimulationError):
            stream.pause()
        stream.resume()
        with pytest.raises(SimulationError):
            stream.defer_round()


# ----------------------------------------------------------------------
# failover + shedding, end to end
# ----------------------------------------------------------------------

class TestFailover:
    def test_failed_disk_requests_served_by_mirror(self, viking):
        injector = FaultInjector([disk_fail(10.0, 0)])
        server, streams = _loaded_server(viking, 8, 30, faults=injector)
        report = server.run_rounds(30)
        assert report.failovers > 0
        assert report.dropped_requests == 0
        # Every fetch was served somewhere, on time: a lightly-loaded
        # mirrored pair hides the failure completely.
        assert report.glitches == 0
        assert all(s.stats.glitches == 0 for s in streams)

    def test_unmirrored_farm_drops_requests(self, viking):
        injector = FaultInjector([disk_fail(10.0, 0)])
        server, streams = _loaded_server(viking, 8, 30, mirrored=False,
                                         faults=injector)
        report = server.run_rounds(30)
        assert report.failovers == 0
        assert report.dropped_requests > 0
        assert report.glitches >= report.dropped_requests
        # The drops land in the post-failure rounds.
        assert all(r >= 10 for r in report.glitches_by_round)

    def test_mid_round_failure_abandons_rest_of_sweep(self, viking):
        # Fail mid-round: the affected scheduler abandons its batch at
        # the fault instant, so that round glitches on the failed disk.
        injector = FaultInjector([disk_fail(10.05, 0)])
        server, _ = _loaded_server(viking, 8, 30, mirrored=False,
                                   faults=injector)
        report = server.run_rounds(30)
        assert 10 in report.glitches_by_round

    def test_slow_disk_recovers_with_factor_one(self, viking):
        injector = FaultInjector([slow_disk(5.0, 50.0, disk=0),
                                  slow_disk(10.0, 1.0, disk=0)])
        server, _ = _loaded_server(viking, 8, 30, faults=injector)
        report = server.run_rounds(30)
        slowed = {r for r in report.glitches_by_round if 5 <= r < 10}
        assert slowed  # a 50x slowdown must overrun the round
        # Factor 1.0 restores full speed; at most one in-flight scaled
        # request can spill past the restore instant, so the backlog
        # clears within two rounds.
        assert not {r for r in report.glitches_by_round if r >= 12}

    def test_fault_log_matches_schedule(self, viking):
        injector = FaultInjector([disk_fail(3.0, 0), disk_recover(7.0, 0)])
        server, _ = _loaded_server(viking, 4, 12, faults=injector)
        report = server.run_rounds(12)
        assert report.fault_log == [(3.0, "t=3: disk 0 failed"),
                                    (7.0, "t=7: disk 0 recovered")]


class TestSheddingEndToEnd:
    @pytest.fixture(scope="class")
    def scenario(self, viking, paper_sizes):
        return run_failover_scenario(viking, paper_sizes, rounds=120,
                                     fail_round=40, seed=0)

    def test_shedding_meets_degraded_bound(self, scenario, viking,
                                           paper_sizes):
        # The tentpole validation: with shedding, every surviving
        # stream's simulated glitch rate stays within the analytic
        # degraded-mode Chernoff tolerance.
        assert scenario.healthy_n_max == 26
        assert scenario.degraded_n_max == 13
        assert scenario.survivors == 26
        assert scenario.within_bound
        assert scenario.max_glitch_rate <= DELTA
        assert scenario.aggregate_glitch_rate <= DELTA

    def test_no_shedding_violates_bound(self, viking, paper_sizes):
        scenario = run_failover_scenario(viking, paper_sizes, rounds=120,
                                         fail_round=40, shedding=False,
                                         seed=0)
        # The survivor's doubled batch has mean service > the round
        # length at the paper's operating point: a guaranteed,
        # persistent violation -- shedding is load-bearing.
        assert not scenario.within_bound
        assert scenario.max_glitch_rate > 10 * DELTA
        assert scenario.report.shed_streams == 0

    def test_sheds_newest_streams_down_to_target(self, scenario):
        report = scenario.report
        # 52 streams, degraded target 2 * 13 = 26: shed exactly 26.
        assert report.shed_streams == 26
        shed_ids = sorted(sid for _, action, sid in report.shed_log
                          if action == "pause")
        assert shed_ids == list(range(26, 52))  # the newest half
        assert all(r == 40 for r, a, _ in report.shed_log if a == "pause")

    def test_paused_streams_issue_no_fetches(self, scenario):
        report = scenario.report
        # Shed at round 40 of 120: each paused stream defers 80 rounds.
        assert report.paused_stream_rounds == 26 * 80
        assert report.resumed_streams == 0

    def test_recovery_resumes_at_frozen_offset(self, viking, paper_sizes):
        scenario = run_failover_scenario(viking, paper_sizes, rounds=120,
                                         fail_round=40, recover_round=70,
                                         seed=0)
        report = scenario.report
        assert report.resumed_streams == 26
        assert all(r == 70 for r, a, _ in report.shed_log
                   if a == "resume")
        # Paused streams froze for exactly 30 rounds and then resumed
        # requesting from the frozen offset (no fragment skipped):
        # by round 120 they have requested 120 - 30 = 90 fragments.
        assert report.paused_stream_rounds == 26 * 30

    def test_drop_mode_closes_streams(self, viking, paper_sizes):
        scenario = run_failover_scenario(viking, paper_sizes, rounds=60,
                                         fail_round=40, shed_mode="drop",
                                         seed=0)
        report = scenario.report
        assert report.shed_streams == 26
        assert {a for _, a, _ in report.shed_log} == {"drop"}
        assert report.paused_stream_rounds == 0

    def test_scenario_validation(self, viking, paper_sizes):
        with pytest.raises(ConfigurationError):
            run_failover_scenario(viking, paper_sizes, disks=3)
        with pytest.raises(ConfigurationError):
            run_failover_scenario(viking, paper_sizes, rounds=50,
                                  fail_round=60)
        with pytest.raises(ConfigurationError):
            run_failover_scenario(viking, paper_sizes, rounds=50,
                                  fail_round=30, recover_round=20)


class TestDeterminism:
    def test_identical_reports_across_runs(self, viking, paper_sizes):
        kw = dict(rounds=80, fail_round=30, recover_round=60, seed=5)
        a = run_failover_scenario(viking, paper_sizes, **kw)
        b = run_failover_scenario(viking, paper_sizes, **kw)
        # The full report -- counters, per-round dicts, fault and shed
        # event logs -- must compare equal, not just the headline rates.
        assert a.report == b.report
        assert a.survivor_glitch_rates == b.survivor_glitch_rates

    def test_identical_reports_with_storms(self, viking):
        schedule = FaultSchedule([
            disk_fail(10.0, 0), disk_recover(20.0, 0),
            recalibration_storm(5.0, 0.4, 25.0, stall=0.08)])

        def run():
            injector = FaultInjector(schedule, seed=11)
            server, _ = _loaded_server(viking, 8, 40, faults=injector,
                                       seed=11)
            return server.run_rounds(40)

        assert run() == run()

    def test_seed_matters(self, viking, paper_sizes):
        # Under shedding the glitch count is ~0 for any seed, so compare
        # the overloaded (no-shedding) runs, whose per-round glitch
        # patterns depend on the sampled sizes and latencies.
        kw = dict(rounds=60, fail_round=30, shedding=False)
        a = run_failover_scenario(viking, paper_sizes, seed=0, **kw)
        b = run_failover_scenario(viking, paper_sizes, seed=1, **kw)
        assert a.report != b.report
