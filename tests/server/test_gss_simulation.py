"""GSS simulator tests (coupled sub-rounds)."""

import numpy as np
import pytest

from repro.core import RoundServiceTimeModel
from repro.core.gss import gss_group_p_late, n_max_gss
from repro.errors import ConfigurationError
from repro.server.gss_sim import simulate_gss_rounds
from repro.server.simulation import simulate_rounds


class TestMechanics:
    def test_shapes(self, viking, paper_sizes, rng):
        batch = simulate_gss_rounds(viking, paper_sizes, n=16, groups=4,
                                    t=1.0, rounds=50, rng=rng)
        assert batch.group_service_times.shape == (50, 4)
        assert batch.group_late.shape == (50, 4)
        assert batch.sub_round_length == pytest.approx(0.25)
        assert batch.rounds == 50

    def test_one_group_matches_scan_statistics(self, viking, paper_sizes):
        gss = simulate_gss_rounds(viking, paper_sizes, n=26, groups=1,
                                  t=1.0, rounds=3000,
                                  rng=np.random.default_rng(1))
        scan = simulate_rounds(viking, paper_sizes, 26, 1.0, 3000,
                               np.random.default_rng(2))
        assert float(np.mean(gss.group_service_times)) == pytest.approx(
            float(np.mean(scan.service_times)), rel=0.02)

    def test_validation(self, viking, paper_sizes, rng):
        with pytest.raises(ConfigurationError):
            simulate_gss_rounds(viking, paper_sizes, 10, 0, 1.0, 10, rng)
        with pytest.raises(ConfigurationError):
            simulate_gss_rounds(viking, paper_sizes, 10, 11, 1.0, 10,
                                rng)


class TestAgainstAnalytics:
    def test_bound_covers_coupled_system_at_admission(self, viking,
                                                      paper_sizes):
        # At the GSS admission point the rescaled analytic bound must
        # cover the coupled simulation (late groups delaying successors
        # included).
        model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
        g, t = 4, 1.0
        n = n_max_gss(model, t, g, 0.01)
        batch = simulate_gss_rounds(viking, paper_sizes, n, g, t,
                                    rounds=5000,
                                    rng=np.random.default_rng(3))
        assert gss_group_p_late(model, n, g, t) >= batch.p_late_group

    def test_grouping_increases_overhead(self, viking, paper_sizes):
        # Same total N: more groups means more sweeps and more total
        # busy time per round.
        n, t = 16, 1.0
        totals = []
        for g in (1, 4):
            batch = simulate_gss_rounds(viking, paper_sizes, n, g, t,
                                        rounds=2000,
                                        rng=np.random.default_rng(4))
            totals.append(float(np.mean(
                np.sum(batch.group_service_times, axis=1))))
        assert totals[1] > totals[0]

    def test_lateness_cascade_is_propagated(self, viking, paper_sizes):
        # Overload the groups: a late group must make successors late
        # more often than the i.i.d. rescaling predicts, visible as a
        # positive correlation between consecutive groups' lateness.
        batch = simulate_gss_rounds(viking, paper_sizes, n=36, groups=4,
                                    t=1.0, rounds=4000,
                                    rng=np.random.default_rng(5))
        late = batch.group_late.astype(float)
        assert float(np.mean(late)) > 0.05  # overloaded on purpose
        first, second = late[:, 0], late[:, 1]
        corr = float(np.corrcoef(first, second)[0, 1])
        assert corr > 0.05
