"""Run-time admission controller tests (§5)."""

import pytest

from repro.core import AdmissionTable, GlitchModel, RoundServiceTimeModel
from repro.disk import quantum_viking_2_1
from repro.errors import AdmissionError, ConfigurationError
from repro.server import AdmissionController
from repro.workload import paper_fragment_sizes


class TestCounting:
    def test_admits_to_capacity_then_rejects(self):
        ctrl = AdmissionController(n_max_per_disk=3, disks=2)
        for _ in range(6):
            ctrl.admit()
        assert ctrl.active == 6
        with pytest.raises(AdmissionError) as err:
            ctrl.admit()
        assert err.value.active_streams == 6
        assert err.value.limit == 6
        assert ctrl.rejections == 1
        assert ctrl.requests == 7

    def test_release_frees_slot(self):
        ctrl = AdmissionController(n_max_per_disk=1, disks=1)
        ctrl.admit()
        with pytest.raises(AdmissionError):
            ctrl.admit()
        ctrl.release()
        ctrl.admit()
        assert ctrl.active == 1

    def test_per_disk_ceiling(self):
        # 2 disks, limit 2 per disk: the 5th stream would make one disk
        # serve ceil(5/2)=3 requests in some round.
        ctrl = AdmissionController(n_max_per_disk=2, disks=2)
        for _ in range(4):
            ctrl.admit()
        assert not ctrl.would_admit()

    def test_zero_limit_rejects_everything(self):
        ctrl = AdmissionController(n_max_per_disk=0)
        assert not ctrl.would_admit()
        with pytest.raises(AdmissionError):
            ctrl.admit()

    def test_release_without_admit(self):
        ctrl = AdmissionController(n_max_per_disk=1)
        with pytest.raises(ConfigurationError):
            ctrl.release()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(n_max_per_disk=-1)
        with pytest.raises(ConfigurationError):
            AdmissionController(n_max_per_disk=1, disks=0)


class TestTableIntegration:
    def test_from_lookup_table(self):
        model = RoundServiceTimeModel.for_disk(quantum_viking_2_1(),
                                               paper_fragment_sizes())
        glitch = GlitchModel(model, t=1.0)
        table = AdmissionTable(glitch, m=1200, g=12)
        ctrl = AdmissionController.from_table(table, epsilon=0.01, disks=4)
        # Paper: N_max^perror = 28 per disk.
        assert ctrl.n_max_per_disk == 28
        assert ctrl.capacity == 112
