"""Run-time admission controller tests (§5)."""

import threading
import time

import pytest

from repro.core import AdmissionTable, GlitchModel, RoundServiceTimeModel
from repro.disk import quantum_viking_2_1
from repro.errors import AdmissionError, ConfigurationError
from repro.server import AdmissionController
from repro.workload import paper_fragment_sizes


class TestCounting:
    def test_admits_to_capacity_then_rejects(self):
        ctrl = AdmissionController(n_max_per_disk=3, disks=2)
        for _ in range(6):
            ctrl.admit()
        assert ctrl.active == 6
        with pytest.raises(AdmissionError) as err:
            ctrl.admit()
        assert err.value.active_streams == 6
        assert err.value.limit == 6
        assert ctrl.rejections == 1
        assert ctrl.requests == 7

    def test_release_frees_slot(self):
        ctrl = AdmissionController(n_max_per_disk=1, disks=1)
        ctrl.admit()
        with pytest.raises(AdmissionError):
            ctrl.admit()
        ctrl.release()
        ctrl.admit()
        assert ctrl.active == 1

    def test_per_disk_ceiling(self):
        # 2 disks, limit 2 per disk: the 5th stream would make one disk
        # serve ceil(5/2)=3 requests in some round.
        ctrl = AdmissionController(n_max_per_disk=2, disks=2)
        for _ in range(4):
            ctrl.admit()
        assert not ctrl.would_admit()

    def test_zero_limit_rejects_everything(self):
        ctrl = AdmissionController(n_max_per_disk=0)
        assert not ctrl.would_admit()
        with pytest.raises(AdmissionError):
            ctrl.admit()

    def test_release_without_admit(self):
        ctrl = AdmissionController(n_max_per_disk=1)
        with pytest.raises(ConfigurationError):
            ctrl.release()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(n_max_per_disk=-1)
        with pytest.raises(ConfigurationError):
            AdmissionController(n_max_per_disk=1, disks=0)


class TestDegradedFlag:
    def test_degrade_then_restore(self):
        ctrl = AdmissionController(n_max_per_disk=10, disks=2)
        assert not ctrl.degraded
        ctrl.degrade(4)
        assert ctrl.degraded
        assert ctrl.n_max_per_disk == 4
        ctrl.restore()
        assert not ctrl.degraded
        assert ctrl.n_max_per_disk == 10

    def test_equal_limit_still_reports_degraded(self):
        # Regression: when the degraded-mode bound happens to equal the
        # healthy limit, the controller must still report degraded --
        # the old implementation compared limits and silently claimed
        # healthy, so `repro observe` and the daemon's /state would lie
        # during a real degraded phase.
        ctrl = AdmissionController(n_max_per_disk=7, disks=2)
        ctrl.degrade(7)
        assert ctrl.degraded
        assert ctrl.n_max_per_disk == 7
        ctrl.restore()
        assert not ctrl.degraded

    def test_degrade_is_idempotent(self):
        ctrl = AdmissionController(n_max_per_disk=9, disks=1)
        ctrl.degrade(3)
        ctrl.degrade(3)
        assert ctrl.degraded
        ctrl.restore()
        ctrl.restore()
        assert not ctrl.degraded
        assert ctrl.n_max_per_disk == 9

    def test_snapshot_is_consistent(self):
        ctrl = AdmissionController(n_max_per_disk=3, disks=2)
        ctrl.admit()
        ctrl.degrade(1)
        snap = ctrl.snapshot()
        assert snap["active"] == 1
        assert snap["degraded"] is True
        assert snap["n_max_per_disk"] == 1
        assert snap["healthy_n_max"] == 3
        assert snap["requests"] == 1
        assert snap["rejections"] == 0


class TestThreadSafety:
    def test_widened_race_window_never_overshoots(self, monkeypatch):
        """Regression for the unlocked check-then-increment race.

        ``admit()`` used to run ``would_admit()`` and ``_active += 1``
        as two separate steps; widening the gap between them with a
        sleep made every pre-fix run overshoot the guarantee.  With the
        lock, the sleep happens inside the critical section and the
        cap holds exactly.
        """
        real = AdmissionController.would_admit

        def slow_would_admit(self):
            verdict = real(self)
            time.sleep(0.002)  # widen the check-to-increment window
            return verdict

        monkeypatch.setattr(AdmissionController, "would_admit",
                            slow_would_admit)
        ctrl = AdmissionController(n_max_per_disk=2, disks=2)  # cap 4
        threads = 10
        barrier = threading.Barrier(threads)
        outcomes = []

        def worker():
            barrier.wait()
            try:
                ctrl.admit()
                outcomes.append("admitted")
            except AdmissionError:
                outcomes.append("rejected")

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert ctrl.active == 4
        assert outcomes.count("admitted") == 4
        assert outcomes.count("rejected") == 6
        assert ctrl.requests == threads
        assert ctrl.rejections == 6

    def test_admit_release_hammer_stays_within_capacity(self):
        """N threads hammering admit/release: the active count must
        never exceed capacity at any observed instant, and the final
        accounting must balance."""
        ctrl = AdmissionController(n_max_per_disk=4, disks=2)  # cap 8
        threads, iterations = 8, 200
        barrier = threading.Barrier(threads)
        overshoots = []
        admitted_total = [0] * threads

        def worker(index):
            barrier.wait()
            held = 0
            for _ in range(iterations):
                try:
                    ctrl.admit()
                    held += 1
                    admitted_total[index] += 1
                except AdmissionError:
                    pass
                if ctrl.active > ctrl.capacity:
                    overshoots.append(ctrl.active)
                if held and held % 2 == 0:
                    ctrl.release()
                    ctrl.release()
                    held -= 2
            for _ in range(held):
                ctrl.release()

        pool = [threading.Thread(target=worker, args=(i,))
                for i in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert not overshoots, f"active exceeded capacity: {overshoots}"
        assert ctrl.active == 0
        assert ctrl.requests == threads * iterations
        assert ctrl.requests - ctrl.rejections == sum(admitted_total)

    def test_concurrent_degrade_restore_is_safe(self):
        ctrl = AdmissionController(n_max_per_disk=6, disks=2)
        stop = threading.Event()

        def flipper():
            while not stop.is_set():
                ctrl.degrade(2)
                ctrl.restore()

        def admitter():
            while not stop.is_set():
                try:
                    ctrl.admit()
                except AdmissionError:
                    continue
                ctrl.release()

        pool = [threading.Thread(target=flipper),
                threading.Thread(target=admitter),
                threading.Thread(target=admitter)]
        for thread in pool:
            thread.start()
        time.sleep(0.2)
        stop.set()
        for thread in pool:
            thread.join()
        ctrl.restore()
        assert ctrl.n_max_per_disk == 6
        assert not ctrl.degraded
        assert 0 <= ctrl.active <= ctrl.capacity


class TestTableIntegration:
    def test_from_lookup_table(self):
        model = RoundServiceTimeModel.for_disk(quantum_viking_2_1(),
                                               paper_fragment_sizes())
        glitch = GlitchModel(model, t=1.0)
        table = AdmissionTable(glitch, m=1200, g=12)
        ctrl = AdmissionController.from_table(table, epsilon=0.01, disks=4)
        # Paper: N_max^perror = 28 per disk.
        assert ctrl.n_max_per_disk == 28
        assert ctrl.capacity == 112
