"""Sweep-kernel tests: plan/serve bit-identity, SCAN elevator order,
golden same-seed server reports, and the farm kernel's statistical
agreement with the event engine.

The tentpole contract of the vectorised sweep kernel is twofold: the
event-driven path must stay *byte-identical* for a given seed (the plan
arrays replace scalar arithmetic bit for bit, and the rotational draw
stays lazy so abandoned requests never consume the RNG), and the
farm-level batched path must agree *statistically* (Wilson intervals)
with the event engine it shortcuts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import wilson_interval
from repro.core.farm import failover_phase_batches
from repro.disk.drive import DiskDrive
from repro.disk.presets import quantum_viking_2_1
from repro.disk.request import DiskRequest
from repro.disk.sweepkernel import plan_sweep, sample_cylinders_rates
from repro.distributions import Gamma
from repro.errors import ConfigurationError
from repro.server.faults import run_failover_scenario
from repro.server.scheduler import DiskScheduler
from repro.server.simulation import (simulate_farm_rounds,
                                     simulate_rounds)
from repro.sim.engine import Engine


@pytest.fixture(scope="module")
def viking():
    return quantum_viking_2_1()


@pytest.fixture(scope="module")
def sizes():
    return Gamma.from_mean_std(200_000.0, 100_000.0)


class TestPlanServeIdentity:
    def test_plan_matches_scalar_serve_bitwise(self, viking):
        """plan_round + serve_planned is byte-identical to serve()."""
        rng = np.random.default_rng(42)
        cylinders = rng.integers(0, viking.cylinders, size=40)
        requests = [DiskRequest(stream_id=i, size=150_000.0 + 1000.0 * i,
                                cylinder=int(c))
                    for i, c in enumerate(cylinders)]
        scalar = DiskDrive(viking.geometry, viking.seek_curve)
        planned = DiskDrive(viking.geometry, viking.seek_curve)
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)

        expected = [scalar.serve(r, rng_a) for r in requests]
        seeks, transfers = planned.plan_round(requests)
        observed = [planned.serve_planned(r, float(seeks[i]),
                                          float(transfers[i]), rng_b)
                    for i, r in enumerate(requests)]
        assert observed == expected
        assert planned.busy_time == scalar.busy_time
        assert planned.arm_cylinder == scalar.arm_cylinder

    def test_plan_valid_for_any_served_prefix(self, viking):
        """An aborted sweep serves a prefix; the plan must not depend
        on whether the suffix is ever served."""
        requests = [DiskRequest(stream_id=i, size=200_000.0,
                                cylinder=100 * i) for i in range(10)]
        drive = DiskDrive(viking.geometry, viking.seek_curve)
        full_seeks, full_transfers = drive.plan_round(requests)
        prefix_seeks, prefix_transfers = drive.plan_round(requests[:4])
        np.testing.assert_array_equal(prefix_seeks, full_seeks[:4])
        np.testing.assert_array_equal(prefix_transfers,
                                      full_transfers[:4])

    def test_plan_sweep_rejects_out_of_range(self, viking):
        from repro.errors import GeometryError
        with pytest.raises(GeometryError):
            plan_sweep(viking.geometry, viking.seek_curve, 0,
                       np.array([viking.cylinders]), np.array([1.0]))

    def test_sample_cylinders_matches_legacy_layout(self, viking):
        """The factored sampler consumes the RNG exactly like the old
        inline code: two uniform draws, zone pick then offset."""
        tables_rng = np.random.default_rng(3)
        manual_rng = np.random.default_rng(3)
        cylinders, rates = sample_cylinders_rates(viking, tables_rng,
                                                  (5, 7))
        geometry = viking.geometry
        weights = (geometry.zone_cylinder_counts
                   * geometry.zone_map.capacities)
        cum = np.cumsum(weights / np.sum(weights))
        zone = np.searchsorted(cum, manual_rng.random((5, 7)),
                               side="right")
        zone = np.minimum(zone, geometry.zones - 1)
        lo = geometry.zone_bounds[zone]
        width = geometry.zone_bounds[zone + 1] - lo
        expected = lo + np.floor(
            manual_rng.random((5, 7)) * width).astype(np.int64)
        np.testing.assert_array_equal(cylinders, expected)
        np.testing.assert_array_equal(
            rates, viking.zone_map.rates[
                geometry.zone_of_cylinder(expected)])


def _run_scheduler_rounds(viking, cylinder_batches):
    """Run one DiskScheduler through the given per-round cylinder
    batches with generous deadlines; returns the outcomes."""
    engine = Engine()
    drive = DiskDrive(viking.geometry, viking.seek_curve)
    outcomes = []
    scheduler = DiskScheduler(engine, drive, np.random.default_rng(0),
                              lambda disk, outcome:
                              outcomes.append(outcome))
    deadline = 0.0
    for round_index, cylinders in enumerate(cylinder_batches):
        deadline += 1e9
        scheduler.submit(round_index, deadline,
                         [DiskRequest(stream_id=i, size=200_000.0,
                                      cylinder=c)
                          for i, c in enumerate(cylinders)])
    scheduler.shutdown()
    engine.run()
    return outcomes


class TestScanElevatorProperty:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.lists(st.integers(min_value=0, max_value=1999),
                             min_size=1, max_size=20),
                    min_size=1, max_size=4))
    def test_rounds_sweep_in_alternating_cylinder_order(self, batches):
        """With no deadline pressure every batch is served completely,
        in ascending cylinder order on even rounds and descending on
        odd rounds (the SCAN elevator), regardless of arrival order."""
        viking = quantum_viking_2_1()
        outcomes = _run_scheduler_rounds(viking, batches)
        assert len(outcomes) == len(batches)
        for round_index, (cylinders, outcome) in enumerate(
                zip(batches, outcomes)):
            assert not outcome.glitched
            served_cyls = [cylinders[sid]
                           for sid in outcome.served_on_time]
            assert sorted(served_cyls) == sorted(cylinders)
            expected = sorted(served_cyls,
                              reverse=(round_index % 2 == 1))
            assert served_cyls == expected
            # Completion times are aligned with served_on_time and
            # strictly increase along the sweep.
            assert len(outcome.completion_times) == len(served_cyls)
            assert list(outcome.completion_times) == sorted(
                outcome.completion_times)


#: Golden values captured on the pre-kernel event engine.  The sweep
#: kernel refactor must keep every same-seed report byte-identical.
GOLDEN_SHED = dict(delivered=2470, requests=2470, physical_requests=2470,
                   rounds=60, glitches=0, late_rounds=0,
                   dropped_requests=0, failovers=325,
                   paused_stream_rounds=650, shed_streams=26,
                   resumed_streams=26)
GOLDEN_NOSHED = dict(delivered=2028, requests=3000,
                     physical_requests=3000, rounds=50, glitches=912,
                     late_rounds=36, dropped_requests=0, failovers=1050)


class TestGoldenReports:
    def _shed_scenario(self, viking, sizes):
        return run_failover_scenario(viking, sizes, disks=2, t=1.0,
                                     delta=0.01, rounds=60,
                                     fail_round=20, recover_round=45,
                                     shedding=True, seed=7)

    def _noshed_scenario(self, viking, sizes):
        return run_failover_scenario(viking, sizes, disks=2, t=1.0,
                                     delta=0.01, rounds=50,
                                     fail_round=15, shedding=False,
                                     n_per_disk=30, seed=11)

    def test_shed_golden(self, viking, sizes):
        report = self._shed_scenario(viking, sizes).report
        for key, expected in GOLDEN_SHED.items():
            assert getattr(report, key) == expected, key
        assert report.shed_by_round == {20: 26}
        assert report.glitches_by_round == {}
        assert report.failovers_by_round == {
            r: 13 for r in range(20, 45)}

    def test_noshed_golden(self, viking, sizes):
        result = self._noshed_scenario(viking, sizes)
        report = result.report
        for key, expected in GOLDEN_NOSHED.items():
            assert getattr(report, key) == expected, key
        assert result.aggregate_glitch_rate == pytest.approx(
            0.31020408163265306, abs=0.0)
        assert report.glitches_by_round[15] == 25
        assert report.glitches_by_round[48] == 32
        assert report.per_disk_late_rounds == {0: 0, 1: 36}

    def test_same_seed_reports_compare_equal(self, viking, sizes):
        first = self._shed_scenario(viking, sizes).report
        second = self._shed_scenario(viking, sizes).report
        assert first == second


class TestFailoverPhaseBatches:
    def test_shedding_populations(self):
        healthy, degraded = failover_phase_batches(
            4, 30, degraded_n_max=13, fail_disk=2, shedding=True)
        assert healthy == (30, 30, 30, 30)
        assert degraded == (13, 13, 0, 26)

    def test_no_shedding_doubles_the_survivor(self):
        _, degraded = failover_phase_batches(2, 30, shedding=False)
        assert degraded == (0, 60)

    def test_odd_farm_last_disk_has_no_survivor(self):
        _, degraded = failover_phase_batches(3, 10, shedding=False,
                                             fail_disk=2)
        assert degraded == (10, 10, 0)

    def test_shedding_requires_bound(self):
        with pytest.raises(ConfigurationError):
            failover_phase_batches(2, 30, shedding=True)


class TestFarmKernel:
    def test_phase_structure_and_counts(self, viking, sizes):
        est = simulate_farm_rounds(viking, sizes, disks=2, n_per_disk=8,
                                   t=1.0, rounds=100, fail_round=40,
                                   recover_round=70, shedding=False,
                                   seed=5)
        names = [p.name for p in est.phases]
        assert names == ["healthy", "degraded", "recovered"]
        healthy = est.phase("healthy")
        assert healthy.rounds == 40 and healthy.disk_rounds == 80
        assert healthy.requests == 80 * 8
        degraded = est.phase("degraded")
        # The failed disk idles; the survivor doubles.
        assert degraded.disk_rounds == 30
        assert degraded.requests == 30 * 16
        assert est.per_disk[0][1] == (0, 0, 0, 0)
        recovered = est.phase("recovered")
        assert recovered.rounds == 30 and recovered.disk_rounds == 60

    def test_no_failure_single_phase(self, viking, sizes):
        est = simulate_farm_rounds(viking, sizes, disks=3, n_per_disk=5,
                                   t=1.0, rounds=50, fail_round=None,
                                   seed=1)
        assert [p.name for p in est.phases] == ["healthy"]
        assert est.fail_disk is None
        assert est.phase("healthy").disk_rounds == 150

    def test_jobs_fanout_bit_identical(self, viking, sizes):
        kwargs = dict(disks=2, n_per_disk=10, t=1.0, rounds=200,
                      fail_round=80, shedding=False, seed=13)
        serial = simulate_farm_rounds(viking, sizes, **kwargs)
        pooled = simulate_farm_rounds(viking, sizes, jobs=2, **kwargs)
        assert serial.per_disk == pooled.per_disk
        assert serial.phases == pooled.phases

    def test_cross_validates_event_engine(self, viking, sizes):
        """The farm kernel's degraded-phase glitch rate must agree
        (overlapping Wilson 95 % intervals) with the event-driven
        no-shed scenario it shortcuts."""
        event = run_failover_scenario(viking, sizes, disks=2, t=1.0,
                                      delta=0.01, rounds=50,
                                      fail_round=15, shedding=False,
                                      n_per_disk=30, seed=11)
        degraded_rounds = 50 - 15
        event_glitches = sum(
            count for r, count in
            event.report.glitches_by_round.items() if r >= 15)
        event_requests = degraded_rounds * 60
        event_ci = wilson_interval(event_glitches, event_requests)

        kernel = simulate_farm_rounds(viking, sizes, disks=2,
                                      n_per_disk=30, t=1.0, rounds=4000,
                                      fail_round=500, shedding=False,
                                      seed=3)
        kernel_ci = kernel.survivor_degraded().glitch_ci()
        assert kernel_ci[0] <= event_ci[1] and \
            event_ci[0] <= kernel_ci[1], (
                f"event CI {event_ci} and kernel CI {kernel_ci} "
                f"do not overlap")

    def test_kernel_matches_plain_simulate_rounds_when_healthy(
            self, viking, sizes):
        """A single healthy disk through the farm wrapper reproduces
        simulate_rounds on the farm's per-disk seed exactly."""
        est = simulate_farm_rounds(viking, sizes, disks=1, n_per_disk=6,
                                   t=1.0, rounds=300, fail_round=None,
                                   seed=9)
        child = np.random.SeedSequence([9, 0xFA9A]).spawn(1)[0]
        batch = simulate_rounds(viking, sizes, 6, 1.0, 300,
                                np.random.default_rng(child))
        late = int(np.sum(batch.service_times > 1.0))
        glitches = int(np.sum(batch.glitches))
        assert est.per_disk[0][0] == (300, late, 1800, glitches)

    def test_validation_errors(self, viking, sizes):
        with pytest.raises(ConfigurationError):
            simulate_farm_rounds(viking, sizes, disks=0, n_per_disk=5,
                                 t=1.0, rounds=10)
        with pytest.raises(ConfigurationError):
            simulate_farm_rounds(viking, sizes, disks=2, n_per_disk=5,
                                 t=1.0, rounds=10, fail_round=20)
        with pytest.raises(ConfigurationError):
            simulate_farm_rounds(viking, sizes, disks=2, n_per_disk=5,
                                 t=1.0, rounds=10, fail_round=5,
                                 recover_round=3)


class TestRecoveredRejoin:
    """Recovered-phase rejoin semantics (the PR 5 carry-over bugfix).

    The old kernel modelled the recovered phase with the *healthy*
    populations, so streams shed during the degraded phase reappeared
    out of thin air at ``recover_round``.  The fixed default starts the
    recovered phase from the shed populations (event-engine drop-mode
    semantics); ``rejoin_rounds`` ramps back up, and
    ``instant_rejoin=True`` pins the old behaviour (pause-mode
    semantics, where every paused stream resumes at once).
    """

    #: 2 disks x 30 streams, failure rounds [20, 45) of 60, shed to the
    #: degraded bound of 13 per disk.
    KW = dict(disks=2, n_per_disk=30, t=1.0, rounds=60, fail_round=20,
              recover_round=45, shedding=True, degraded_n_max=13,
              seed=7)

    def test_recovered_phase_starts_from_shed_population(self, viking,
                                                         sizes):
        """Regression (fails pre-fix): by default the recovered phase
        runs at the shed level, not the healthy one."""
        est = simulate_farm_rounds(viking, sizes, **self.KW)
        assert [p.name for p in est.phases] == \
            ["healthy", "degraded", "recovered"]
        recovered = est.phase("recovered")
        assert recovered.rounds == 15
        # 15 rounds x 2 disks x 13 kept streams -- the pre-fix code
        # produced 15 x 2 x 30 = 900 requests here.
        assert recovered.requests == 15 * 2 * 13
        for disk in range(2):
            assert est.per_disk[disk][2][2] == 15 * 13

    def test_instant_rejoin_pins_old_behaviour(self, viking, sizes):
        est = simulate_farm_rounds(viking, sizes, instant_rejoin=True,
                                   **self.KW)
        recovered = est.phase("recovered")
        assert recovered.rounds == 15
        assert recovered.requests == 15 * 2 * 30
        for disk in range(2):
            assert est.per_disk[disk][2][2] == 15 * 30

    def test_rejoin_ramp_refills_to_full_population(self, viking,
                                                    sizes):
        """``rejoin_rounds=5`` ramps 13 -> 30 per disk linearly and the
        three-phase estimate shape survives the split plan."""
        est = simulate_farm_rounds(viking, sizes, rejoin_rounds=5,
                                   **self.KW)
        assert [p.name for p in est.phases] == \
            ["healthy", "degraded", "recovered"]
        recovered = est.phase("recovered")
        assert recovered.rounds == 15
        # Ramp levels ceil-interpolated from 13 to 30 over 5 rounds
        # (17, 20, 24, 27, 30), then 10 rounds at the full 30.
        per_disk_requests = (17 + 20 + 24 + 27 + 30) + 10 * 30
        assert recovered.requests == 2 * per_disk_requests
        hold = simulate_farm_rounds(viking, sizes, **self.KW)
        instant = simulate_farm_rounds(viking, sizes,
                                       instant_rejoin=True, **self.KW)
        assert hold.phase("recovered").requests \
            < recovered.requests \
            < instant.phase("recovered").requests

    def test_ramp_shorter_than_span_is_capped(self, viking, sizes):
        """A ramp longer than the remaining rounds never overshoots the
        run length and still ends at n_per_disk-sized rounds."""
        kwargs = dict(self.KW, rounds=48)  # only 3 recovered rounds
        est = simulate_farm_rounds(viking, sizes, rejoin_rounds=5,
                                   **kwargs)
        recovered = est.phase("recovered")
        assert recovered.rounds == 3
        # First three ramp levels: 17, 20, 24.
        assert recovered.requests == 2 * (17 + 20 + 24)

    def test_drop_mode_cross_validates_event_engine(self, viking,
                                                    sizes):
        """Drop-mode event engine vs the kernel default: the recovered
        populations must match exactly and the recovered-phase glitch
        rates must agree (overlapping Wilson 95 % intervals)."""
        event = run_failover_scenario(viking, sizes, disks=2, t=1.0,
                                      delta=0.01, rounds=60,
                                      fail_round=20, recover_round=45,
                                      shedding=True, shed_mode="drop",
                                      seed=7)
        remaining = event.streams_opened - event.report.shed_streams
        span = 60 - 45
        event_glitches = sum(
            count for r, count in
            event.report.glitches_by_round.items() if r >= 45)
        event_ci = wilson_interval(event_glitches, span * remaining)

        kernel = simulate_farm_rounds(
            viking, sizes, disks=2,
            n_per_disk=event.streams_opened // 2, t=1.0, rounds=2000,
            fail_round=200, recover_round=500, shedding=True,
            degraded_n_max=event.degraded_n_max, seed=3)
        recovered = kernel.phase("recovered")
        # Same per-round farm population after a drop-mode recovery.
        assert recovered.requests == recovered.rounds * remaining
        kernel_ci = wilson_interval(recovered.glitches,
                                    recovered.requests)
        assert kernel_ci[0] <= event_ci[1] and \
            event_ci[0] <= kernel_ci[1], (
                f"event CI {event_ci} and kernel CI {kernel_ci} "
                f"do not overlap")

    def test_rejoin_validation(self, viking, sizes):
        with pytest.raises(ConfigurationError):
            simulate_farm_rounds(viking, sizes, rejoin_rounds=-1,
                                 **self.KW)
        with pytest.raises(ConfigurationError):
            simulate_farm_rounds(viking, sizes, instant_rejoin=True,
                                 rejoin_rounds=5, **self.KW)
