"""Cross-validation: event-driven server vs vectorised Monte Carlo.

The two simulation paths share the disk model but differ in mechanics
(generator coroutines vs bulk numpy, exact vs approximate arm carry-over
on overruns).  Their p_late estimates must agree statistically.
"""

import math

import numpy as np
import pytest

from repro.analysis.stats import wilson_interval
from repro.disk import quantum_viking_2_1
from repro.server import MediaServer
from repro.server.simulation import simulate_rounds


@pytest.mark.slow
class TestPathsAgree:
    def test_p_late_statistically_equal(self, paper_sizes):
        n = 29  # p_late ~ 1.4 %: enough events either way
        t = 1.0
        rounds = 3000
        spec = quantum_viking_2_1()

        # Vectorised path.
        rng = np.random.default_rng(101)
        batch = simulate_rounds(spec, paper_sizes, n, t, rounds, rng)
        vec_late = int(np.sum(batch.service_times > t))

        # Event-driven path: one disk, n eternal streams.
        server = MediaServer([spec], t, admission=None, seed=202)
        sizes = paper_sizes.sample(np.random.default_rng(7),
                                   size=(n, rounds))
        for s in range(n):
            server.store_object(f"stream-{s}", sizes[s])
            server.open_stream(f"stream-{s}")
        report = server.run_rounds(rounds)
        ev_late = report.late_rounds

        p_vec = vec_late / rounds
        p_ev = ev_late / rounds
        # Two-proportion z-test at ~4 sigma.
        pooled = (vec_late + ev_late) / (2 * rounds)
        se = math.sqrt(2 * pooled * (1 - pooled) / rounds)
        assert abs(p_vec - p_ev) < 4 * se + 1e-9, (p_vec, p_ev)

    def test_mean_service_time_agrees(self, paper_sizes):
        # Compare the busy-time the two paths charge for identical load
        # levels (different random draws, so compare means).
        n, t, rounds = 20, 1.0, 1500
        spec = quantum_viking_2_1()

        rng = np.random.default_rng(33)
        batch = simulate_rounds(spec, paper_sizes, n, t, rounds, rng)
        vec_mean = float(np.mean(batch.service_times))

        server = MediaServer([spec], t, admission=None, seed=44)
        sizes = paper_sizes.sample(np.random.default_rng(55),
                                   size=(n, rounds))
        for s in range(n):
            server.store_object(f"stream-{s}", sizes[s])
            server.open_stream(f"stream-{s}")
        server.run_rounds(rounds)
        drive_busy = sum(sched.drive.busy_time
                         for sched in server._schedulers)
        ev_mean = drive_busy / rounds

        assert ev_mean == pytest.approx(vec_mean, rel=0.03)

    def test_glitch_rate_agrees(self, paper_sizes):
        n, t, rounds = 30, 1.0, 2000  # heavy load, frequent glitches
        spec = quantum_viking_2_1()

        rng = np.random.default_rng(66)
        batch = simulate_rounds(spec, paper_sizes, n, t, rounds, rng)
        vec_rate = float(np.mean(batch.glitches))

        server = MediaServer([spec], t, admission=None, seed=77)
        sizes = paper_sizes.sample(np.random.default_rng(88),
                                   size=(n, rounds))
        for s in range(n):
            server.store_object(f"stream-{s}", sizes[s])
            server.open_stream(f"stream-{s}")
        report = server.run_rounds(rounds)
        ev_rate = report.glitches / report.requests

        lo, hi = wilson_interval(int(vec_rate * rounds * n), rounds * n,
                                 confidence=0.999)
        # Allow extra slack: the event path carries overrun time into
        # the next round (realistic), the vectorised path does not.
        assert lo * 0.5 <= ev_rate <= hi * 2.0 + 0.01
