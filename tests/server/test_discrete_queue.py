"""Discrete-queue simulation tests (§6 mixed-workload extension)."""

import numpy as np
import pytest

from repro.core.mixed import MixedWorkloadModel
from repro.distributions import Gamma
from repro.errors import ConfigurationError
from repro.server.mixed import simulate_discrete_queue


@pytest.fixture(scope="module")
def disc_sizes():
    return Gamma.from_mean_std(8_000.0, 8_000.0)


class TestMechanics:
    def test_accounting(self, viking, paper_sizes, disc_sizes):
        result = simulate_discrete_queue(
            viking, paper_sizes, disc_sizes, n=20, arrival_rate=5.0,
            t=1.0, rounds=300, rng=np.random.default_rng(1))
        assert result.served <= result.arrived
        assert result.response_times.size == result.served
        assert np.all(result.response_times >= 1)
        assert result.queue_lengths.shape == (300,)

    def test_zero_arrivals(self, viking, paper_sizes, disc_sizes):
        result = simulate_discrete_queue(
            viking, paper_sizes, disc_sizes, n=20, arrival_rate=0.0,
            t=1.0, rounds=100, rng=np.random.default_rng(1))
        assert result.arrived == 0
        assert result.served == 0
        assert np.isnan(result.mean_response_rounds)

    def test_validation(self, viking, paper_sizes, disc_sizes):
        with pytest.raises(ConfigurationError):
            simulate_discrete_queue(
                viking, paper_sizes, disc_sizes, 20, -1.0, 1.0, 100,
                np.random.default_rng(0))


class TestQueueing:
    def test_light_load_fast_responses(self, viking, paper_sizes,
                                       disc_sizes):
        # Plenty of leftover at N=20: responses mostly same-round.
        result = simulate_discrete_queue(
            viking, paper_sizes, disc_sizes, n=20, arrival_rate=3.0,
            t=1.0, rounds=600, rng=np.random.default_rng(2))
        assert not result.saturated
        assert result.mean_response_rounds < 1.5
        assert result.served >= 0.95 * result.arrived

    def test_overload_saturates(self, viking, paper_sizes, disc_sizes):
        # Offered discrete load far above the leftover capacity.
        mixed = MixedWorkloadModel(spec=viking,
                                   continuous_sizes=paper_sizes,
                                   discrete_sizes=disc_sizes)
        capacity = mixed.discrete_throughput_estimate(26, 1.0)
        result = simulate_discrete_queue(
            viking, paper_sizes, disc_sizes, n=26,
            arrival_rate=3.0 * capacity, t=1.0, rounds=600,
            rng=np.random.default_rng(3))
        assert result.saturated
        assert result.served < result.arrived

    def test_response_time_grows_with_load(self, viking, paper_sizes,
                                           disc_sizes):
        mixed = MixedWorkloadModel(spec=viking,
                                   continuous_sizes=paper_sizes,
                                   discrete_sizes=disc_sizes)
        capacity = mixed.discrete_throughput_estimate(24, 1.0)
        responses = []
        for load in (0.3, 0.7, 0.95):
            result = simulate_discrete_queue(
                viking, paper_sizes, disc_sizes, n=24,
                arrival_rate=load * capacity, t=1.0, rounds=800,
                rng=np.random.default_rng(4))
            responses.append(result.mean_response_rounds)
        assert responses == sorted(responses)

    def test_continuous_unaffected_by_discrete_overload(
            self, viking, paper_sizes, disc_sizes):
        quiet = simulate_discrete_queue(
            viking, paper_sizes, disc_sizes, n=26, arrival_rate=0.0,
            t=1.0, rounds=2000, rng=np.random.default_rng(5))
        flooded = simulate_discrete_queue(
            viking, paper_sizes, disc_sizes, n=26, arrival_rate=100.0,
            t=1.0, rounds=2000, rng=np.random.default_rng(5))
        # Continuous-first: glitch rates statistically identical.
        assert float(np.mean(flooded.continuous_glitches)) == \
            pytest.approx(float(np.mean(quiet.continuous_glitches)),
                          abs=0.003)
