"""Determinism and equivalence tests for the parallel execution layer.

The contract under test: for a fixed seed, every estimate is
bit-identical no matter how many worker processes compute it, and the
stream-glitch fan-out matches the serial function exactly.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.parallel import (
    DEFAULT_CHUNK_ROUNDS,
    estimate_p_error_parallel,
    estimate_p_late_parallel,
    resolve_jobs,
    simulate_rounds_parallel,
    simulate_stream_glitches_parallel,
)
from repro.server import simulation as sim

ROUNDS = 5_000
N = 28
T = 1.0


class TestResolveJobs:
    def test_none_and_zero_mean_all_cores(self):
        import os
        assert resolve_jobs(None) == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_explicit_passthrough(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(-1)


class TestJobsInvariance:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_p_late_bit_identical(self, viking, paper_sizes, jobs):
        base = estimate_p_late_parallel(viking, paper_sizes, N, T,
                                        rounds=ROUNDS, seed=11, jobs=1)
        other = estimate_p_late_parallel(viking, paper_sizes, N, T,
                                         rounds=ROUNDS, seed=11,
                                         jobs=jobs)
        assert base == other

    @pytest.mark.parametrize("jobs", [2, 3])
    def test_round_batch_bit_identical(self, viking, paper_sizes, jobs):
        a = simulate_rounds_parallel(viking, paper_sizes, 8, T, 3000,
                                     seed=5, jobs=1, chunk_rounds=512)
        b = simulate_rounds_parallel(viking, paper_sizes, 8, T, 3000,
                                     seed=5, jobs=jobs, chunk_rounds=512)
        assert np.array_equal(a.service_times, b.service_times)
        assert np.array_equal(a.glitches, b.glitches)
        assert np.array_equal(a.seek_times, b.seek_times)
        assert np.array_equal(a.first_seek_times, b.first_seek_times)

    def test_p_error_bit_identical(self, viking, paper_sizes):
        kw = dict(runs=8, seed=3)
        base = estimate_p_error_parallel(viking, paper_sizes, 30, T,
                                         120, 2, **kw, jobs=1)
        par = estimate_p_error_parallel(viking, paper_sizes, 30, T,
                                        120, 2, **kw, jobs=2)
        assert base == par

    def test_different_seeds_differ(self, viking, paper_sizes):
        a = simulate_rounds_parallel(viking, paper_sizes, 8, T, 1024,
                                     seed=1, jobs=1, chunk_rounds=256)
        b = simulate_rounds_parallel(viking, paper_sizes, 8, T, 1024,
                                     seed=2, jobs=1, chunk_rounds=256)
        assert not np.array_equal(a.service_times, b.service_times)


class TestGlitchFanOutMatchesSerial:
    def test_bit_identical_to_serial_function(self, viking,
                                              paper_sizes):
        serial = sim.simulate_stream_glitches(viking, paper_sizes, 12,
                                              T, 40, 6, seed=9)
        par = simulate_stream_glitches_parallel(viking, paper_sizes, 12,
                                                T, 40, 6, seed=9,
                                                jobs=2)
        assert np.array_equal(serial, par)

    def test_simulation_module_delegates(self, viking, paper_sizes):
        serial = sim.simulate_stream_glitches(viking, paper_sizes, 12,
                                              T, 40, 6, seed=9)
        via_jobs = sim.simulate_stream_glitches(viking, paper_sizes, 12,
                                                T, 40, 6, seed=9,
                                                jobs=2)
        assert np.array_equal(serial, via_jobs)

    def test_estimate_p_error_delegates(self, viking, paper_sizes):
        serial = sim.estimate_p_error(viking, paper_sizes, 30, T, 120,
                                      2, runs=6, seed=4)
        par = sim.estimate_p_error(viking, paper_sizes, 30, T, 120, 2,
                                   runs=6, seed=4, jobs=2)
        assert serial == par


class TestChunking:
    def test_shapes_and_chunk_concatenation(self, viking, paper_sizes):
        rounds = 2 * DEFAULT_CHUNK_ROUNDS + 17  # ragged tail chunk
        batch = simulate_rounds_parallel(viking, paper_sizes, 4, T,
                                         rounds, seed=0, jobs=2)
        assert batch.rounds == rounds
        assert batch.glitches.shape == (rounds, 4)

    def test_jobs_none_legacy_path_unchanged(self, viking,
                                             paper_sizes):
        # estimate_p_late without jobs must keep the historical
        # single-stream RNG layout: one Generator consumed sequentially.
        legacy = sim.estimate_p_late(viking, paper_sizes, 8, T,
                                     rounds=1000, seed=7)
        rng = np.random.default_rng(7)
        batch = sim.simulate_rounds(viking, paper_sizes, 8, T, 1000,
                                    rng)
        assert legacy.late_rounds == int(
            np.sum(batch.service_times > T))

    def test_rejects_bad_rounds_and_chunks(self, viking, paper_sizes):
        with pytest.raises(ConfigurationError):
            simulate_rounds_parallel(viking, paper_sizes, 4, T, 0,
                                     jobs=1)
        with pytest.raises(ConfigurationError):
            simulate_rounds_parallel(viking, paper_sizes, 4, T, 100,
                                     jobs=1, chunk_rounds=0)
        with pytest.raises(ConfigurationError):
            simulate_stream_glitches_parallel(viking, paper_sizes, 4,
                                              T, 10, 0, jobs=1)
