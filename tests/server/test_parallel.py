"""Determinism and equivalence tests for the parallel execution layer.

The contract under test: for a fixed seed, every estimate is
bit-identical no matter how many worker processes compute it or which
transport carries the results, the stream-glitch fan-out matches the
serial function exactly, a worker failure fails fast with every
shared-memory block released, and no ``/dev/shm`` blocks outlive any
call.
"""

import os
import signal

import numpy as np
import pytest

from repro.distributions import Gamma
from repro.errors import ConfigurationError, ParallelExecutionError
from repro.parallel import (
    DEFAULT_CHUNK_ROUNDS,
    JOBS_ENV,
    SHM_PREFIX,
    WORKER_RETRIES_ENV,
    estimate_p_error_parallel,
    estimate_p_late_parallel,
    fan_out,
    resolve_jobs,
    resolve_worker_retries,
    simulate_rounds_parallel,
    simulate_stream_glitches_parallel,
    sweep_p_error_parallel,
    sweep_p_late_parallel,
)
from repro.server import simulation as sim

ROUNDS = 5_000
N = 28
T = 1.0


def _shm_blocks():
    """Names of live repro shared-memory blocks (None when the host has
    no /dev/shm to inspect)."""
    if not os.path.isdir("/dev/shm"):
        return None
    return {entry for entry in os.listdir("/dev/shm")
            if entry.startswith(SHM_PREFIX)}


@pytest.fixture(autouse=True)
def _no_leaked_shm_blocks():
    """Every test in this module must leave /dev/shm as it found it."""
    before = _shm_blocks()
    yield
    after = _shm_blocks()
    if before is not None:
        assert after == before, f"leaked shm blocks: {after - before}"


def _mul_ten(task):
    return task * 10


def _explode_on_two(task):
    if task == 2:
        raise ValueError("task two blew up")
    return task * 10


def _raise_config_error(task):
    raise ConfigurationError("invalid worker input")


class _ExplodingSizes(Gamma):
    """Fragment-size law whose sampler raises mid-simulation (module
    level so pool workers can unpickle it)."""

    def sample(self, rng, size=None):
        raise RuntimeError("sampler exploded")


#: Path of the kamikaze sentinel file, handed to pool workers through
#: the environment (inherited on fork and spawn alike).
_KILL_SENTINEL_ENV = "REPRO_TEST_KILL_SENTINEL"


def _draw_from_seed(task):
    """The retry contract's worker shape: output depends only on the
    task's own SeedSequence, never on which process ran it."""
    _index, seed_seq = task
    return float(np.random.default_rng(seed_seq).random())


def _draw_or_die_once(task):
    """SIGKILL the worker process the first time task 2 is attempted
    (simulating the OOM killer); the retry serves it normally."""
    index, _seed_seq = task
    sentinel = os.environ.get(_KILL_SENTINEL_ENV)
    if sentinel and index == 2:
        if not os.path.exists(sentinel):
            open(sentinel, "w").close()
            os.kill(os.getpid(), signal.SIGKILL)
    return _draw_from_seed(task)


def _die_always(task):
    """Unconditional worker death on task 2: exhausts any retry budget."""
    index, _seed_seq = task
    if index == 2:
        os.kill(os.getpid(), signal.SIGKILL)
    return _draw_from_seed(task)


def _seeded_tasks(count, seed=0):
    return list(enumerate(np.random.SeedSequence(seed).spawn(count)))


class TestResolveJobs:
    def test_none_and_zero_mean_all_cores(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_env_overrides_all_cores_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs(None) == 3
        assert resolve_jobs(0) == 3
        # An explicit argument always wins over the environment.
        assert resolve_jobs(1) == 1

    def test_env_validation(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "zero")
        with pytest.raises(ConfigurationError):
            resolve_jobs(None)
        monkeypatch.setenv(JOBS_ENV, "0")
        with pytest.raises(ConfigurationError):
            resolve_jobs(None)
        monkeypatch.setenv(JOBS_ENV, "  ")
        assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_explicit_passthrough(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(-1)


class TestFanOutFailFast:
    def test_results_in_task_order(self):
        assert fan_out(_mul_ten, [3, 1, 2], jobs=2) == [30, 10, 20]

    def test_worker_exception_wrapped_with_cause(self):
        with pytest.raises(ParallelExecutionError) as info:
            fan_out(_explode_on_two, [1, 2, 3], jobs=2)
        assert "task 2 of 3" in str(info.value)
        assert "ValueError" in str(info.value)
        assert isinstance(info.value.__cause__, ValueError)

    def test_repro_errors_propagate_unwrapped(self):
        # Validation errors raised inside a worker keep their type so
        # callers can catch them exactly as in the serial path.
        with pytest.raises(ConfigurationError):
            fan_out(_raise_config_error, [1, 2], jobs=2)

    def test_in_process_path_raises_directly(self):
        with pytest.raises(ValueError):
            fan_out(_explode_on_two, [1, 2, 3], jobs=1)

    def test_shm_released_on_worker_failure(self, viking):
        sizes = _ExplodingSizes.from_mean_std(200_000.0, 100_000.0)
        with pytest.raises(ParallelExecutionError):
            simulate_rounds_parallel(viking, sizes, 4, T, 3000, seed=0,
                                     jobs=2, chunk_rounds=512,
                                     transport="shm")
        # The autouse fixture asserts no /dev/shm leak on teardown.


class TestWorkerRetries:
    # These tests SIGKILL the worker *process*, so they pin a process
    # transport: under REPRO_PARALLEL_TRANSPORT=threads the worker
    # would be a thread of this very interpreter.

    def test_resolve_env_validation(self, monkeypatch):
        monkeypatch.delenv(WORKER_RETRIES_ENV, raising=False)
        assert resolve_worker_retries() == 1
        monkeypatch.setenv(WORKER_RETRIES_ENV, "  ")
        assert resolve_worker_retries() == 1
        monkeypatch.setenv(WORKER_RETRIES_ENV, "0")
        assert resolve_worker_retries() == 0
        monkeypatch.setenv(WORKER_RETRIES_ENV, "3")
        assert resolve_worker_retries() == 3
        monkeypatch.setenv(WORKER_RETRIES_ENV, "many")
        with pytest.raises(ConfigurationError):
            resolve_worker_retries()
        monkeypatch.setenv(WORKER_RETRIES_ENV, "-1")
        with pytest.raises(ConfigurationError):
            resolve_worker_retries()

    def test_sigkilled_worker_retried_bit_identically(self, tmp_path,
                                                      monkeypatch):
        # A worker is SIGKILLed mid-fan-out (the OOM-killer scenario):
        # the broken pool is replaced, only unfinished tasks rerun, and
        # -- because every task re-seeds from its own SeedSequence --
        # the result matches the undisturbed jobs=1 run bit for bit.
        monkeypatch.delenv(WORKER_RETRIES_ENV, raising=False)
        monkeypatch.setenv(_KILL_SENTINEL_ENV,
                           str(tmp_path / "killed-once"))
        expected = fan_out(_draw_from_seed, _seeded_tasks(6), jobs=1)
        survived = fan_out(_draw_or_die_once, _seeded_tasks(6), jobs=2,
                           transport="shm")
        assert survived == expected
        assert os.path.exists(os.environ[_KILL_SENTINEL_ENV])

    def test_budget_exhaustion_surfaces(self, monkeypatch):
        monkeypatch.delenv(_KILL_SENTINEL_ENV, raising=False)
        monkeypatch.setenv(WORKER_RETRIES_ENV, "1")
        with pytest.raises(ParallelExecutionError) as info:
            fan_out(_die_always, _seeded_tasks(6), jobs=2,
                    transport="shm")
        assert "retry budget exhausted" in str(info.value)
        assert WORKER_RETRIES_ENV in str(info.value)

    def test_zero_retries_restores_fail_fast(self, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv(WORKER_RETRIES_ENV, "0")
        monkeypatch.setenv(_KILL_SENTINEL_ENV,
                           str(tmp_path / "killed-once"))
        with pytest.raises(ParallelExecutionError):
            fan_out(_draw_or_die_once, _seeded_tasks(6), jobs=2,
                    transport="shm")


class TestJobsInvariance:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_p_late_bit_identical(self, viking, paper_sizes, jobs):
        base = estimate_p_late_parallel(viking, paper_sizes, N, T,
                                        rounds=ROUNDS, seed=11, jobs=1)
        other = estimate_p_late_parallel(viking, paper_sizes, N, T,
                                         rounds=ROUNDS, seed=11,
                                         jobs=jobs)
        assert base == other

    @pytest.mark.parametrize("jobs", [2, 3])
    def test_round_batch_bit_identical(self, viking, paper_sizes, jobs):
        a = simulate_rounds_parallel(viking, paper_sizes, 8, T, 3000,
                                     seed=5, jobs=1, chunk_rounds=512)
        b = simulate_rounds_parallel(viking, paper_sizes, 8, T, 3000,
                                     seed=5, jobs=jobs, chunk_rounds=512)
        assert np.array_equal(a.service_times, b.service_times)
        assert np.array_equal(a.glitches, b.glitches)
        assert np.array_equal(a.seek_times, b.seek_times)
        assert np.array_equal(a.first_seek_times, b.first_seek_times)

    def test_p_error_bit_identical(self, viking, paper_sizes):
        kw = dict(runs=8, seed=3)
        base = estimate_p_error_parallel(viking, paper_sizes, 30, T,
                                         120, 2, **kw, jobs=1)
        par = estimate_p_error_parallel(viking, paper_sizes, 30, T,
                                        120, 2, **kw, jobs=2)
        assert base == par

    def test_different_seeds_differ(self, viking, paper_sizes):
        a = simulate_rounds_parallel(viking, paper_sizes, 8, T, 1024,
                                     seed=1, jobs=1, chunk_rounds=256)
        b = simulate_rounds_parallel(viking, paper_sizes, 8, T, 1024,
                                     seed=2, jobs=1, chunk_rounds=256)
        assert not np.array_equal(a.service_times, b.service_times)


class TestGlitchFanOutMatchesSerial:
    def test_bit_identical_to_serial_function(self, viking,
                                              paper_sizes):
        serial = sim.simulate_stream_glitches(viking, paper_sizes, 12,
                                              T, 40, 6, seed=9)
        par = simulate_stream_glitches_parallel(viking, paper_sizes, 12,
                                                T, 40, 6, seed=9,
                                                jobs=2)
        assert np.array_equal(serial, par)

    def test_simulation_module_delegates(self, viking, paper_sizes):
        serial = sim.simulate_stream_glitches(viking, paper_sizes, 12,
                                              T, 40, 6, seed=9)
        via_jobs = sim.simulate_stream_glitches(viking, paper_sizes, 12,
                                                T, 40, 6, seed=9,
                                                jobs=2)
        assert np.array_equal(serial, via_jobs)

    def test_estimate_p_error_delegates(self, viking, paper_sizes):
        serial = sim.estimate_p_error(viking, paper_sizes, 30, T, 120,
                                      2, runs=6, seed=4)
        par = sim.estimate_p_error(viking, paper_sizes, 30, T, 120, 2,
                                   runs=6, seed=4, jobs=2)
        assert serial == par


class TestChunking:
    def test_shapes_and_chunk_concatenation(self, viking, paper_sizes):
        rounds = 2 * DEFAULT_CHUNK_ROUNDS + 17  # ragged tail chunk
        batch = simulate_rounds_parallel(viking, paper_sizes, 4, T,
                                         rounds, seed=0, jobs=2)
        assert batch.rounds == rounds
        assert batch.glitches.shape == (rounds, 4)

    def test_jobs_none_legacy_path_unchanged(self, viking,
                                             paper_sizes):
        # estimate_p_late without jobs must keep the historical
        # single-stream RNG layout: one Generator consumed sequentially.
        legacy = sim.estimate_p_late(viking, paper_sizes, 8, T,
                                     rounds=1000, seed=7)
        rng = np.random.default_rng(7)
        batch = sim.simulate_rounds(viking, paper_sizes, 8, T, 1000,
                                    rng)
        assert legacy.late_rounds == int(
            np.sum(batch.service_times > T))

    def test_rejects_bad_rounds_and_chunks(self, viking, paper_sizes):
        with pytest.raises(ConfigurationError):
            simulate_rounds_parallel(viking, paper_sizes, 4, T, 0,
                                     jobs=1)
        with pytest.raises(ConfigurationError):
            simulate_rounds_parallel(viking, paper_sizes, 4, T, 100,
                                     jobs=1, chunk_rounds=0)
        with pytest.raises(ConfigurationError):
            simulate_stream_glitches_parallel(viking, paper_sizes, 4,
                                              T, 10, 0, jobs=1)


class TestTransports:
    def test_rejects_unknown_transport(self, viking, paper_sizes):
        with pytest.raises(ConfigurationError):
            simulate_rounds_parallel(viking, paper_sizes, 4, T, 1000,
                                     jobs=1, transport="carrier-pigeon")

    @pytest.mark.parametrize("jobs", [2, 3])
    def test_shm_bit_identical_to_pickle(self, viking, paper_sizes,
                                         jobs):
        kw = dict(seed=17, chunk_rounds=512)
        shm = simulate_rounds_parallel(viking, paper_sizes, 8, T, 3000,
                                       jobs=jobs, transport="shm", **kw)
        pickled = simulate_rounds_parallel(viking, paper_sizes, 8, T,
                                           3000, jobs=jobs,
                                           transport="pickle", **kw)
        assert np.array_equal(shm.service_times, pickled.service_times)
        assert np.array_equal(shm.seek_times, pickled.seek_times)
        assert np.array_equal(shm.first_seek_times,
                              pickled.first_seek_times)
        assert np.array_equal(shm.glitches, pickled.glitches)

    def test_glitch_shm_matches_serial(self, viking, paper_sizes):
        serial = sim.simulate_stream_glitches(viking, paper_sizes, 12,
                                              T, 40, 6, seed=9)
        shm = simulate_stream_glitches_parallel(viking, paper_sizes, 12,
                                                T, 40, 6, seed=9,
                                                jobs=2, transport="shm")
        assert np.array_equal(serial, shm)

    def test_p_late_transport_invariant(self, viking, paper_sizes):
        kw = dict(rounds=3000, seed=23, chunk_rounds=512, jobs=2)
        assert (estimate_p_late_parallel(viking, paper_sizes, 8, T,
                                         transport="shm", **kw)
                == estimate_p_late_parallel(viking, paper_sizes, 8, T,
                                            transport="pickle", **kw))

    def test_result_arrays_are_writable_copies(self, viking,
                                               paper_sizes):
        # Callers get ordinary heap arrays, not views into (unlinked)
        # shared memory.
        batch = simulate_rounds_parallel(viking, paper_sizes, 4, T,
                                         2000, seed=1, jobs=2,
                                         chunk_rounds=512,
                                         transport="shm")
        batch.service_times[0] = -1.0  # must not raise
        assert batch.service_times.flags.owndata


class TestSweeps:
    def test_sweep_p_late_matches_per_point_estimates(self, viking,
                                                      paper_sizes):
        ns = [6, 8, 10]
        seeds = [1000 + n for n in ns]
        swept = sweep_p_late_parallel(viking, paper_sizes, ns, T,
                                      rounds=2000, seeds=seeds, jobs=2,
                                      chunk_rounds=512)
        for n, seed, est in zip(ns, seeds, swept):
            standalone = estimate_p_late_parallel(
                viking, paper_sizes, n, T, rounds=2000, seed=seed,
                jobs=1, chunk_rounds=512)
            assert est == standalone

    def test_sweep_p_late_jobs_invariant(self, viking, paper_sizes):
        kw = dict(rounds=2000, seed=4, chunk_rounds=512)
        assert (sweep_p_late_parallel(viking, paper_sizes, [6, 9], T,
                                      jobs=1, **kw)
                == sweep_p_late_parallel(viking, paper_sizes, [6, 9], T,
                                         jobs=2, **kw))

    def test_sweep_p_error_matches_serial_estimates(self, viking,
                                                    paper_sizes):
        ns = (29, 31)
        seeds = [2000 + n for n in ns]
        swept = sweep_p_error_parallel(viking, paper_sizes, ns, T, 60,
                                       2, runs=5, seeds=seeds, jobs=2)
        for n, seed, est in zip(ns, seeds, swept):
            serial = sim.estimate_p_error(viking, paper_sizes, n, T, 60,
                                          2, runs=5, seed=seed)
            assert est == serial

    def test_sweep_validation(self, viking, paper_sizes):
        with pytest.raises(ConfigurationError):
            sweep_p_late_parallel(viking, paper_sizes, [], T, jobs=1)
        with pytest.raises(ConfigurationError):
            sweep_p_late_parallel(viking, paper_sizes, [5], T,
                                  rounds=1000, seeds=[1, 2], jobs=1)
        with pytest.raises(ConfigurationError):
            sweep_p_error_parallel(viking, paper_sizes, [5], T, 10, 20,
                                   runs=2, jobs=1)


class TestSimChunkEnv:
    def test_env_threads_through_pool_workers(self, viking, paper_sizes,
                                              monkeypatch):
        # A custom vectorisation chunk changes the RNG consumption
        # interleaving, so the contract is jobs-invariance UNDER the
        # override, not equality with the default-chunk result.
        monkeypatch.setenv(sim.SIM_CHUNK_ENV, "97")
        kw = dict(seed=31, chunk_rounds=256)
        one = simulate_rounds_parallel(viking, paper_sizes, 6, T, 1024,
                                       jobs=1, **kw)
        two = simulate_rounds_parallel(viking, paper_sizes, 6, T, 1024,
                                       jobs=2, **kw)
        assert np.array_equal(one.service_times, two.service_times)
        assert np.array_equal(one.glitches, two.glitches)

    def test_env_validation(self, viking, paper_sizes, monkeypatch):
        monkeypatch.setenv(sim.SIM_CHUNK_ENV, "lots")
        with pytest.raises(ConfigurationError):
            sim.resolve_sim_chunk()
        monkeypatch.setenv(sim.SIM_CHUNK_ENV, "0")
        with pytest.raises(ConfigurationError):
            sim.resolve_sim_chunk()
        monkeypatch.setenv(sim.SIM_CHUNK_ENV, " ")
        assert sim.resolve_sim_chunk() == sim.DEFAULT_SIM_CHUNK
        monkeypatch.delenv(sim.SIM_CHUNK_ENV)
        assert sim.resolve_sim_chunk() == sim.DEFAULT_SIM_CHUNK
