"""The operator playbook, end to end.

One integration test walking the full production workflow the library
is built for:

  ingest VBR content -> persist the catalog -> reload it -> fit a size
  law to the observed fragments -> build the analytic model and the §5
  admission table -> run the event-driven server under arrivals at the
  admitted level -> verify the delivered quality honours the analytic
  promise -> write the reproduction report.
"""

import numpy as np
import pytest

from repro.analysis.report import build_report
from repro.core import GlitchModel, RoundServiceTimeModel, AdmissionTable
from repro.disk import quantum_viking_2_1
from repro.distributions.fit import best_fit
from repro.errors import AdmissionError
from repro.server import AdmissionController, MediaServer
from repro.workload import (
    Catalog,
    MpegGopModel,
    PoissonArrivals,
    load_catalog,
    save_catalog,
)


@pytest.mark.slow
class TestOperatorPipeline:
    def test_full_pipeline(self, tmp_path):
        rng = np.random.default_rng(2024)
        round_length = 1.0
        disks = 2

        # 1. Ingest: synthesize VBR clips, fragment at the round length.
        gop = MpegGopModel(scene_correlation=0.96, scene_sigma=0.35)
        catalog = Catalog.synthetic(rng, n_objects=8, duration_s=90.0,
                                    round_length=round_length, model=gop)

        # 2. Persist and reload (the catalog is the durable artifact).
        path = save_catalog(tmp_path / "catalog.csv", catalog)
        catalog = load_catalog(path, zipf_exponent=0.9)
        assert len(catalog) == 8

        # 3. Fit a size law to the observed fragments (§2.3's
        #    workload statistics).
        fragments = catalog.all_fragment_sizes()
        fit = best_fit(fragments)
        assert fit.ks_pvalue > 1e-6  # a plausible law, not nonsense

        # 4. Analytic model + admission table on the fitted law.
        spec = quantum_viking_2_1()
        model = RoundServiceTimeModel.for_disk(spec, fit.distribution)
        glitch = GlitchModel(model, round_length)
        table = AdmissionTable(glitch, m=90, g=1)
        controller = AdmissionController.from_table(table, epsilon=0.05,
                                                    disks=disks)
        # ~460 KB/s GoP streams: roughly half the paper's 200 KB/s
        # stream density.
        assert 10 <= controller.n_max_per_disk <= 30

        # 5. Serve a workload of Poisson arrivals at ~80 % of capacity.
        server = MediaServer([spec] * disks, round_length,
                             admission=controller, seed=7)
        for obj in catalog.objects:
            server.store_object(obj.name, obj.fragment_sizes)
        arrivals = PoissonArrivals(
            rate=0.8 * controller.capacity / 90.0)
        rejected = 0
        for r in range(240):
            for _ in range(arrivals.draw(rng, r)):
                try:
                    server.open_stream(catalog.pick(rng).name)
                except AdmissionError:
                    rejected += 1
            server.run_rounds(1)
        report = server.report

        # 6. The promise: per-round glitch bound at the admitted level.
        bound = glitch.b_glitch(controller.n_max_per_disk)
        assert report.requests > 3000
        assert report.glitch_rate <= bound
        # Startup delays bounded by the farm size (balance_start).
        delays = server.startup_delays()
        assert delays and max(delays) < disks
        # Multicast never *increased* the physical load.
        assert report.physical_requests <= report.requests

        # 7. The reproduction report builds and mentions this machinery.
        text = build_report(results_base=tmp_path)  # no artifacts: OK
        assert "Reproduction report" in text
