"""Closed-loop drift scenarios (transport-free, deterministic probe).

The acceptance triangle for the adaptive controller:

a. a *static* daemon under slow-disk creep observes a stream error
   rate above the admitted tolerance ``epsilon`` -- the paper's proof
   no longer describes the machine;
b. the *adaptive* daemon under the same drift retunes (>= 1 decision)
   and converges to an operating point whose observed ``p_error`` is
   back within ``epsilon``;
c. on a steady workload the controller stays quiescent: zero retunes,
   healthy limit untouched.

Both daemons share one probe seed, so the drift every test sees is the
same pure function of (seed, tick sequence).
"""

import pytest

from repro.serve import ServeConfig, ServeDaemon

EPSILON = 0.01
DRIFT = 1.25
SEED = 7


def make_daemon(**overrides):
    overrides.setdefault("disks", 2)
    overrides.setdefault("probe_seed", SEED)
    return ServeDaemon(ServeConfig(**overrides))


def fill_capacity(daemon):
    while daemon.controller.would_admit():
        daemon.admit()


def tick(daemon, rounds):
    decisions = []
    for _ in range(rounds):
        result = daemon.tick_round()
        if result.get("decision"):
            decisions.append(result["decision"])
    return decisions


class TestStaticViolates:
    def test_static_config_breaks_epsilon_under_creep(self):
        daemon = make_daemon(adaptive=False)
        fill_capacity(daemon)
        tick(daemon, 20)  # healthy baseline rounds
        daemon.fault("slow_disk", 0, factor=DRIFT)
        daemon.fault("slow_disk", 1, factor=DRIFT)
        tick(daemon, 120)
        window = daemon.control_state()["window"]
        # Sweeps overrun far beyond the stamped bound...
        assert window["observed_p_late"] > 10 * window["bound"]
        # ...and the implied stream error rate blows through epsilon.
        assert window["observed_p_error"] > EPSILON
        # Static daemon: the limit never moved.
        assert daemon.controller.n_max_per_disk == 28
        assert daemon.registry.snapshot()[
            "serve_retunes_total"]["value"] == 0


class TestAdaptiveHolds:
    def test_adaptive_retunes_and_restores_epsilon(self):
        daemon = make_daemon(adaptive=True)
        fill_capacity(daemon)
        tick(daemon, 40)  # calibrate on the healthy phase
        ctl = daemon.control_state()["controller"]
        assert ctl["state"] == "steady" and ctl["calibration"] is not None

        daemon.fault("slow_disk", 0, factor=DRIFT)
        daemon.fault("slow_disk", 1, factor=DRIFT)
        decisions = tick(daemon, 320)

        assert len(decisions) >= 1
        kinds = {d["kind"] for d in decisions}
        assert "tighten" in kinds or "watchdog" in kinds
        state = daemon.control_state()
        # Converged: tightened below the healthy limit, above (or at)
        # the blind failure-proof floor, and quiescent again.
        assert state["effective_n_max"] < 28
        assert state["effective_n_max"] >= 13
        assert state["controller"]["state"] in ("steady", "cooldown")
        # The drift-aware point holds the tolerance the static one lost.
        window = state["window"]
        assert window["rounds"] >= 32  # settled, not mid-retune
        assert window["observed_p_error"] <= EPSILON
        # Every applied decision was verified against epsilon.
        for decision in decisions:
            if decision["predicted_p_error"] is not None:
                assert decision["predicted_p_error"] <= EPSILON

    def test_pause_mode_rejoins_capacity_after_relax(self):
        daemon = make_daemon(adaptive=True)
        fill_capacity(daemon)
        tick(daemon, 40)
        daemon.fault("slow_disk", 0, factor=DRIFT)
        daemon.fault("slow_disk", 1, factor=DRIFT)
        decisions = tick(daemon, 320)
        if not any(d["kind"] == "relax" for d in decisions):
            pytest.skip("trajectory had no relax at this seed")
        state = daemon.state()
        capacity = daemon.controller.capacity
        # Paused streams rejoined up to the relaxed capacity (watchdog
        # victims are dropped, so active <= capacity always holds).
        assert daemon.controller.active <= capacity
        assert state["paused_streams"] == sorted(state["paused_streams"])

    def test_metrics_expose_the_loop(self):
        daemon = make_daemon(adaptive=True)
        fill_capacity(daemon)
        tick(daemon, 40)
        daemon.fault("slow_disk", 0, factor=DRIFT)
        daemon.fault("slow_disk", 1, factor=DRIFT)
        tick(daemon, 320)
        snap = daemon.registry.snapshot()
        assert snap["serve_adaptive"]["value"] == 1
        assert snap["serve_rounds_total"]["value"] == 360
        assert snap["serve_retunes_total"]["value"] >= 1
        assert snap["serve_control_n_max"]["value"] < 28
        assert snap["serve_late_disk_rounds_total"]["value"] >= 1


class TestQuiescence:
    def test_steady_workload_never_retunes(self):
        daemon = make_daemon(adaptive=True)
        fill_capacity(daemon)
        decisions = tick(daemon, 150)
        assert decisions == []
        state = daemon.control_state()
        assert state["control_n_max"] is None
        assert state["effective_n_max"] == 28
        assert state["controller"]["state"] == "steady"
        assert state["controller"]["retunes"] == 0
        assert daemon.controller.active == 56

    def test_non_adaptive_daemon_measures_but_never_acts(self):
        daemon = make_daemon(adaptive=False)
        fill_capacity(daemon)
        daemon.fault("slow_disk", 0, factor=2.0)
        daemon.fault("slow_disk", 1, factor=2.0)
        decisions = tick(daemon, 60)
        assert decisions == []
        assert daemon.controller.n_max_per_disk == 28
        # The measurement plane still runs: window fills regardless.
        assert daemon.control_state()["window"]["rounds"] == 48
