"""End-to-end span round-trip over a live daemon.

The acceptance test for the tracing tentpole: a client and daemon
sharing one JSONL sink must yield a file from which the *complete*
admit chain -- client attempt, HTTP handler, admission test, ledger
mutation -- is rebuilt with the client-originated trace-id on every
span.  Also covers the /slo endpoint over real HTTP and the
retried-request counter split (a retry must never double-count the
primary rates).
"""

import json
import threading
import urllib.request

import pytest

from repro.obs import Tracer, read_trace, validate_trace
from repro.obs.spans import (
    SpanContext,
    TRACE_HEADER,
    build_span_trees,
    critical_path,
    format_trace_header,
)
from repro.serve import ServeClient, ServeConfig, ServeDaemon, ServeHandle


@pytest.fixture(autouse=True)
def no_thread_leaks():
    before = set(threading.enumerate())
    yield
    leaked = [t for t in threading.enumerate()
              if t not in before and t.is_alive()]
    assert not leaked, f"leaked threads: {[t.name for t in leaked]}"


@pytest.fixture
def traced(tmp_path):
    """Daemon + client sharing one tracer with a JSONL sink."""
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(sink=path)
    tracer.start_run(seed=None)
    daemon = ServeDaemon(ServeConfig(disks=2, adaptive=True),
                         tracer=tracer)
    handle = ServeHandle(daemon)
    handle.start()
    client = ServeClient(handle.url, tracer=tracer)
    try:
        yield handle, client, tracer, path
    finally:
        handle.stop()
        if tracer.enabled:
            tracer.end_run()
            tracer.close()


def span_index(records):
    """{span_id: record} for every span_start in the trace."""
    return {r["span"]: r for r in records if r["kind"] == "span_start"}


class TestAdmitChainRoundTrip:
    def test_full_admit_tree_rebuilt_from_one_jsonl(self, traced):
        handle, client, tracer, path = traced
        ticket = client.admit()
        assert ticket["admitted"]
        handle.daemon.tick_round()
        client.release(ticket["stream"])
        handle.stop()
        tracer.end_run()
        tracer.close()

        records = read_trace(path)
        assert validate_trace(records) == []
        roots = build_span_trees(records)
        [admit_root] = [r for r in roots if r.name == "client.admit"]
        # The exact admit chain: client attempt -> HTTP handler ->
        # {admission test, ledger append}.
        [attempt] = admit_root.children
        assert attempt.name == "client.request"
        assert attempt.attrs["attempt"] == 1
        [handler] = attempt.children
        assert handler.name == "http.admit"
        assert handler.attrs["status"] == 200
        leaves = sorted(c.name for c in handler.children)
        assert leaves == ["admission.admit", "ledger.append"]
        [ledger] = [c for c in handler.children
                    if c.name == "ledger.append"]
        assert ledger.attrs["stream"] == ticket["stream"]
        assert ledger.attrs["active"] == 1
        # One client-originated trace-id spans the whole tree, every
        # span complete with a measured duration.
        for node in admit_root.walk():
            assert node.trace_id == admit_root.trace_id
            assert node.complete and node.seconds >= 0.0
        chain = [n.name for n in critical_path(admit_root)]
        assert chain[0] == "client.admit"
        assert "http.admit" in chain

    def test_release_and_control_cycle_traced_too(self, traced):
        handle, client, tracer, path = traced
        ticket = client.admit()
        handle.daemon.tick_round()
        client.release(ticket["stream"])
        handle.stop()
        tracer.end_run()
        tracer.close()
        roots = build_span_trees(read_trace(path))
        names = {r.name for r in roots}
        assert "client.release" in names
        [cycle] = [r for r in roots if r.name == "control.cycle"]
        child_names = {c.name for c in cycle.children}
        assert "control.observe" in child_names
        assert "control.plan" in child_names
        assert cycle.attrs["slo"] in ("ok", "warn", "page")
        # Per-round SLO evidence rides the same file.
        observed = [r for r in read_trace(path)
                    if r["kind"] == "round_observe"]
        assert len(observed) == 1
        assert observed[0]["requests"] > 0

    def test_trace_ids_are_client_originated(self, traced):
        handle, client, tracer, path = traced
        client.admit()
        handle.stop()
        tracer.end_run()
        tracer.close()
        records = read_trace(path)
        starts = span_index(records)
        client_roots = [r for r in starts.values()
                        if r["name"] == "client.admit"]
        [root] = client_roots
        daemon_side = [r for r in starts.values()
                       if r["name"].startswith(("http.", "admission.",
                                                "ledger."))]
        assert daemon_side
        for record in daemon_side:
            assert record["trace"] == root["trace"]


class TestSLOOverHTTP:
    def test_slo_endpoint_serves_tracker_summary(self, traced):
        handle, client, _tracer, _path = traced
        client.admit()
        handle.daemon.tick_round()
        report = client.slo()
        assert report["state"] in ("ok", "warn", "page")
        assert report["rounds"] == 1
        assert report["budget_per_slot"] > 0.0
        assert report["fast_window_rounds"] == 32
        # /state carries the same summary for dashboards.
        assert client.control()["slo"]["rounds"] == 1


class TestRetriedRequestCounters:
    def post(self, url, path, body, attempt, context=None):
        context = context or SpanContext("trace-x", "span-y")
        request = urllib.request.Request(
            url + path, data=json.dumps(body).encode("utf-8"),
            method="POST",
            headers={"Content-Type": "application/json",
                     TRACE_HEADER: format_trace_header(
                         context, attempt=attempt)})
        try:
            with urllib.request.urlopen(request, timeout=5) as reply:
                return reply.status, json.loads(reply.read())
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read())

    def test_retried_release_counts_exactly_once(self, traced):
        handle, client, _tracer, _path = traced
        ticket = client.admit()
        stream = ticket["stream"]
        before = handle.daemon.registry.snapshot()
        # First attempt lands; the client never hears back and
        # retries the same release with attempt=2.
        status, _ = self.post(handle.url, "/release",
                              {"stream": stream}, attempt=1)
        assert status == 200
        status, _ = self.post(handle.url, "/release",
                              {"stream": stream}, attempt=2)
        assert status == 400  # stream already gone; not a double free
        snap = handle.daemon.registry.snapshot()

        def count(name):
            return (snap[name]["value"]
                    - before.get(name, {}).get("value", 0.0))

        assert count('serve_requests_total{op="release"}') == 1
        assert count('serve_requests_retried_total{op="release"}') == 1
        assert count("serve_released_total") == 1
        assert handle.daemon.controller.active == 0

    def test_retried_admit_lands_in_retry_counter(self, traced):
        handle, _client, _tracer, _path = traced
        status, first = self.post(handle.url, "/admit", {}, attempt=1)
        assert status == 200 and "stream" in first
        status, second = self.post(handle.url, "/admit", {}, attempt=3)
        assert status == 200
        snap = handle.daemon.registry.snapshot()
        assert snap['serve_requests_total{op="admit"}']["value"] == 1
        assert snap[
            'serve_requests_retried_total{op="admit"}']["value"] == 1
