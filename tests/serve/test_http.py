"""HTTP layer tests: routes, concurrency over real sockets, fault
replay, metrics exposition and clean shutdown.

Every test binds an ephemeral loopback port (``port=0``) and must
leave no thread behind -- the module-level fixture asserts the thread
census is unchanged after each test, which is the contract the CI
smoke leg (and ``-W error::ResourceWarning``) relies on.
"""

import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigurationError
from repro.serve import (FaultFeed, ServeClient, ServeConfig,
                         ServeDaemon, ServeHandle)
from repro.server.faults import FaultSchedule, disk_fail, disk_recover


@pytest.fixture(autouse=True)
def no_thread_leaks():
    """Every test must return the process to its starting thread set."""
    before = set(threading.enumerate())
    yield
    leaked = [t for t in threading.enumerate()
              if t not in before and t.is_alive()]
    assert not leaked, f"leaked threads: {[t.name for t in leaked]}"


@pytest.fixture
def served():
    """A running daemon on an ephemeral port, stopped afterwards."""
    daemon = ServeDaemon(ServeConfig(disks=2))
    handle = ServeHandle(daemon)
    handle.start()
    try:
        yield handle, ServeClient(handle.url)
    finally:
        handle.stop()


class TestRoutes:
    def test_admit_release_roundtrip(self, served):
        _handle, client = served
        first = client.admit()
        assert first["admitted"] and first["stream"] == 0
        assert client.release(first["stream"])["active"] == 0

    def test_reject_is_409_not_an_error(self, served):
        handle, client = served
        capacity = handle.daemon.controller.capacity
        assert client.admit_until_reject() == capacity
        rejected = client.admit()
        assert rejected["admitted"] is False
        assert "denied" in rejected["error"]

    def test_healthz_and_state(self, served):
        _handle, client = served
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["capacity"] == 56
        state = client.state()
        assert state["controller"]["disks"] == 2
        assert state["policy"]["mode"] == "pause"

    def test_unknown_routes_404(self, served):
        _handle, client = served
        status, data = client._json("GET", "/nope")
        assert status == 404 and "no route" in data["error"]
        status, _data = client._json("POST", "/nope")
        assert status == 404

    def test_malformed_bodies_400(self, served):
        handle, _client = served
        request = urllib.request.Request(
            handle.url + "/fault", data=b"not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=5.0)
        assert err.value.code == 400
        err.value.close()
        status, data = ServeClient(handle.url)._json(
            "POST", "/fault", {})
        assert status == 400 and "kind" in data["error"]

    def test_fault_over_http_sheds_live(self, served):
        handle, client = served
        client.admit_until_reject()
        result = client.fault("disk_fail", 0)
        assert result["shed"] == 30 and result["active"] == 26
        assert client.healthz()["status"] == "degraded"
        assert client.fault("disk_recover", 0)["resumed"] == 30
        assert client.healthz()["status"] == "ok"
        assert handle.daemon.controller.active == 56

    def test_metrics_exposition_scrapes(self, served):
        _handle, client = served
        client.admit()
        text = client.metrics()
        lines = text.splitlines()
        assert "# TYPE serve_admitted_total counter" in lines
        assert "# HELP serve_admitted_total Streams admitted by the " \
            "daemon" in lines
        assert "serve_admitted_total 1" in lines
        assert any(line.startswith("serve_admit_seconds_bucket")
                   for line in lines)
        assert 'serve_requests_total{op="admit"} 1' in lines

    def test_metrics_content_type(self, served):
        handle, _client = served
        with urllib.request.urlopen(handle.url + "/metrics",
                                    timeout=5.0) as resp:
            assert resp.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4")


class TestConcurrentClients:
    def test_racing_http_admits_never_overshoot(self, served):
        """20 threads hammer POST /admit over real sockets; the locked
        controller admits exactly ``capacity`` of them."""
        handle, _client = served
        capacity = handle.daemon.controller.capacity
        threads = 20
        per_thread = 4
        barrier = threading.Barrier(threads)
        outcomes = []

        def worker():
            client = ServeClient(handle.url)
            barrier.wait()
            for _ in range(per_thread):
                outcomes.append(client.admit()["admitted"])

        pool = [threading.Thread(target=worker)
                for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert sum(outcomes) == capacity
        assert outcomes.count(False) == threads * per_thread - capacity
        assert handle.daemon.controller.active == capacity


class TestFaultFeed:
    def test_schedule_replay_applies_in_order(self, served):
        handle, client = served
        client.admit_until_reject()
        schedule = FaultSchedule([disk_fail(0.02, 0),
                                  disk_recover(0.06, 0)])
        feed = FaultFeed(handle.daemon, schedule, time_scale=1.0)
        feed.start()
        feed.join(timeout=5.0)
        feed.stop()
        assert feed.applied == 2
        assert not handle.daemon.controller.degraded
        assert handle.daemon.controller.active == 56
        snapshot = handle.daemon.registry.snapshot()
        assert snapshot["serve_shed_total"]["value"] == 30
        assert snapshot["serve_resumed_total"]["value"] == 30

    def test_stop_cancels_pending_events(self, served):
        handle, _client = served
        schedule = FaultSchedule([disk_fail(60.0, 0)])
        feed = FaultFeed(handle.daemon, schedule).start()
        feed.stop()
        assert feed.applied == 0
        assert not handle.daemon.controller.degraded

    def test_time_scale_validation(self, served):
        handle, _client = served
        with pytest.raises(ConfigurationError):
            FaultFeed(handle.daemon, FaultSchedule([disk_fail(1.0, 0)]),
                      time_scale=0.0)


class TestLifecycle:
    def test_context_manager_cleans_up(self):
        daemon = ServeDaemon(ServeConfig(disks=2))
        with ServeHandle(daemon) as handle:
            assert ServeClient(handle.url).healthz()["status"] == "ok"
        # Port is released: a fresh handle can bind and serve again.
        with ServeHandle(daemon) as handle2:
            assert ServeClient(handle2.url).healthz()["status"] == "ok"

    def test_stop_is_idempotent(self):
        handle = ServeHandle(ServeDaemon(ServeConfig(disks=2)))
        handle.start()
        handle.stop()
        handle.stop()

    def test_double_start_rejected(self):
        handle = ServeHandle(ServeDaemon(ServeConfig(disks=2)))
        handle.start()
        try:
            with pytest.raises(ConfigurationError):
                handle.start()
        finally:
            handle.stop()

    def test_client_url_validation(self):
        with pytest.raises(ConfigurationError):
            ServeClient("ftp://nope")


class TestControlPlaneRoutes:
    def test_control_view_over_http(self, served):
        _handle, client = served
        control = client.control()
        assert control["adaptive"] is False
        assert control["healthy_n_max"] == 28
        assert control["window"]["rounds"] == 0
        assert control["snapshot"]["path"] is None

    def test_snapshot_route_requires_a_path(self, served):
        _handle, client = served
        with pytest.raises(ConfigurationError,
                           match="no --snapshot-path"):
            client.snapshot()

    def test_snapshot_route_persists(self, tmp_path):
        path = tmp_path / "snap.json"
        daemon = ServeDaemon(ServeConfig(disks=2,
                                         snapshot_path=str(path)))
        with ServeHandle(daemon) as handle:
            client = ServeClient(handle.url)
            client.admit()
            written = client.snapshot()["written"]
        assert written == str(path)
        assert path.exists()

    def test_slow_disk_factor_over_http(self, served):
        _handle, client = served
        result = client.fault("slow_disk", 1, factor=1.4)
        assert result["applied"] is True and result["factor"] == 1.4
        assert client.state()["slow_disks"] == {"1": 1.4}


class TestGracefulShutdown:
    def test_attached_feed_dies_with_the_handle(self):
        """Regression: a FaultFeed sleeping towards a far-future event
        used to outlive ServeHandle.stop() -- attach() guarantees the
        feed is stopped (and joined) before the server."""
        daemon = ServeDaemon(ServeConfig(disks=2))
        handle = ServeHandle(daemon).start()
        schedule = FaultSchedule([disk_fail(3600.0, 0)])
        feed = FaultFeed(daemon, schedule).start()
        handle.attach(feed)
        handle.stop()  # must join the mid-sleep feed thread
        assert feed.applied == 0
        assert feed._thread is None
        # The no_thread_leaks fixture asserts nothing survived.

    def test_attached_ticker_dies_with_the_handle(self):
        from repro.serve import RoundTicker
        daemon = ServeDaemon(ServeConfig(disks=2))
        daemon.admit()
        handle = ServeHandle(daemon).start()
        ticker = RoundTicker(daemon, interval=0.01).start()
        handle.attach(ticker)
        deadline = time.time() + 5.0
        while ticker.ticks == 0 and time.time() < deadline:
            time.sleep(0.01)
        handle.stop()
        assert ticker.ticks >= 1
        assert daemon.state()["controller"]["active"] == 1

    def test_ticker_interval_validation(self):
        from repro.serve import RoundTicker
        daemon = ServeDaemon(ServeConfig(disks=2))
        with pytest.raises(ConfigurationError):
            RoundTicker(daemon, interval=0.0)
