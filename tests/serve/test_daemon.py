"""ServeDaemon unit tests (transport-free).

The daemon is the §5 scheme gone live: a locked admission controller
fed from a precomputed lookup table, with the shedding policy applied
at fault-event time.  These tests drive the service core directly --
the HTTP layer has its own suite.
"""

import threading

import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.serve import ServeConfig, ServeDaemon


@pytest.fixture(scope="module")
def daemon_factory():
    """Build daemons with a small-footprint config (shared module
    scope keeps table builds to a handful thanks to the bound cache)."""
    def build(**overrides):
        return ServeDaemon(ServeConfig(**overrides))
    return build


class TestAdmitRelease:
    def test_admits_to_paper_capacity_then_409s(self, daemon_factory):
        daemon = daemon_factory(disks=2)
        # Paper Table: N_max^perror = 28 per disk at epsilon = 0.01.
        assert daemon.controller.n_max_per_disk == 28
        tickets = [daemon.admit()["stream"] for _ in range(56)]
        assert tickets == list(range(56))
        with pytest.raises(AdmissionError):
            daemon.admit()
        snapshot = daemon.registry.snapshot()
        assert snapshot["serve_admitted_total"]["value"] == 56
        assert snapshot["serve_rejected_total"]["value"] == 1
        assert snapshot["serve_active_streams"]["value"] == 56

    def test_release_by_ticket_and_oldest(self, daemon_factory):
        daemon = daemon_factory(disks=1)
        first = daemon.admit()["stream"]
        second = daemon.admit()["stream"]
        assert daemon.release(second)["stream"] == second
        assert daemon.release()["stream"] == first
        assert daemon.controller.active == 0
        with pytest.raises(ConfigurationError):
            daemon.release()

    def test_release_unknown_ticket_rejected(self, daemon_factory):
        daemon = daemon_factory(disks=1)
        daemon.admit()
        with pytest.raises(ConfigurationError):
            daemon.release(999)
        assert daemon.controller.active == 1

    def test_admit_latency_histogram_fills(self, daemon_factory):
        daemon = daemon_factory(disks=1)
        daemon.admit()
        hist = daemon.registry.histogram("serve_admit_seconds")
        assert hist.count == 1
        assert hist.sum > 0.0


class TestFaultHandling:
    def test_fail_sheds_newest_to_target(self, daemon_factory):
        daemon = daemon_factory(disks=2)
        for _ in range(56):
            daemon.admit()
        result = daemon.fault("disk_fail", 0)
        # Target = disks * degraded_n_max = 2 * 13 = 26.
        assert result["shed"] == 30
        assert result["active"] == 26
        assert daemon.controller.degraded
        state = daemon.state()
        # Newest (highest tickets) were shed, oldest kept serving.
        assert state["paused_streams"] == list(range(26, 56))
        assert state["failed_disks"] == [0]

    def test_recover_resumes_oldest_first(self, daemon_factory):
        daemon = daemon_factory(disks=2)
        for _ in range(56):
            daemon.admit()
        daemon.fault("disk_fail", 0)
        result = daemon.fault("disk_recover", 0)
        assert result["resumed"] == 30
        assert result["active"] == 56
        assert not daemon.controller.degraded
        assert daemon.state()["paused_streams"] == []

    def test_drop_mode_never_resumes(self, daemon_factory):
        daemon = daemon_factory(disks=2, shed_mode="drop")
        for _ in range(56):
            daemon.admit()
        fail = daemon.fault("disk_fail", 0)
        assert fail["shed"] == 30
        recover = daemon.fault("disk_recover", 0)
        assert recover["resumed"] == 0
        assert recover["active"] == 26
        snapshot = daemon.registry.snapshot()
        assert snapshot["serve_dropped_total"]["value"] == 30
        # The freed capacity is available to *new* arrivals.
        assert daemon.admit()["active"] == 27

    def test_degraded_admission_uses_degraded_limit(self,
                                                    daemon_factory):
        daemon = daemon_factory(disks=2)
        daemon.fault("disk_fail", 1)
        for _ in range(26):
            daemon.admit()
        with pytest.raises(AdmissionError):
            daemon.admit()
        daemon.fault("disk_recover", 1)
        daemon.admit()  # healthy limit back in force

    def test_stays_degraded_until_all_disks_back(self, daemon_factory):
        daemon = daemon_factory(disks=4)
        daemon.fault("disk_fail", 0)
        daemon.fault("disk_fail", 2)
        partial = daemon.fault("disk_recover", 0)
        assert daemon.controller.degraded
        assert partial["resumed"] == 0
        daemon.fault("disk_recover", 2)
        assert not daemon.controller.degraded

    def test_slow_disk_records_drift_factor(self, daemon_factory):
        daemon = daemon_factory(disks=2)
        result = daemon.fault("slow_disk", 0, factor=1.3)
        assert result["applied"] is True
        assert result["factor"] == 1.3
        assert daemon.state()["slow_disks"] == {"0": 1.3}
        # factor=1 clears the drift entry.
        daemon.fault("slow_disk", 0, factor=1.0)
        assert daemon.state()["slow_disks"] == {}
        # Storms still have no admission-side effect.
        assert daemon.fault("recalibration_storm")["applied"] is False
        with pytest.raises(ConfigurationError):
            daemon.fault("meteor_strike", 0)
        with pytest.raises(ConfigurationError):
            daemon.fault("disk_fail", 9)
        with pytest.raises(ConfigurationError):
            daemon.fault("slow_disk", 0, factor=-2.0)

    def test_fault_counters_by_kind(self, daemon_factory):
        daemon = daemon_factory(disks=2)
        daemon.fault("disk_fail", 0)
        daemon.fault("disk_recover", 0)
        daemon.fault("slow_disk", 0)
        snapshot = daemon.registry.snapshot()
        assert snapshot['serve_faults_total{kind="disk_fail"}'][
            "value"] == 1
        assert snapshot['serve_faults_total{kind="slow_disk"}'][
            "value"] == 1


class TestConcurrency:
    def test_hammer_admits_exactly_capacity(self, daemon_factory):
        """The locked controller means the daemon can never jointly
        overshoot: N threads racing on admit() admit exactly
        ``capacity`` streams, no matter the interleaving."""
        daemon = daemon_factory(disks=2)
        capacity = daemon.controller.capacity
        threads = 12
        per_thread = 10
        barrier = threading.Barrier(threads)
        admitted = []

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                try:
                    admitted.append(daemon.admit()["stream"])
                except AdmissionError:
                    pass

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert len(admitted) == capacity
        assert len(set(admitted)) == capacity  # unique tickets
        assert daemon.controller.active == capacity

    def test_concurrent_faults_and_admits_stay_consistent(
            self, daemon_factory):
        daemon = daemon_factory(disks=2)
        stop = threading.Event()

        def flipper():
            while not stop.is_set():
                daemon.fault("disk_fail", 0)
                daemon.fault("disk_recover", 0)

        def churner():
            while not stop.is_set():
                try:
                    ticket = daemon.admit()["stream"]
                except AdmissionError:
                    continue
                try:
                    daemon.release(ticket)
                except ConfigurationError:
                    pass  # shed between admit and release: fine

        pool = [threading.Thread(target=flipper),
                threading.Thread(target=churner),
                threading.Thread(target=churner)]
        for thread in pool:
            thread.start()
        import time
        time.sleep(0.25)
        stop.set()
        for thread in pool:
            thread.join()
        daemon.fault("disk_recover", 0)
        snap = daemon.controller.snapshot()
        assert 0 <= snap["active"] <= snap["capacity"]
        # Ledger and counter agree after the storm.
        state = daemon.state()
        assert len(state["streams"]) == state["controller"]["active"]
        assert len(state["streams"]) == daemon.controller.active


class TestConfigAndState:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(disks=0)
        with pytest.raises(ConfigurationError):
            ServeConfig(shed_mode="panic")

    def test_state_shape(self, daemon_factory):
        daemon = daemon_factory(disks=2)
        state = daemon.state()
        assert state["policy"]["target"] == 26
        assert state["controller"]["disks"] == 2
        assert "perror" in state["table"]
        assert state["build_seconds"] >= 0.0
        assert state["uptime_seconds"] >= 0.0

    def test_startup_gauges(self, daemon_factory):
        daemon = daemon_factory(disks=2)
        snapshot = daemon.registry.snapshot()
        assert snapshot["serve_n_max_per_disk"]["value"] == 28
        assert snapshot["serve_degraded_n_max"]["value"] == 13
        assert snapshot["serve_table_build_seconds"]["value"] >= 0.0
