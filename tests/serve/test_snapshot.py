"""Crash-safe snapshot/restore: atomicity, round-trips, the reserve.

The daemon-level contract under test is the §5 guarantee surviving a
``kill -9``: a restored daemon must never re-issue a granted ticket,
never resurrect shed capacity, and refuse ledgers written under other
admission parameters.
"""

import json
import os

import pytest

from repro.control import (SNAPSHOT_VERSION, TICKET_RESERVE,
                           read_snapshot, write_snapshot)
from repro.errors import ConfigurationError
from repro.serve import ServeConfig, ServeDaemon


def make_daemon(tmp_path, **overrides):
    overrides.setdefault("disks", 2)
    overrides.setdefault("adaptive", True)
    overrides.setdefault("snapshot_path",
                         str(tmp_path / "serve.snapshot.json"))
    return ServeDaemon(ServeConfig(**overrides))


class TestFileFormat:
    def test_write_is_atomic_and_leaves_no_temp(self, tmp_path):
        path = tmp_path / "snap.json"
        written = write_snapshot(path, {"payload": 1})
        assert written == path
        document = json.loads(path.read_text())
        assert document["kind"] == "repro-serve-snapshot"
        assert document["version"] == SNAPSHOT_VERSION
        assert document["payload"] == 1
        leftovers = [p for p in os.listdir(tmp_path)
                     if p != "snap.json"]
        assert leftovers == []

    def test_read_validates_kind_version_and_json(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text("{ torn")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            read_snapshot(path)
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ConfigurationError, match="not a repro"):
            read_snapshot(path)
        write_snapshot(path, {})
        document = json.loads(path.read_text())
        document["version"] = SNAPSHOT_VERSION + 1
        path.write_text(json.dumps(document))
        with pytest.raises(ConfigurationError, match="version"):
            read_snapshot(path)
        with pytest.raises(ConfigurationError, match="cannot read"):
            read_snapshot(tmp_path / "absent.json")

    def test_fingerprint_mismatch_is_refused(self, tmp_path):
        path = tmp_path / "snap.json"
        write_snapshot(path, {"config_fingerprint": "aaaa"})
        assert read_snapshot(path, "aaaa")["config_fingerprint"] == \
            "aaaa"
        with pytest.raises(ConfigurationError, match="different"):
            read_snapshot(path, "bbbb")


class TestDaemonRoundTrip:
    def _exercise(self, daemon):
        """A representative mid-storm ledger: admits, a release, a
        failed disk (shedding), drift, and some probed rounds."""
        for _ in range(56):
            daemon.admit()
        daemon.release(3)
        daemon.fault("disk_fail", 0)
        daemon.fault("slow_disk", 1, factor=1.2)
        for _ in range(10):
            daemon.tick_round()

    def test_clean_restore_is_bit_for_bit(self, tmp_path):
        first = make_daemon(tmp_path)
        self._exercise(first)
        first.save_snapshot(clean=True)
        before = first.snapshot_payload(clean=True)

        second = make_daemon(tmp_path)
        after = second.snapshot_payload(clean=True)
        # written_at is the only legitimately differing field.
        before.pop("written_at"), after.pop("written_at")
        assert after == before
        assert second.state()["restored"] is True
        assert second.registry.snapshot()[
            "serve_snapshot_restored"]["value"] == 1
        # Ticket numbering resumes exactly where it stopped.
        with second._lock:
            assert second._next_stream == 56

    def test_unclean_restore_burns_the_ticket_reserve(self, tmp_path):
        first = make_daemon(tmp_path)
        self._exercise(first)
        first.save_snapshot(clean=False)
        granted = set(first.state()["streams"])

        second = make_daemon(tmp_path)
        assert second.registry.snapshot()[
            "serve_snapshot_restored"]["value"] == 2
        with second._lock:
            assert second._next_stream == 56 + TICKET_RESERVE
        # Zero duplicate admissions: every new ticket is beyond the
        # reserve, disjoint from anything granted before the crash.
        second.release()  # make room under the restored limits
        fresh = second.admit()["stream"]
        assert fresh >= 56 + TICKET_RESERVE
        assert fresh not in granted

    def test_restore_reimposes_shed_limits(self, tmp_path):
        first = make_daemon(tmp_path)
        self._exercise(first)
        active = first.controller.active
        first.save_snapshot(clean=True)

        second = make_daemon(tmp_path)
        assert second.controller.active == active
        assert second.controller.degraded
        assert second.state()["failed_disks"] == [0]
        assert second.state()["slow_disks"] == {"1": 1.2}
        # The degraded limit is back in force: no admission headroom
        # beyond what the pre-crash daemon had.
        assert second.controller.capacity == first.controller.capacity

    def test_restore_refuses_foreign_config(self, tmp_path):
        first = make_daemon(tmp_path)
        first.admit()
        first.save_snapshot(clean=True)
        with pytest.raises(ConfigurationError, match="different"):
            make_daemon(tmp_path, disks=4)

    def test_controller_trajectory_survives_restart(self, tmp_path):
        first = make_daemon(tmp_path, probe_seed=7)
        for _ in range(56):
            first.admit()
        for _ in range(40):
            first.tick_round()
        first.fault("slow_disk", 0, factor=1.25)
        first.fault("slow_disk", 1, factor=1.25)
        for _ in range(120):
            first.tick_round()
        assert first.registry.snapshot()[
            "serve_retunes_total"]["value"] >= 1
        first.save_snapshot(clean=True)

        second = make_daemon(tmp_path, probe_seed=7)
        ctl_before = first.control_state()["controller"]
        ctl_after = second.control_state()["controller"]
        for key in ("state", "n_max", "t_mult", "retunes",
                    "calibration", "watchdog_trips"):
            assert ctl_after[key] == ctl_before[key]
        # The restored loop keeps running from where it stopped.
        second.tick_round()
        assert second.control_state()["round_index"] == \
            first.control_state()["round_index"] + 1

    def test_faults_and_retunes_autosave(self, tmp_path):
        daemon = make_daemon(tmp_path)
        path = daemon.config.snapshot_path
        assert not os.path.exists(path)
        daemon.fault("slow_disk", 0, factor=1.5)
        assert os.path.exists(path)
        document = read_snapshot(path)
        assert document["clean"] is False
        assert document["ledger"]["slow"] == {"0": 1.5}

    def test_save_without_path_is_a_noop(self, tmp_path):
        daemon = make_daemon(tmp_path, snapshot_path=None)
        assert daemon.save_snapshot() is None
