"""ServeClient retry discipline (no sockets: urlopen is stubbed).

The contract: transport failures never escape as raw
``ConnectionError``; connect-stage failures retry with bounded
exponential backoff for every operation; mid-flight failures retry
only idempotent operations -- a mid-flight ``admit`` raises
immediately because a blind re-send could admit two streams for one
request.
"""

import io
import json
import urllib.error

import pytest

from repro.errors import ConfigurationError
from repro.obs.spans import parse_trace_header
from repro.serve import ServeClient


class FakeResponse:
    def __init__(self, payload: dict, status: int = 200):
        self.status = status
        self._body = json.dumps(payload).encode("utf-8")

    def read(self):
        return self._body

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class FlakyTransport:
    """urlopen stand-in that raises scripted errors, then answers."""

    def __init__(self, errors, payload):
        self.errors = list(errors)
        self.payload = payload
        self.calls = 0

    def __call__(self, request, timeout=None):
        self.calls += 1
        if self.errors:
            raise self.errors.pop(0)
        return FakeResponse(self.payload)


def refused():
    return urllib.error.URLError(ConnectionRefusedError(111, "refused"))


def reset_mid_flight():
    return ConnectionResetError(104, "reset by peer")


@pytest.fixture
def client():
    sleeps = []
    client = ServeClient("http://127.0.0.1:1", retries=4,
                         backoff=0.05, backoff_max=0.4,
                         sleep=sleeps.append)
    client.sleeps = sleeps
    return client


def patch_transport(monkeypatch, transport):
    monkeypatch.setattr("urllib.request.urlopen", transport)


class TestConnectStageRetry:
    def test_admit_retries_connection_refused(self, monkeypatch,
                                              client):
        """The daemon is restarting from a snapshot: refused connects
        retry even for the non-idempotent admit (nothing was sent)."""
        transport = FlakyTransport([refused(), refused()],
                                   {"stream": 0, "active": 1})
        patch_transport(monkeypatch, transport)
        result = client.admit()
        assert result["admitted"] and result["stream"] == 0
        assert transport.calls == 3
        assert client.retried == 2

    def test_backoff_grows_and_is_capped(self, monkeypatch, client):
        patch_transport(monkeypatch, FlakyTransport(
            [refused()] * 3, {"ok": True}))
        client.state()
        assert len(client.sleeps) == 3
        assert client.sleeps[0] < client.sleeps[-1]
        assert all(0 < s <= client.backoff_max for s in client.sleeps)

    def test_exhaustion_raises_configuration_error(self, monkeypatch,
                                                   client):
        patch_transport(monkeypatch, FlakyTransport(
            [refused()] * 10, {"ok": True}))
        with pytest.raises(ConfigurationError,
                           match="unreachable after 4"):
            client.healthz()
        # Never a raw ConnectionError / URLError escaping.


class TestMidFlightDiscipline:
    def test_admit_never_retries_mid_flight(self, monkeypatch, client):
        """The connection died after the request was sent: the daemon
        may have admitted.  A blind retry could double-admit."""
        transport = FlakyTransport([reset_mid_flight()],
                                   {"stream": 0})
        patch_transport(monkeypatch, transport)
        with pytest.raises(ConfigurationError,
                           match="non-idempotent"):
            client.admit()
        assert transport.calls == 1
        assert client.retried == 0

    def test_explicit_release_retries_mid_flight(self, monkeypatch,
                                                 client):
        """Releasing ticket N twice is a 400 the caller reads as
        'released': safe to re-send."""
        transport = FlakyTransport([reset_mid_flight()],
                                   {"stream": 5, "active": 0})
        patch_transport(monkeypatch, transport)
        assert client.release(5)["stream"] == 5
        assert transport.calls == 2

    def test_anonymous_release_does_not_retry_mid_flight(
            self, monkeypatch, client):
        """release() with no ticket pops *some* oldest stream --
        re-sending would pop a second one."""
        patch_transport(monkeypatch, FlakyTransport(
            [reset_mid_flight()], {"stream": 0}))
        with pytest.raises(ConfigurationError,
                           match="non-idempotent"):
            client.release()

    def test_reads_and_faults_retry_mid_flight(self, monkeypatch,
                                               client):
        for call in (client.state, client.control, client.healthz,
                     lambda: client.fault("slow_disk", 0, factor=1.2),
                     client.snapshot):
            transport = FlakyTransport(
                [reset_mid_flight()],
                {"written": "x", "applied": True, "factor": 1.2})
            patch_transport(monkeypatch, transport)
            call()
            assert transport.calls == 2


class TestTracePropagation:
    """Every attempt carries X-Repro-Trace; retries share the trace-id
    and stamp increasing attempt numbers so the daemon can keep them
    out of the primary request counters."""

    class RecordingTransport(FlakyTransport):
        def __init__(self, errors, payload):
            super().__init__(errors, payload)
            self.headers = []

        def __call__(self, request, timeout=None):
            # urllib capitalises header names: X-repro-trace.
            self.headers.append(request.get_header("X-repro-trace"))
            return super().__call__(request, timeout=timeout)

    def test_header_always_sent_even_untraced(self, monkeypatch,
                                              client):
        transport = self.RecordingTransport([], {"status": "ok"})
        patch_transport(monkeypatch, transport)
        client.healthz()
        [header] = transport.headers
        context, attempt = parse_trace_header(header)
        assert context is not None and attempt == 1

    def test_retries_share_trace_id_and_count_attempts(
            self, monkeypatch, client):
        transport = self.RecordingTransport(
            [refused(), refused()], {"status": "ok"})
        patch_transport(monkeypatch, transport)
        client.healthz()
        parsed = [parse_trace_header(h) for h in transport.headers]
        assert [attempt for _ctx, attempt in parsed] == [1, 2, 3]
        trace_ids = {ctx.trace_id for ctx, _attempt in parsed}
        assert len(trace_ids) == 1
        # Each attempt is its own span: distinct span-ids.
        span_ids = {ctx.span_id for ctx, _attempt in parsed}
        assert len(span_ids) == 3

    def test_traced_client_emits_attempt_spans(self, monkeypatch):
        from repro.obs import Tracer
        from repro.obs.spans import start_span  # noqa: F401

        ticks = iter(range(1000))
        tracer = Tracer(clock=lambda: float(next(ticks)))
        sleeps = []
        client = ServeClient("http://127.0.0.1:1", retries=4,
                             backoff=0.01, backoff_max=0.1,
                             sleep=sleeps.append, tracer=tracer)
        transport = self.RecordingTransport(
            [refused()], {"status": "ok"})
        patch_transport(monkeypatch, transport)
        client.healthz()
        starts = [r for r in tracer.records()
                  if r["kind"] == "span_start"]
        names = [r["name"] for r in starts]
        assert names.count("client.request") == 2
        attempts = [r["attrs"]["attempt"] for r in starts
                    if r["name"] == "client.request"]
        assert attempts == [1, 2]
        # The wire header matches the emitted attempt spans exactly.
        wire = [parse_trace_header(h) for h in transport.headers]
        emitted_span_ids = {r["span"] for r in starts
                            if r["name"] == "client.request"}
        assert {ctx.span_id for ctx, _a in wire} == emitted_span_ids


class TestResults:
    def test_409_is_a_result_not_an_exception(self, monkeypatch,
                                              client):
        def rejecting(request, timeout=None):
            raise urllib.error.HTTPError(
                request.full_url, 409, "conflict", {},
                io.BytesIO(json.dumps(
                    {"error": "denied", "admitted": False}
                    ).encode("utf-8")))
        patch_transport(monkeypatch, rejecting)
        result = client.admit()
        assert result["admitted"] is False
        assert "denied" in result["error"]

    def test_non_json_body_is_a_configuration_error(self, monkeypatch,
                                                    client):
        class Garbage(FakeResponse):
            def __init__(self):
                self.status = 200
                self._body = b"\x00not json"
        patch_transport(monkeypatch,
                        lambda request, timeout=None: Garbage())
        with pytest.raises(ConfigurationError, match="non-JSON"):
            client.state()

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            ServeClient("ftp://x")
        with pytest.raises(ConfigurationError):
            ServeClient("http://x", retries=0)
        with pytest.raises(ConfigurationError):
            ServeClient("http://x", backoff=0.5, backoff_max=0.1)
