"""ServeClient retry discipline (no sockets: connections are faked).

The contract: transport failures never escape as raw
``ConnectionError``; connect-stage failures retry with bounded
exponential backoff for every operation; a send failure on a *reused*
keep-alive connection retries for every operation (the request never
reached the daemon); mid-flight failures retry only idempotent
operations -- a mid-flight ``admit`` raises immediately because a
blind re-send could admit two streams for one request.

The fakes drive the client through its ``connection_factory`` seam:
anything with the ``request``/``getresponse``/``close`` surface of
``http.client.HTTPConnection``.
"""

import json
import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs.spans import TRACE_HEADER, parse_trace_header
from repro.serve import ServeClient


class FakeResponse:
    def __init__(self, payload, status: int = 200):
        self.status = status
        self._body = (payload if isinstance(payload, bytes)
                      else json.dumps(payload).encode("utf-8"))

    def read(self):
        return self._body


#: Script entries: where in the exchange the scripted error fires.
SEND = "send"
RESPONSE = "response"


def refused():
    """Connect-stage: the daemon is down, nothing was ever sent."""
    return (SEND, ConnectionRefusedError(111, "refused"))


def reset_mid_flight():
    """The connection died while awaiting the response: the daemon
    may or may not have processed the request."""
    return (RESPONSE, ConnectionResetError(104, "reset by peer"))


def stale_keep_alive():
    """The send failed outright -- on a reused connection this means
    the daemon closed the idle socket between our requests."""
    return (SEND, BrokenPipeError(32, "broken pipe"))


class FakeConnection:
    """One connection handed out by :class:`FlakyFactory`.  Each
    ``request()`` consumes the next script entry (or succeeds when the
    script is exhausted)."""

    def __init__(self, factory):
        self.factory = factory
        self.closed = False
        self._pending = None

    def request(self, method, path, body=None, headers=None):
        factory = self.factory
        factory.calls += 1
        factory.requests.append((method, path, body))
        factory.headers.append((headers or {}).get(TRACE_HEADER))
        entry = factory.next_entry()
        if entry is None:
            self._pending = None
            return
        stage, exc = entry
        if stage == SEND:
            raise exc
        self._pending = exc

    def getresponse(self):
        exc, self._pending = self._pending, None
        if exc is not None:
            raise exc
        return FakeResponse(self.factory.payload, self.factory.status)

    def close(self):
        self.closed = True


class FlakyFactory:
    """connection_factory stand-in: raises scripted errors, then
    answers ``payload`` with ``status``.  ``None`` script entries mean
    "this exchange succeeds"."""

    def __init__(self, script=(), payload=None, status: int = 200):
        self.script = list(script)
        self.payload = payload if payload is not None else {"ok": True}
        self.status = status
        self.calls = 0      # wire exchanges attempted
        self.opened = 0     # connections created
        self.headers = []   # X-Repro-Trace value per exchange
        self.requests = []  # (method, path, body) per exchange
        self.connections = []

    def __call__(self):
        self.opened += 1
        conn = FakeConnection(self)
        self.connections.append(conn)
        return conn

    def next_entry(self):
        if self.script:
            return self.script.pop(0)
        return None


def make_client(factory, **kwargs):
    sleeps = []
    kwargs.setdefault("retries", 4)
    kwargs.setdefault("backoff", 0.05)
    kwargs.setdefault("backoff_max", 0.4)
    client = ServeClient("http://127.0.0.1:1", sleep=sleeps.append,
                         connection_factory=factory, **kwargs)
    client.sleeps = sleeps
    return client


class TestConnectStageRetry:
    def test_admit_retries_connection_refused(self):
        """The daemon is restarting from a snapshot: refused connects
        retry even for the non-idempotent admit (nothing was sent)."""
        factory = FlakyFactory([refused(), refused()],
                               {"stream": 0, "active": 1})
        client = make_client(factory)
        result = client.admit()
        assert result["admitted"] and result["stream"] == 0
        assert factory.calls == 3
        assert client.retried == 2

    def test_failed_connections_are_discarded(self):
        """A connection that refused is closed and never reused."""
        factory = FlakyFactory([refused()], {"status": "ok"})
        client = make_client(factory)
        client.healthz()
        assert factory.opened == 2
        assert factory.connections[0].closed
        assert not factory.connections[1].closed

    def test_backoff_grows_and_is_capped(self):
        factory = FlakyFactory([refused()] * 3, {"ok": True})
        client = make_client(factory)
        client.state()
        assert len(client.sleeps) == 3
        assert client.sleeps[0] < client.sleeps[-1]
        assert all(0 < s <= client.backoff_max for s in client.sleeps)

    def test_exhaustion_raises_configuration_error(self):
        factory = FlakyFactory([refused()] * 10, {"ok": True})
        client = make_client(factory)
        with pytest.raises(ConfigurationError,
                           match="unreachable after 4"):
            client.healthz()
        # Never a raw ConnectionError escaping.


class TestKeepAlive:
    def test_connection_reused_across_requests(self):
        factory = FlakyFactory()
        client = make_client(factory)
        client.healthz()
        client.healthz()
        client.state()
        assert factory.calls == 3
        assert factory.opened == 1

    def test_stale_keep_alive_retries_even_admit(self):
        """The daemon closed our idle socket between requests: the
        send on the *reused* connection fails before anything reached
        it, so even admit is safe to retry on a fresh connection."""
        factory = FlakyFactory([None, stale_keep_alive()],
                               {"stream": 7, "active": 8})
        client = make_client(factory)
        client.healthz()  # establishes the keep-alive connection
        result = client.admit()
        assert result["admitted"] and result["stream"] == 7
        assert factory.calls == 3
        assert factory.opened == 2
        assert factory.connections[0].closed  # the stale one
        assert client.retried == 1

    def test_send_failure_on_fresh_connection_is_mid_flight(self):
        """The same send failure on a *fresh* connection is ambiguous
        (part of the request may have been transmitted): admit must
        not retry it."""
        factory = FlakyFactory([stale_keep_alive()], {"stream": 0})
        client = make_client(factory)
        with pytest.raises(ConfigurationError,
                           match="non-idempotent"):
            client.admit()
        assert factory.calls == 1

    def test_close_releases_connections_then_reconnects(self):
        factory = FlakyFactory()
        client = make_client(factory)
        client.healthz()
        client.close()
        assert factory.connections[0].closed
        client.healthz()
        assert factory.opened == 2

    def test_each_thread_gets_its_own_connection(self):
        factory = FlakyFactory()
        client = make_client(factory)
        client.healthz()
        worker = threading.Thread(target=client.healthz)
        worker.start()
        worker.join()
        assert factory.opened == 2
        assert factory.calls == 2


class TestMidFlightDiscipline:
    def test_admit_never_retries_mid_flight(self):
        """The connection died after the request was sent: the daemon
        may have admitted.  A blind retry could double-admit."""
        factory = FlakyFactory([reset_mid_flight()], {"stream": 0})
        client = make_client(factory)
        with pytest.raises(ConfigurationError,
                           match="non-idempotent"):
            client.admit()
        assert factory.calls == 1
        assert client.retried == 0

    def test_admit_batch_never_retries_mid_flight(self):
        factory = FlakyFactory([reset_mid_flight()],
                               {"granted": 1, "streams": [0]})
        client = make_client(factory)
        with pytest.raises(ConfigurationError,
                           match="non-idempotent"):
            client.admit_many(4)
        assert factory.calls == 1

    def test_explicit_release_retries_mid_flight(self):
        """Releasing ticket N twice is a 400 the caller reads as
        'released': safe to re-send."""
        factory = FlakyFactory([reset_mid_flight()],
                               {"stream": 5, "active": 0})
        client = make_client(factory)
        assert client.release(5)["stream"] == 5
        assert factory.calls == 2

    def test_release_batch_retries_mid_flight(self):
        """Doubled batch releases land in ``missing``: idempotent."""
        factory = FlakyFactory(
            [reset_mid_flight()],
            {"released": [1, 2], "missing": [], "active": 0})
        client = make_client(factory)
        result = client.release_many([1, 2])
        assert result["released"] == [1, 2]
        assert factory.calls == 2

    def test_anonymous_release_does_not_retry_mid_flight(self):
        """release() with no ticket pops *some* oldest stream --
        re-sending would pop a second one."""
        factory = FlakyFactory([reset_mid_flight()], {"stream": 0})
        client = make_client(factory)
        with pytest.raises(ConfigurationError,
                           match="non-idempotent"):
            client.release()

    def test_reads_and_faults_retry_mid_flight(self):
        payload = {"written": "x", "applied": True, "factor": 1.2}
        for op in ("state", "control", "healthz", "fault", "snapshot"):
            factory = FlakyFactory([reset_mid_flight()], payload)
            client = make_client(factory)
            if op == "fault":
                client.fault("slow_disk", 0, factor=1.2)
            else:
                getattr(client, op)()
            assert factory.calls == 2, op


class TestTracePropagation:
    """Every attempt carries X-Repro-Trace; retries share the trace-id
    and stamp increasing attempt numbers so the daemon can keep them
    out of the primary request counters."""

    def test_header_always_sent_even_untraced(self):
        factory = FlakyFactory(payload={"status": "ok"})
        client = make_client(factory)
        client.healthz()
        [header] = factory.headers
        context, attempt = parse_trace_header(header)
        assert context is not None and attempt == 1

    def test_retries_share_trace_id_and_count_attempts(self):
        factory = FlakyFactory([refused(), refused()],
                               {"status": "ok"})
        client = make_client(factory)
        client.healthz()
        parsed = [parse_trace_header(h) for h in factory.headers]
        assert [attempt for _ctx, attempt in parsed] == [1, 2, 3]
        trace_ids = {ctx.trace_id for ctx, _attempt in parsed}
        assert len(trace_ids) == 1
        # Each attempt is its own span: distinct span-ids.
        span_ids = {ctx.span_id for ctx, _attempt in parsed}
        assert len(span_ids) == 3

    def test_traced_client_emits_attempt_spans(self):
        from repro.obs import Tracer

        ticks = iter(range(1000))
        tracer = Tracer(clock=lambda: float(next(ticks)))
        factory = FlakyFactory([refused()], {"status": "ok"})
        client = make_client(factory, backoff=0.01, backoff_max=0.1,
                             tracer=tracer)
        client.healthz()
        starts = [r for r in tracer.records()
                  if r["kind"] == "span_start"]
        names = [r["name"] for r in starts]
        assert names.count("client.request") == 2
        attempts = [r["attrs"]["attempt"] for r in starts
                    if r["name"] == "client.request"]
        assert attempts == [1, 2]
        # The wire header matches the emitted attempt spans exactly.
        wire = [parse_trace_header(h) for h in factory.headers]
        emitted_span_ids = {r["span"] for r in starts
                            if r["name"] == "client.request"}
        assert {ctx.span_id for ctx, _a in wire} == emitted_span_ids


class TestResults:
    def test_409_is_a_result_not_an_exception(self):
        factory = FlakyFactory(
            payload={"error": "denied", "admitted": False},
            status=409)
        client = make_client(factory)
        result = client.admit()
        assert result["admitted"] is False
        assert "denied" in result["error"]

    def test_non_json_body_is_a_configuration_error(self):
        factory = FlakyFactory(payload=b"\x00not json")
        client = make_client(factory)
        with pytest.raises(ConfigurationError, match="non-JSON"):
            client.state()

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            ServeClient("ftp://x")
        with pytest.raises(ConfigurationError):
            ServeClient("http://x", retries=0)
        with pytest.raises(ConfigurationError):
            ServeClient("http://x", backoff=0.5, backoff_max=0.1)
