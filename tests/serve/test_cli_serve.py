"""End-to-end CLI smoke: ``repro serve`` + ``repro admit``.

This is the serve smoke leg CI runs with ``-W error::ResourceWarning``:
a real daemon on an ephemeral port, admits driven over HTTP until
rejection, one fail/recover fault injected, ``/metrics`` scraped, and
a clean shutdown asserted (exit code 0, no leaked threads).
"""

import threading
import time

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def no_thread_leaks():
    """The CLI must not leave daemon machinery running."""
    before = set(threading.enumerate())
    yield
    leaked = [t for t in threading.enumerate()
              if t not in before and t.is_alive()]
    assert not leaked, f"leaked threads: {[t.name for t in leaked]}"


def _wait_for_port_file(path, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists() and path.read_text().strip():
            return path.read_text().strip()
        time.sleep(0.02)
    raise AssertionError("daemon never wrote its port file")


class TestServeSmoke:
    def test_serve_admit_fault_scrape_shutdown(self, tmp_path, capsys):
        port_file = tmp_path / "serve.port"
        exit_codes = []

        def run_daemon():
            exit_codes.append(main([
                "serve", "--port", "0",
                "--port-file", str(port_file),
                "--duration", "8", "--disks", "2",
            ]))

        server_thread = threading.Thread(target=run_daemon,
                                         name="cli-serve")
        server_thread.start()
        chunks = []

        def drain():
            chunks.append(capsys.readouterr().out)
            return chunks[-1]

        try:
            _wait_for_port_file(port_file)
            code = main(["admit", "--port-file", str(port_file),
                         "--until-reject"])
            assert code == 0
            assert "admitted 56 stream(s) before rejection" in drain()

            code = main(["admit", "--port-file", str(port_file),
                         "--fault", "disk_fail", "--disk", "0",
                         "--state"])
            assert code == 0
            out = drain()
            assert '"shed": 30' in out
            assert '"degraded": true' in out

            code = main(["admit", "--port-file", str(port_file),
                         "--fault", "disk_recover", "--disk", "0",
                         "--scrape"])
            assert code == 0
            out = drain()
            assert '"resumed": 30' in out
            assert "# TYPE serve_admitted_total counter" in out
            assert "serve_resumed_total 30" in out
            assert "serve_degraded 0" in out
        finally:
            server_thread.join(timeout=30.0)
        assert not server_thread.is_alive()
        assert exit_codes == [0]
        drain()
        combined = "".join(chunks)
        assert "repro serve: listening on http://127.0.0.1:" in combined
        assert "repro serve: stopped" in combined

    def test_serve_replays_fault_schedule(self, tmp_path, capsys):
        schedule = tmp_path / "storm.toml"
        schedule.write_text(
            '[[events]]\nkind = "disk_fail"\nt = 0.02\ndisk = 0\n\n'
            '[[events]]\nkind = "disk_recover"\nt = 0.06\ndisk = 0\n',
            encoding="utf-8")
        metrics_json = tmp_path / "metrics.json"
        code = main(["serve", "--port", "0", "--duration", "0.5",
                     "--fault-schedule", str(schedule),
                     "--metrics", str(metrics_json)])
        assert code == 0
        out = capsys.readouterr().out
        assert "replaying 2 fault event(s)" in out
        assert metrics_json.exists()
        payload = metrics_json.read_text()
        assert '"serve_faults_total{kind=\\"disk_fail\\"}"' in payload

    def test_serve_trace_feeds_observe_and_slo(self, tmp_path, capsys):
        """``repro serve --trace`` writes a JSONL that the offline
        ``observe --spans`` and ``slo`` commands can digest whole."""
        from repro.obs import read_trace, validate_trace
        from repro.obs.spans import build_span_trees

        port_file = tmp_path / "serve.port"
        trace = tmp_path / "run.jsonl"
        exit_codes = []

        def run_daemon():
            exit_codes.append(main([
                "serve", "--port", "0",
                "--port-file", str(port_file),
                "--duration", "6", "--disks", "2",
                "--round-interval", "0.1",
                "--trace", str(trace),
                "--slo-fast-window", "8", "--slo-slow-window", "16",
            ]))

        server_thread = threading.Thread(target=run_daemon,
                                         name="cli-serve-trace")
        server_thread.start()
        try:
            _wait_for_port_file(port_file)
            assert main(["admit", "--port-file", str(port_file),
                         "--count", "3"]) == 0
            time.sleep(0.4)  # let a few traced rounds tick
        finally:
            server_thread.join(timeout=30.0)
        assert exit_codes == [0]
        out = capsys.readouterr().out
        assert "trace written to" in out

        records = read_trace(trace)
        assert validate_trace(records) == []
        roots = build_span_trees(records)
        names = {r.name for r in roots}
        assert "http.admit" in names  # daemon-side spans recorded
        assert "control.cycle" in names
        assert any(r["kind"] == "round_observe" for r in records)

        assert main(["observe", str(trace), "--spans"]) == 0
        spans_out = capsys.readouterr().out
        assert "span trees" in spans_out
        assert "critical path" in spans_out

        assert main(["slo", str(trace)]) == 0
        slo_out = capsys.readouterr().out
        assert "epsilon error-budget report" in slo_out
        assert "verdict: ok" in slo_out

    def test_admit_needs_a_target(self, capsys):
        code = main(["admit", "--count", "1"])
        assert code == 2
        assert "need --url or --port-file" in capsys.readouterr().err

    def test_serve_rejects_bad_schedule_disks(self, tmp_path, capsys):
        schedule = tmp_path / "bad.toml"
        schedule.write_text(
            '[[events]]\nkind = "disk_fail"\nt = 1.0\ndisk = 9\n',
            encoding="utf-8")
        code = main(["serve", "--port", "0", "--duration", "0.1",
                     "--disks", "2",
                     "--fault-schedule", str(schedule)])
        assert code == 2
        assert "targets disk 9" in capsys.readouterr().err
