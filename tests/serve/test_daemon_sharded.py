"""Sharded serve hot path: batch admission edges, multi-thread
invariants under faults and snapshots, shard-count-independent
restore, and the batch HTTP routes.

The daemon-level contract: whatever the stripe count and whatever the
interleaving of admits, batch admits, releases, fault events and
snapshot requests, ``active <= capacity (+ debt)`` holds at every
instant, the ticket ledger and the counter always agree, and a
snapshot taken under one shard count restores bit-for-bit under any
other.
"""

import random
import threading

import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.serve import (ServeClient, ServeConfig, ServeDaemon,
                         ServeHandle)


def make_daemon(tmp_path=None, **overrides):
    overrides.setdefault("disks", 2)
    overrides.setdefault("shards", 8)
    if tmp_path is not None:
        overrides.setdefault(
            "snapshot_path", str(tmp_path / "serve.snapshot.json"))
    return ServeDaemon(ServeConfig(**overrides))


class TestBatchEdges:
    def test_batch_grants_contiguous_tickets(self):
        daemon = make_daemon()
        result = daemon.admit_many(10)
        assert result["granted"] == 10
        assert result["streams"] == list(range(10))
        assert result["active"] == 10

    def test_partial_grant_when_k_exceeds_remaining(self):
        daemon = make_daemon()
        capacity = daemon.controller.capacity
        daemon.admit_many(capacity - 3)
        result = daemon.admit_many(10)
        assert result["requested"] == 10
        assert result["granted"] == 3
        assert daemon.controller.active == capacity
        assert daemon.registry.snapshot()[
            "serve_rejected_total"]["value"] == 7

    def test_zero_count_is_a_probe(self):
        daemon = make_daemon()
        result = daemon.admit_many(0)
        assert result["granted"] == 0 and result["streams"] == []
        assert daemon.controller.requests == 0

    def test_batch_at_capacity_raises(self):
        daemon = make_daemon()
        daemon.admit_many(daemon.controller.capacity)
        with pytest.raises(AdmissionError):
            daemon.admit_many(5)
        assert daemon.registry.snapshot()[
            "serve_rejected_total"]["value"] == 5

    def test_degraded_mid_batch_respects_the_new_limit(self):
        """A disk fails between two batches: the next batch grants
        only up to the degraded capacity."""
        daemon = make_daemon()
        daemon.admit_many(20)
        daemon.fault("disk_fail", 0)
        degraded_capacity = daemon.controller.capacity
        live = daemon.controller.active
        assert live <= degraded_capacity
        room = degraded_capacity - live
        result = daemon.admit_many(room + 8)
        assert result["granted"] == room
        assert daemon.controller.active == degraded_capacity
        daemon.fault("disk_recover", 0)

    def test_release_many_groups_by_shard(self):
        daemon = make_daemon()
        streams = daemon.admit_many(12)["streams"]
        result = daemon.release_many(streams[:6] + [99_999])
        assert result["released"] == streams[:6]
        assert result["missing"] == [99_999]
        assert result["active"] == 6

    def test_ledger_and_counter_agree_after_batches(self):
        daemon = make_daemon()
        daemon.admit_many(17)
        daemon.release_many(list(range(0, 17, 2)))
        state = daemon.state()
        assert len(state["streams"]) == state["controller"]["active"]
        assert state["streams"] == sorted(state["streams"])


class TestShardStress:
    def test_storm_never_overshoots_and_drains_clean(self):
        """8 churner threads (mixed single/batch admits and releases)
        race a fault flipper and a snapshotter; the live count may
        never exceed capacity + debt, and after the storm every
        admitted ticket is releasable with nothing left over."""
        daemon = make_daemon(shards=8)
        stop = threading.Event()
        failures = []

        def churner(seed):
            rng = random.Random(seed)
            mine = []
            try:
                while not stop.is_set():
                    roll = rng.random()
                    if roll < 0.45:
                        try:
                            got = daemon.admit_many(rng.randint(1, 6))
                            mine.extend(got["streams"])
                        except AdmissionError:
                            pass
                    elif roll < 0.6:
                        try:
                            mine.append(daemon.admit()["stream"])
                        except AdmissionError:
                            pass
                    elif mine:
                        take = [mine.pop() for _ in
                                range(min(len(mine),
                                          rng.randint(1, 4)))]
                        daemon.release_many(take)
            except Exception as exc:  # pragma: no cover - diagnostics
                failures.append(exc)

        def flipper():
            toggle = True
            try:
                while not stop.is_set():
                    daemon.fault("disk_fail" if toggle
                                 else "disk_recover", 0)
                    toggle = not toggle
                    snap = daemon.controller.snapshot()
                    assert snap["active"] <= (snap["capacity"]
                                              + snap["debt"])
            except Exception as exc:  # pragma: no cover
                failures.append(exc)

        def snapshotter():
            try:
                while not stop.is_set():
                    payload = daemon.snapshot_payload()
                    streams = payload["ledger"]["streams"]
                    assert streams == sorted(streams)
                    assert len(set(streams)) == len(streams)
            except Exception as exc:  # pragma: no cover
                failures.append(exc)

        pool = [threading.Thread(target=churner, args=(seed,))
                for seed in range(8)]
        pool.append(threading.Thread(target=flipper))
        pool.append(threading.Thread(target=snapshotter))
        for thread in pool:
            thread.start()
        threading.Event().wait(0.4)
        stop.set()
        for thread in pool:
            thread.join()
        assert not failures, failures
        daemon.fault("disk_recover", 0)
        # Zero leaks: the ledger lists exactly the active tickets and
        # releasing them all leaves an empty daemon.
        state = daemon.state()
        assert len(state["streams"]) == state["controller"]["active"]
        result = daemon.release_many(state["streams"])
        assert result["missing"] == []
        assert daemon.controller.active == 0
        assert daemon.state()["streams"] == []
        snap = daemon.controller.snapshot()
        assert sum(snap["shard_limit"]) == (snap["capacity"]
                                            + snap["debt"])

    def test_single_shard_behaves_like_legacy(self):
        daemon = make_daemon(shards=1)
        assert daemon.controller.shards == 1
        tickets = [daemon.admit()["stream"] for _ in range(56)]
        assert tickets == list(range(56))
        with pytest.raises(AdmissionError):
            daemon.admit()
        daemon.fault("disk_fail", 0)
        assert daemon.controller.active == daemon.controller.capacity
        daemon.fault("disk_recover", 0)
        assert daemon.controller.active == 56


class TestShardCountIndependentSnapshots:
    def _exercise(self, daemon):
        daemon.admit_many(40)
        for _ in range(16):
            daemon.admit()
        daemon.release(3)
        daemon.release_many([10, 11])
        daemon.fault("disk_fail", 0)
        daemon.fault("slow_disk", 1, factor=1.2)
        for _ in range(5):
            daemon.tick_round()

    @pytest.mark.parametrize("restore_shards", [1, 3, 8, 32])
    def test_restore_is_bit_for_bit_across_shard_counts(
            self, tmp_path, restore_shards):
        first = make_daemon(tmp_path, shards=8, adaptive=True)
        self._exercise(first)
        first.save_snapshot(clean=True)
        before = first.snapshot_payload(clean=True)

        second = make_daemon(tmp_path, shards=restore_shards,
                             adaptive=True)
        after = second.snapshot_payload(clean=True)
        before.pop("written_at"), after.pop("written_at")
        assert after == before
        assert second.state()["restored"] is True
        assert second.controller.active == first.controller.active
        assert second.controller.shards == restore_shards
        # The restored ledger is releasable ticket-for-ticket.
        state = second.state()
        result = second.release_many(state["streams"])
        assert result["missing"] == []
        assert second.controller.active == 0


class TestShardObservability:
    def test_control_state_reports_shards(self):
        daemon = make_daemon(shards=4)
        daemon.admit_many(8)
        shards = daemon.control_state()["shards"]
        assert shards["count"] == 4
        assert shards["epoch"] >= 0
        assert shards["debt"] == 0
        assert "rebalances" in shards

    def test_per_shard_gauges_exported(self):
        daemon = make_daemon(shards=4)
        daemon.admit_many(10)
        daemon.refresh_export_metrics()
        text = daemon.registry.to_prometheus()
        assert 'serve_shard_active{shard="0"}' in text
        assert 'serve_shard_limit{shard="3"}' in text
        assert "serve_shards 4" in text
        assert "serve_admission_epoch" in text
        assert "serve_admission_rebalances" in text

    def test_batch_size_histogram_observes(self):
        daemon = make_daemon()
        daemon.admit_many(24)
        hist = daemon.registry.histogram("serve_admit_batch_size")
        assert hist.count >= 1


@pytest.fixture(autouse=True)
def no_thread_leaks():
    before = set(threading.enumerate())
    yield
    leaked = [t for t in threading.enumerate()
              if t not in before and t.is_alive()]
    assert not leaked, f"leaked threads: {[t.name for t in leaked]}"


@pytest.fixture
def served_sharded():
    daemon = ServeDaemon(ServeConfig(disks=2, shards=4))
    handle = ServeHandle(daemon)
    handle.start()
    client = ServeClient(handle.url)
    try:
        yield handle, client
    finally:
        client.close()
        handle.stop()


class TestBatchRoutes:
    def test_admit_batch_roundtrip(self, served_sharded):
        _handle, client = served_sharded
        result = client.admit_many(20, batch=8)
        assert result["granted"] == 20
        assert result["streams"] == list(range(20))
        assert result["admitted"] is True

    def test_admit_batch_partial_then_reject(self, served_sharded):
        handle, client = served_sharded
        capacity = handle.daemon.controller.capacity
        client.admit_many(capacity - 5, batch=32)
        result = client.admit_many(16, batch=16)
        assert result["granted"] == 5
        assert handle.daemon.controller.active == capacity
        rejected = client.admit_many(4)
        assert rejected["granted"] == 0
        assert rejected["admitted"] is False

    def test_release_batch_roundtrip(self, served_sharded):
        _handle, client = served_sharded
        streams = client.admit_many(12, batch=4)["streams"]
        result = client.release_many(streams + [424242], batch=5)
        assert result["released"] == streams
        assert result["missing"] == [424242]
        assert result["active"] == 0

    def test_batch_count_validation_over_http(self, served_sharded):
        _handle, client = served_sharded
        status, data = client._json("POST", "/admit/batch",
                                    {"count": "many"})
        assert status == 400 and "error" in data
        status, data = client._json("POST", "/release/batch",
                                    {"streams": "nope"})
        assert status == 400 and "error" in data

    def test_cached_reject_bytes_are_stable(self, served_sharded):
        handle, client = served_sharded
        client.admit_many(handle.daemon.controller.capacity,
                          batch=64)
        first = client._request("POST", "/admit")
        second = client._request("POST", "/admit")
        assert first[0] == second[0] == 409
        assert first[1] == second[1]  # served from the cached bytes

    def test_keep_alive_reuses_the_socket(self, served_sharded):
        """One client thread, many requests: the daemon sees a single
        connection (thread-per-connection server, so the handler
        thread census is the tell)."""
        handle, client = served_sharded
        before = threading.active_count()
        for _ in range(5):
            client.healthz()
        assert threading.active_count() <= before + 1

    def test_sharded_http_storm_exact_capacity(self, served_sharded):
        handle, client = served_sharded
        capacity = handle.daemon.controller.capacity
        granted = []
        lock = threading.Lock()

        def worker():
            with ServeClient(handle.url) as mine:
                result = mine.admit_many(10, batch=5)
                with lock:
                    granted.extend(result["streams"])

        pool = [threading.Thread(target=worker) for _ in range(8)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert len(granted) == min(capacity, 80)
        assert len(set(granted)) == len(granted)  # no double grants
        assert handle.daemon.controller.active == len(granted)
