"""A3: ablation -- round length t.

The round length trades throughput against startup latency (§2.3: "an
admitted stream may receive a small startup delay of up to one round").
Longer rounds amortise seeks over more data per request, so the
admissible *bandwidth* rises with t while per-stream startup worsens.
"""

import _emit
from repro.analysis import render_table
from repro.core import GlitchModel, RoundServiceTimeModel, n_max_perror, n_max_plate
from repro.distributions import Gamma

ROUND_LENGTHS = (0.25, 0.5, 1.0, 2.0, 4.0)
MEAN_BANDWIDTH = 200_000.0  # bytes/second of display per stream
CV = 0.5


def run_sweep(spec):
    rows = []
    for t in ROUND_LENGTHS:
        # Constant display time per fragment: fragment size scales with
        # t for the same display bandwidth.
        sizes = Gamma.from_mean_std(MEAN_BANDWIDTH * t,
                                    CV * MEAN_BANDWIDTH * t)
        model = RoundServiceTimeModel.for_disk(spec, sizes)
        glitch = GlitchModel(model, t=t)
        m = max(int(round(1200 / t)), 1)   # same 20-minute playback
        g = max(int(round(0.01 * m)), 1)   # same 1% glitch tolerance
        plate = n_max_plate(model, t, 0.01)
        perror = n_max_perror(glitch, m, g, 0.01)
        rows.append((t, plate, perror,
                     perror * MEAN_BANDWIDTH / 1e6, t))
    return rows


def test_a3_round_length(benchmark, viking, record):
    rows = benchmark.pedantic(run_sweep, args=(viking,), rounds=1,
                              iterations=1)
    table = render_table(
        ["t [s]", "N_max^plate", "N_max^perror",
         "admitted bandwidth [MB/s]", "max startup delay [s]"],
        [[f"{t:g}", str(plate), str(perror), f"{bw:.2f}", f"{d:g}"]
         for t, plate, perror, bw, d in rows],
        title="A3: round-length sweep (200 KB/s streams, cv=0.5)")
    record("a3_round_length", table)
    _emit.emit("a3_round_length", benchmark,
               **{f"nmax_perror_t{t:g}": perror
                  for t, _, perror, _, _ in rows})

    perrors = [r[2] for r in rows]
    bandwidths = [r[3] for r in rows]
    # Longer rounds amortise seeks: admitted streams rise monotonically.
    assert perrors == sorted(perrors)
    assert bandwidths == sorted(bandwidths)
    # And the t=1s point reproduces the paper's headline 28.
    assert rows[2][2] == 28
