"""A20: parallel Monte-Carlo scaling and the memoized admission pipeline.

Two infrastructure claims behind the Figure 1 / Table 2 / §5 regeneration
speed:

1. The chunk fan-out of :mod:`repro.parallel` is *bit-identical* across
   worker counts for a fixed seed, and scales wall-clock with workers.
   The speedup assertion only fires on hosts with >= 4 cores (CI
   containers are often single-core; there the bench just records the
   measured ratio).
2. The process-wide bound cache collapses the Chernoff-optimisation
   count of an :class:`repro.core.AdmissionTable` build over a grid of
   tolerance thresholds: every probed ``(model, n, t)`` is optimised
   once, so rebuilding the §5 table costs >= 5x fewer optimisations than
   the uncached pipeline.
"""

import os
import time

from repro.analysis import render_table
from repro.cache import cache_disabled, cache_stats, clear_cache
from repro.core import AdmissionTable, GlitchModel, RoundServiceTimeModel
from repro.parallel import estimate_p_late_parallel

N = 28
T = 1.0
ROUNDS = 40_000
SEED = 424242

PLATE_THRESHOLDS = (0.001, 0.005, 0.01, 0.05, 0.10)
PERROR_THRESHOLDS = (0.0001, 0.001, 0.01, 0.05, 0.10)


def _timed_p_late(spec, sizes, jobs):
    start = time.perf_counter()
    est = estimate_p_late_parallel(spec, sizes, N, T, rounds=ROUNDS,
                                   seed=SEED, jobs=jobs)
    return est, time.perf_counter() - start


def _optimisations(spec, sizes, *, cached):
    """Chernoff optimisations performed by one full AdmissionTable
    build (cache cleared first, so cached runs start cold)."""
    clear_cache()
    model = RoundServiceTimeModel.for_disk(spec, sizes)
    glitch = GlitchModel(model, t=T)
    table = AdmissionTable(glitch, m=1200, g=12)
    before = cache_stats()
    if cached:
        table.build(plate_thresholds=PLATE_THRESHOLDS,
                    perror_thresholds=PERROR_THRESHOLDS)
    else:
        with cache_disabled():
            table.build(plate_thresholds=PLATE_THRESHOLDS,
                        perror_thresholds=PERROR_THRESHOLDS)
    after = cache_stats()
    # Every cache miss and every uncached call runs one optimisation.
    work = ((after.misses - before.misses)
            + (after.uncached - before.uncached))
    return table.entries(), work


def test_a20_parallel_scaling(benchmark, viking, paper_sizes, record):
    est1, serial_s = _timed_p_late(viking, paper_sizes, jobs=1)
    est4, par_s = benchmark.pedantic(
        _timed_p_late, args=(viking, paper_sizes, 4),
        rounds=1, iterations=1)
    assert est1 == est4, "fan-out must be bit-identical across jobs"
    speedup = serial_s / par_s

    entries_cached, work_cached = _optimisations(viking, paper_sizes,
                                                 cached=True)
    entries_uncached, work_uncached = _optimisations(viking, paper_sizes,
                                                     cached=False)
    assert entries_cached == entries_uncached
    assert entries_cached["plate"][0.01] == 26
    assert entries_cached["perror"][0.01] == 28
    ratio = work_uncached / work_cached

    rows = [
        ["p_late rounds", f"{ROUNDS}"],
        ["serial (jobs=1) [s]", f"{serial_s:.2f}"],
        ["parallel (jobs=4) [s]", f"{par_s:.2f}"],
        ["speedup", f"{speedup:.2f}x"],
        ["bit-identical across jobs", "yes"],
        ["host cores", str(os.cpu_count())],
        ["table build: optimisations (uncached)", str(work_uncached)],
        ["table build: optimisations (cached)", str(work_cached)],
        ["optimisation reduction", f"{ratio:.1f}x"],
    ]
    record("a20_parallel_scaling", render_table(
        ["quantity", "value"], rows,
        title="A20: parallel Monte-Carlo scaling + bound-cache "
        "effectiveness (Table 1 disk, N=28, t=1s)"))

    assert ratio >= 5.0, (
        f"cache must cut Chernoff optimisations >= 5x, got {ratio:.1f}x")
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup at 4 workers, got {speedup:.2f}x")
