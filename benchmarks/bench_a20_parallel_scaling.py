"""A20: parallel Monte-Carlo scaling and the memoized admission pipeline.

Four infrastructure claims behind the Figure 1 / Table 2 / §5
regeneration speed:

1. The chunk fan-out of :mod:`repro.parallel` is *bit-identical* across
   worker counts AND transports for a fixed seed.  The shared-memory
   transport writes each chunk's arrays in place and sends only scalars
   back, so its fan-out overhead sits below the pickling path's (both
   wall-clocks are recorded; the comparison is informational on boxes
   where scheduling noise dominates).
2. Sweeping Figure-1's per-``N`` grid through one shared pool
   (:func:`repro.parallel.sweep_p_late_parallel`) beats the serial
   point-by-point loop; the >= 2x assertion only fires on hosts with
   >= 4 cores (CI containers are often single-core; there the bench
   just records the measured ratio).
3. The process-wide bound cache collapses the Chernoff-optimisation
   count of an :class:`repro.core.AdmissionTable` build over a grid of
   tolerance thresholds >= 5x versus the uncached pipeline.
4. The persistent on-disk layer carries those optimisations across a
   *process restart*: a warm rebuild in a fresh interpreter performs
   zero new Chernoff solves (every probe is a disk hit).
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

import repro
from repro.analysis import render_table
from repro.cache import CACHE_DIR_ENV, cache_disabled, cache_stats, clear_cache
from repro.core import AdmissionTable, GlitchModel, RoundServiceTimeModel
from repro.parallel import simulate_rounds_parallel, sweep_p_late_parallel

N = 28
T = 1.0
ROUNDS = 40_000
SEED = 424242
SWEEP_NS = (24, 26, 28, 30)
SWEEP_ROUNDS = 10_000

PLATE_THRESHOLDS = (0.001, 0.005, 0.01, 0.05, 0.10)
PERROR_THRESHOLDS = (0.0001, 0.001, 0.01, 0.05, 0.10)

#: Run by a fresh interpreter against a shared REPRO_CACHE_DIR: builds
#: the §5 table and reports how many Chernoff solves it needed.
_RESTART_SCRIPT = """\
import json
from repro.cache import cache_stats
from repro.core import AdmissionTable, GlitchModel, RoundServiceTimeModel
from repro.disk import quantum_viking_2_1
from repro.workload import paper_fragment_sizes

model = RoundServiceTimeModel.for_disk(quantum_viking_2_1(),
                                       paper_fragment_sizes())
table = AdmissionTable(GlitchModel(model, t=1.0), m=1200, g=12)
table.build(plate_thresholds=(0.001, 0.005, 0.01, 0.05, 0.10),
            perror_thresholds=(0.0001, 0.001, 0.01, 0.05, 0.10))
stats = cache_stats()
print(json.dumps({"misses": stats.misses, "disk_hits": stats.disk_hits,
                  "hits": stats.hits}))
"""


def _batches_equal(a, b):
    return (a.rounds == b.rounds and a.n == b.n
            and np.array_equal(a.service_times, b.service_times)
            and np.array_equal(a.seek_times, b.seek_times)
            and np.array_equal(a.first_seek_times, b.first_seek_times)
            and np.array_equal(a.glitches, b.glitches))


def _timed_transport(spec, sizes, transport, jobs=2):
    start = time.perf_counter()
    batch = simulate_rounds_parallel(spec, sizes, N, T, rounds=ROUNDS,
                                     seed=SEED, jobs=jobs,
                                     transport=transport)
    return batch, time.perf_counter() - start


def _timed_sweep(spec, sizes, jobs):
    start = time.perf_counter()
    ests = sweep_p_late_parallel(spec, sizes, SWEEP_NS, T,
                                 rounds=SWEEP_ROUNDS, seed=SEED,
                                 jobs=jobs)
    return ests, time.perf_counter() - start


def _optimisations(spec, sizes, *, cached):
    """Chernoff optimisations performed by one full AdmissionTable
    build (cache cleared first, so cached runs start cold)."""
    clear_cache()
    model = RoundServiceTimeModel.for_disk(spec, sizes)
    glitch = GlitchModel(model, t=T)
    table = AdmissionTable(glitch, m=1200, g=12)
    before = cache_stats()
    if cached:
        table.build(plate_thresholds=PLATE_THRESHOLDS,
                    perror_thresholds=PERROR_THRESHOLDS)
    else:
        with cache_disabled():
            table.build(plate_thresholds=PLATE_THRESHOLDS,
                        perror_thresholds=PERROR_THRESHOLDS)
    after = cache_stats()
    # Every cache miss and every uncached call runs one optimisation.
    work = ((after.misses - before.misses)
            + (after.uncached - before.uncached))
    return table.entries(), work


def _restart_build(cache_dir):
    """AdmissionTable build in a brand-new interpreter sharing only the
    on-disk cache; returns its solve/hit counters."""
    src = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env[CACHE_DIR_ENV] = str(cache_dir)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run([sys.executable, "-c", _RESTART_SCRIPT],
                          capture_output=True, text=True, env=env)
    assert proc.returncode == 0, f"restart build failed: {proc.stderr}"
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_a20_parallel_scaling(benchmark, viking, paper_sizes, record,
                              record_json, tmp_path, monkeypatch):
    # 1. Transport comparison: shm fan-out vs full-pickle fan-out.
    batch_shm, shm_s = benchmark.pedantic(
        _timed_transport, args=(viking, paper_sizes, "shm"),
        rounds=1, iterations=1)
    batch_pickle, pickle_s = _timed_transport(viking, paper_sizes,
                                              "pickle")
    batch_serial, serial_s = _timed_transport(viking, paper_sizes,
                                              "pickle", jobs=1)
    assert _batches_equal(batch_shm, batch_pickle), (
        "fan-out must be bit-identical across transports")
    assert _batches_equal(batch_shm, batch_serial), (
        "fan-out must be bit-identical across jobs")

    # 2. Sweep-axis parallelism: whole N-grid through one pool.
    cores = os.cpu_count() or 1
    sweep_jobs = min(4, cores)
    ests_serial, sweep_serial_s = _timed_sweep(viking, paper_sizes, 1)
    ests_par, sweep_par_s = _timed_sweep(viking, paper_sizes, sweep_jobs)
    assert ests_serial == ests_par, (
        "sweep must be bit-identical across jobs")
    sweep_speedup = sweep_serial_s / sweep_par_s

    # 3. Memoized pipeline, in-process: persistent layer disabled so
    # the cold-build solve count is measured, not served from disk.
    monkeypatch.setenv("REPRO_PERSISTENT_CACHE", "0")
    entries_cached, work_cached = _optimisations(viking, paper_sizes,
                                                 cached=True)
    entries_uncached, work_uncached = _optimisations(viking, paper_sizes,
                                                     cached=False)
    monkeypatch.delenv("REPRO_PERSISTENT_CACHE")
    clear_cache()
    assert entries_cached == entries_uncached
    assert entries_cached["plate"][0.01] == 26
    assert entries_cached["perror"][0.01] == 28
    ratio = work_uncached / work_cached

    # 4. Persistent layer across a process restart: cold build solves,
    # warm rebuild in a NEW interpreter answers entirely from disk.
    store_dir = tmp_path / "restart-cache"
    cold = _restart_build(store_dir)
    warm = _restart_build(store_dir)
    assert cold["misses"] > 0 and cold["disk_hits"] == 0
    assert warm["misses"] == 0, (
        f"warm restart must need zero new Chernoff solves, "
        f"performed {warm['misses']}")
    assert warm["disk_hits"] > 0
    warm_hit_rate = warm["disk_hits"] / (warm["disk_hits"]
                                         + warm["misses"])

    rows = [
        ["p_late rounds", f"{ROUNDS}"],
        ["serial (jobs=1) [s]", f"{serial_s:.2f}"],
        ["pickle fan-out (jobs=2) [s]", f"{pickle_s:.2f}"],
        ["shm fan-out (jobs=2) [s]", f"{shm_s:.2f}"],
        ["bit-identical across transports/jobs", "yes"],
        [f"sweep {list(SWEEP_NS)} serial [s]", f"{sweep_serial_s:.2f}"],
        [f"sweep parallel (jobs={sweep_jobs}) [s]",
         f"{sweep_par_s:.2f}"],
        ["sweep speedup", f"{sweep_speedup:.2f}x"],
        ["host cores", str(cores)],
        ["table build: optimisations (uncached)", str(work_uncached)],
        ["table build: optimisations (cached)", str(work_cached)],
        ["optimisation reduction", f"{ratio:.1f}x"],
        ["restart: cold solves", str(cold["misses"])],
        ["restart: warm solves", str(warm["misses"])],
        ["restart: warm disk hit-rate", f"{warm_hit_rate:.0%}"],
    ]
    record("a20_parallel_scaling", render_table(
        ["quantity", "value"], rows,
        title="A20: parallel Monte-Carlo scaling + bound-cache "
        "effectiveness (Table 1 disk, N=28, t=1s)"))
    record_json("a20_parallel_scaling", {
        "rounds": ROUNDS,
        "host_cores": cores,
        "wall_clock_s": {
            "serial": serial_s,
            "pickle_jobs2": pickle_s,
            "shm_jobs2": shm_s,
            "sweep_serial": sweep_serial_s,
            f"sweep_jobs{sweep_jobs}": sweep_par_s,
        },
        "shm_vs_pickle_ratio": shm_s / pickle_s,
        "sweep_speedup": sweep_speedup,
        "optimisation_reduction": ratio,
        "restart_cold_solves": cold["misses"],
        "restart_warm_solves": warm["misses"],
        "restart_warm_hit_rate": warm_hit_rate,
    })

    assert ratio >= 5.0, (
        f"cache must cut Chernoff optimisations >= 5x, got {ratio:.1f}x")
    if cores >= 4:
        assert sweep_speedup >= 2.0, (
            f"expected >= 2x sweep speedup at {sweep_jobs} workers, "
            f"got {sweep_speedup:.2f}x")
