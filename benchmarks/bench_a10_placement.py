"""A10: extension -- data-placement policies (§2.2 outlook).

Compares sector-uniform placement (the paper's assumption) against a
hot-band outer-zones policy and an organ-pipe arrangement: transfer-time
moments, simulated round times, and the admitted stream count when the
analytic model is fed the policy's zone mix.
"""

import numpy as np

import _emit
from repro.analysis import format_probability, render_table
from repro.core import MultiZoneTransferModel, RoundServiceTimeModel, n_max_plate
from repro.disk.placement import (
    OrganPipePlacement,
    OuterZonesPlacement,
    SectorUniformPlacement,
)
from repro.server.simulation import simulate_rounds

T = 1.0
N = 27
POLICIES = [
    ("sector-uniform (paper)", SectorUniformPlacement()),
    ("outer 30% band", OuterZonesPlacement(fraction=0.3)),
    ("organ-pipe @0.75", OrganPipePlacement(centre_fraction=0.75,
                                            skew=1e-3)),
]


def run_ablation(spec, sizes):
    base = RoundServiceTimeModel.for_disk(spec, sizes)
    rows = []
    for label, policy in POLICIES:
        transfer = MultiZoneTransferModel(
            spec.zone_map, sizes,
            zone_probabilities=policy.zone_probabilities(spec.geometry))
        model = RoundServiceTimeModel(
            seek_bound=lambda n: base.seek(n), rot=spec.rot,
            transfer=transfer.gamma_approximation())
        batch = simulate_rounds(spec, sizes, N, T, 8000,
                                np.random.default_rng(hash(label) % 997),
                                placement=policy)
        rows.append((
            label,
            transfer.mean(),
            policy.mean_pairwise_seek_distance(spec.geometry),
            float(np.mean(batch.service_times)),
            float(np.mean(batch.service_times > T)),
            model.b_late(N, T),
            n_max_plate(model, T, 0.01),
        ))
    return rows


def test_a10_placement(benchmark, viking, paper_sizes, record):
    rows = benchmark.pedantic(run_ablation, args=(viking, paper_sizes),
                              rounds=1, iterations=1)
    table = render_table(
        ["policy", "E[T_trans] [ms]", "E|seek dist| [cyl]",
         "sim E[T_round] [s]", f"sim p_late({N})", f"b_late({N})",
         "N_max(1%)"],
        [[label, f"{1e3 * m:.2f}", f"{d:.0f}", f"{rt:.3f}",
          format_probability(sp), format_probability(b), str(nmax)]
         for label, m, d, rt, sp, b, nmax in rows],
        title="A10: placement policies on the Table 1 disk")
    record("a10_placement", table)
    _emit.emit("a10_placement", benchmark,
               nmax_uniform=rows[0][6], nmax_outer=rows[1][6],
               nmax_organ_pipe=rows[2][6])

    by_label = dict((r[0], r) for r in rows)
    uniform = by_label["sector-uniform (paper)"]
    outer = by_label["outer 30% band"]
    organ = by_label["organ-pipe @0.75"]
    # Outer band: faster transfers, much shorter seeks, more streams.
    assert outer[1] < uniform[1]
    assert outer[2] < 0.6 * uniform[2]
    assert outer[6] >= uniform[6]
    # Organ-pipe: shorter seeks than uniform.
    assert organ[2] < uniform[2]
    # Analytic bound dominates its own simulated configuration.
    for label, _, _, _, sim_p, bound, _ in rows:
        assert bound >= sim_p, label
