"""A6: extension -- trace-driven VBR workload through the full pipeline.

Generates synthetic MPEG GoP traces, fragments them at the round length
(§2.1), and runs BOTH the analytic pipeline (moment-matched Gamma from
the empirical fragment moments -- exactly the "workload statistics fed
into the admission control" of §2.3) and the simulator resampling the
empirical fragments.  Checks that the admission decision derived from
trace statistics remains conservative for the trace-driven system.
"""

import numpy as np

import _emit
from repro.analysis import format_probability, render_table
from repro.core import RoundServiceTimeModel, n_max_plate
from repro.distributions import Empirical, Gamma
from repro.server.simulation import estimate_p_late
from repro.workload import MpegGopModel, fragment_trace

T = 1.0


def run_pipeline(spec):
    model = MpegGopModel(scene_correlation=0.97, scene_sigma=0.40)
    rng = np.random.default_rng(77)
    frames = model.generate_frames(rng, 400_000)
    fragments = fragment_trace(frames, model.frame_rate, T)
    empirical = Empirical(fragments)

    # Scale the trace so its mean display bandwidth matches Table 1's
    # 200 KB/s -- keeps N in the paper's regime.
    scale = 200_000.0 / empirical.mean()
    fragments = fragments * scale
    empirical = Empirical(fragments)

    gamma_fit = Gamma.from_mean_std(empirical.mean(), empirical.std())
    analytic = RoundServiceTimeModel.for_disk(spec, gamma_fit)
    n_admit = n_max_plate(analytic, T, 0.01)

    sim_gamma = estimate_p_late(spec, gamma_fit, n_admit, T,
                                rounds=20_000, seed=8)
    sim_trace = estimate_p_late(spec, empirical, n_admit, T,
                                rounds=20_000, seed=9)
    return {
        "cv": empirical.std() / empirical.mean(),
        "n_admit": n_admit,
        "analytic_p": analytic.b_late(n_admit, T),
        "sim_gamma": sim_gamma.p_late,
        "sim_trace": sim_trace.p_late,
    }


def test_a6_vbr_traces(benchmark, viking, record):
    result = benchmark.pedantic(run_pipeline, args=(viking,), rounds=1,
                                iterations=1)
    table = render_table(
        ["quantity", "value"],
        [
            ["trace fragment cv", f"{result['cv']:.3f}"],
            ["N admitted from trace stats", str(result["n_admit"])],
            ["analytic b_late at N", format_probability(
                result["analytic_p"])],
            ["sim p_late (Gamma fit)", format_probability(
                result["sim_gamma"])],
            ["sim p_late (trace-driven)", format_probability(
                result["sim_trace"])],
        ],
        title="A6: trace-driven VBR workload (MPEG GoP model)")
    record("a6_vbr_traces", table)
    _emit.emit("a6_vbr_traces", benchmark, n_admit=result["n_admit"],
               trace_cv=result["cv"], analytic_p=result["analytic_p"],
               sim_trace_p=result["sim_trace"])

    # The admission decision computed from trace statistics must keep
    # the trace-driven system within the analytic guarantee.
    assert result["analytic_p"] <= 0.01
    assert result["sim_trace"] <= result["analytic_p"]
    assert result["sim_gamma"] <= result["analytic_p"]
    # The workload is in the paper's regime.
    assert 20 <= result["n_admit"] <= 32
