"""E5: Figure 1 -- analytic vs simulated p_late as a function of N.

The paper's chart shows the analytic bound always above the simulated
probability, both rising steeply around N ~ 26-30; at the 1 % threshold
the model admits 26 streams while the simulated system sustains 28.
"""

import os

from repro.analysis import ComparisonRow, comparison_table
from repro.analysis.plotting import ascii_chart
from repro.core import RoundServiceTimeModel
from repro.server.simulation import estimate_p_late

N_RANGE = range(20, 33)
ROUNDS = 20_000
T = 1.0
#: Worker processes for the Monte-Carlo points.  Results are
#: bit-identical for any value (chunked substream decomposition), so CI
#: can export REPRO_BENCH_JOBS=0 (all cores) without changing numbers.
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def run_figure1(spec, sizes):
    model = RoundServiceTimeModel.for_disk(spec, sizes)
    rows = []
    for n in N_RANGE:
        analytic = model.b_late(n, T)
        sim = estimate_p_late(spec, sizes, n, T, rounds=ROUNDS,
                              seed=1000 + n, jobs=JOBS)
        rows.append(ComparisonRow(label=str(n), analytic=analytic,
                                  simulated=sim.p_late,
                                  ci_low=sim.ci_low, ci_high=sim.ci_high))
    return rows


def _crossover(rows, threshold=0.01, key=lambda r: r.analytic):
    admitted = [int(r.label) for r in rows if key(r) <= threshold]
    return max(admitted) if admitted else 0


def test_e5_figure1(benchmark, viking, paper_sizes, record):
    rows = benchmark.pedantic(run_figure1, args=(viking, paper_sizes),
                              rounds=1, iterations=1)
    analytic_nmax = _crossover(rows)
    simulated_nmax = _crossover(rows, key=lambda r: r.simulated)
    table = comparison_table(
        rows, title="E5: Figure 1 -- p_late(N, t=1s), analytic vs "
        "simulated (20000 rounds/point)")
    footer = (f"\nN_max at 1% threshold: analytic={analytic_nmax} "
              f"(paper: 26), simulated={simulated_nmax} (paper: 28)")
    chart = ascii_chart(
        [int(r.label) for r in rows],
        {"analytic bound": [r.analytic for r in rows],
         "simulated": [r.simulated for r in rows]},
        log_y=True, y_floor=1e-5,
        title="Figure 1: p_late vs N (log scale)")
    record("e5_figure1", table + footer + "\n\n" + chart)

    # Shape checks: conservative everywhere, same crossovers as paper.
    assert all(row.conservative for row in rows)
    assert analytic_nmax == 26
    assert simulated_nmax == 28
