"""E5: Figure 1 -- analytic vs simulated p_late as a function of N.

The paper's chart shows the analytic bound always above the simulated
probability, both rising steeply around N ~ 26-30; at the 1 % threshold
the model admits 26 streams while the simulated system sustains 28.

The simulated curve is produced by
:func:`repro.parallel.sweep_p_late_parallel`: all (point, chunk) tasks
of the whole N-grid feed one worker pool, and per-point seeds
``1000 + n`` keep every point bit-identical to the historical
point-by-point loop for any worker count.
"""

import os
import time

from repro.analysis import ComparisonRow, comparison_table
from repro.analysis.plotting import ascii_chart
from repro.core import RoundServiceTimeModel
from repro.parallel import sweep_p_late_parallel

N_RANGE = range(20, 33)
ROUNDS = 20_000
T = 1.0
#: Worker processes for the Monte-Carlo points.  Results are
#: bit-identical for any value (chunked substream decomposition), so CI
#: can export REPRO_BENCH_JOBS=0 (all cores) without changing numbers.
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def run_figure1(spec, sizes):
    model = RoundServiceTimeModel.for_disk(spec, sizes)
    ns = list(N_RANGE)
    sims = sweep_p_late_parallel(spec, sizes, ns, T, rounds=ROUNDS,
                                 seeds=[1000 + n for n in ns],
                                 jobs=JOBS)
    return [ComparisonRow(label=str(n), analytic=model.b_late(n, T),
                          simulated=sim.p_late, ci_low=sim.ci_low,
                          ci_high=sim.ci_high)
            for n, sim in zip(ns, sims)]


def _crossover(rows, threshold=0.01, key=lambda r: r.analytic):
    admitted = [int(r.label) for r in rows if key(r) <= threshold]
    return max(admitted) if admitted else 0


def test_e5_figure1(benchmark, viking, paper_sizes, record, record_json):
    start = time.perf_counter()
    rows = benchmark.pedantic(run_figure1, args=(viking, paper_sizes),
                              rounds=1, iterations=1)
    wall_clock = time.perf_counter() - start
    analytic_nmax = _crossover(rows)
    simulated_nmax = _crossover(rows, key=lambda r: r.simulated)
    table = comparison_table(
        rows, title="E5: Figure 1 -- p_late(N, t=1s), analytic vs "
        "simulated (20000 rounds/point)")
    footer = (f"\nN_max at 1% threshold: analytic={analytic_nmax} "
              f"(paper: 26), simulated={simulated_nmax} (paper: 28)")
    chart = ascii_chart(
        [int(r.label) for r in rows],
        {"analytic bound": [r.analytic for r in rows],
         "simulated": [r.simulated for r in rows]},
        log_y=True, y_floor=1e-5,
        title="Figure 1: p_late vs N (log scale)")
    record("e5_figure1", table + footer + "\n\n" + chart)
    record_json("e5_figure1", {
        "wall_clock_s": wall_clock,
        "jobs": JOBS,
        "host_cores": os.cpu_count(),
        "points": len(rows),
        "rounds_per_point": ROUNDS,
        "analytic_nmax": analytic_nmax,
        "simulated_nmax": simulated_nmax,
    })

    # Shape checks: conservative everywhere, same crossovers as paper.
    assert all(row.conservative for row in rows)
    assert analytic_nmax == 26
    assert simulated_nmax == 28
