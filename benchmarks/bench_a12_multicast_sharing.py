"""A12: extension -- multicast sharing under Zipf popularity.

The MediaServer fetches a fragment once per round however many streams
need it.  With a popularity-skewed catalog the physical per-round load
falls well below the admitted stream count; this bench quantifies the
capacity stretch and validates the occupied-cells model against the
event-driven server.
"""

import numpy as np

import _emit
from repro.analysis import render_table
from repro.core.sharing import (
    effective_stream_capacity,
    expected_distinct_fetches,
    sharing_factor,
    zipf_popularity,
)
from repro.disk import quantum_viking_2_1
from repro.server import MediaServer
from repro.workload import Catalog

N_STREAMS = 60
LENGTH = 60           # object length in rounds
EXPONENTS = (0.0, 0.8, 1.2, 2.0)
OBJECTS = 8


def run_model_sweep():
    rows = []
    for exponent in EXPONENTS:
        p = zipf_popularity(OBJECTS, exponent)
        fetches = expected_distinct_fetches(N_STREAMS, p, LENGTH)
        factor = sharing_factor(N_STREAMS, p, LENGTH)
        capacity = effective_stream_capacity(26, p, LENGTH)
        rows.append((exponent, fetches, factor, capacity))
    return rows


def _server_sharing_factor(seed=11):
    """Measured physical-fetch fraction on the real server.

    Streams arrive Poisson(1 per round) and live LENGTH rounds, so the
    steady-state population is ~LENGTH streams with i.i.d.-uniform
    phases -- the model's assumption.  Returns (mean active streams,
    physical fetches / logical requests)."""
    rng = np.random.default_rng(seed)
    catalog = Catalog.synthetic(rng, n_objects=OBJECTS,
                                duration_s=float(LENGTH),
                                zipf_exponent=1.2)
    server = MediaServer([quantum_viking_2_1()], 1.0, admission=None,
                         seed=seed)
    for obj in catalog.objects:
        server.store_object(obj.name, obj.fragment_sizes)

    def arrivals():
        for _ in range(rng.poisson(1.0)):
            server.open_stream(catalog.pick(rng).name,
                               balance_start=False)

    for _ in range(LENGTH):          # warm up to steady state
        arrivals()
        server.run_rounds(1)
    physical0 = server.report.physical_requests
    requests0 = server.report.requests
    active_sum = 0
    measure = 200
    for _ in range(measure):
        arrivals()
        active_sum += server.active_streams()
        server.run_rounds(1)
    physical = server.report.physical_requests - physical0
    requests = server.report.requests - requests0
    return active_sum / measure, physical / requests


def test_a12_multicast_sharing(benchmark, record):
    rows = benchmark.pedantic(run_model_sweep, rounds=1, iterations=1)
    mean_active, measured = _server_sharing_factor()
    p = zipf_popularity(OBJECTS, 1.2)
    predicted = sharing_factor(int(round(mean_active)), p, LENGTH)
    table = render_table(
        ["zipf exponent", "E[fetches/round]", "sharing factor",
         "streams per 26 physical slots"],
        [[f"{e:g}", f"{f:.1f}", f"{s:.3f}", str(c)]
         for e, f, s, c in rows],
        title=f"A12: multicast sharing ({N_STREAMS} streams, "
        f"{OBJECTS} objects x {LENGTH} rounds)")
    footer = (f"\nevent-driven server, exponent 1.2, ~{mean_active:.0f} "
              f"active streams: measured sharing factor {measured:.3f} "
              f"vs model {predicted:.3f}")
    record("a12_multicast_sharing", table + footer)
    _emit.emit("a12_multicast_sharing", benchmark,
               measured_sharing=measured, predicted_sharing=predicted,
               **{f"capacity_zipf{e:g}": c for e, _, _, c in rows})

    factors = [r[2] for r in rows]
    capacities = [r[3] for r in rows]
    # More skew -> more sharing -> more admitted streams.
    assert factors == sorted(factors, reverse=True)
    assert capacities == sorted(capacities)
    assert capacities[-1] > capacities[0]
    # Model matches the real server within sampling noise.
    assert abs(measured - predicted) / predicted < 0.15
