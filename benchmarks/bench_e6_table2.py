"""E6: Table 2 -- p_error, analytic vs simulated, N = 28..32.

Paper's Table 2 (M = 1200, g = 12, t = 1 s):

    N   analytic   simulated
    28  0.00014    0
    29  0.318      0
    30  1          0
    31  1          0.00678
    32  1          0.454

Shape to reproduce: the analytic bound saturates to 1 by N = 30 while
the simulated system first shows stream-level errors at N = 31 and
degrades massively at N = 32 -- the analytic admission limit (28) gives
away three streams against the simulated truth (31).

The simulated column comes from
:func:`repro.parallel.sweep_p_error_parallel`: every (point, run)
stream lifetime of the grid feeds one worker pool, with per-point seeds
``2000 + n`` matching the historical per-point loop exactly.
"""

import os
import time

from repro.analysis import ComparisonRow, comparison_table
from repro.core import GlitchModel, RoundServiceTimeModel, n_max_perror
from repro.parallel import sweep_p_error_parallel

M = 1200
G = 12
T = 1.0
RUNS = 150
#: Worker processes for the per-stream lifetimes; bit-identical to the
#: serial loop for any value (per-run SeedSequence children).
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
N_RANGE = (28, 29, 30, 31, 32)
PAPER = {28: (0.00014, 0.0), 29: (0.318, 0.0), 30: (1.0, 0.0),
         31: (1.0, 0.00678), 32: (1.0, 0.454)}


def run_table2(spec, sizes):
    model = RoundServiceTimeModel.for_disk(spec, sizes)
    glitch = GlitchModel(model, t=T)
    sims = sweep_p_error_parallel(spec, sizes, N_RANGE, T, M, G,
                                  runs=RUNS,
                                  seeds=[2000 + n for n in N_RANGE],
                                  jobs=JOBS)
    rows = [ComparisonRow(label=str(n), analytic=glitch.p_error(n, M, G),
                          simulated=sim.p_error, ci_low=sim.ci_low,
                          ci_high=sim.ci_high)
            for n, sim in zip(N_RANGE, sims)]
    return rows, n_max_perror(glitch, M, G, 0.01)


def test_e6_table2(benchmark, viking, paper_sizes, record, record_json):
    start = time.perf_counter()
    rows, analytic_nmax = benchmark.pedantic(
        run_table2, args=(viking, paper_sizes), rounds=1, iterations=1)
    wall_clock = time.perf_counter() - start
    simulated_nmax = max((int(r.label) for r in rows
                          if r.simulated <= 0.01), default=0)
    table = comparison_table(
        rows, title=f"E6: Table 2 -- p_error (M={M}, g={G}, "
        f"{RUNS} runs/point)")
    footer = (f"\nN_max at eps=1%: analytic={analytic_nmax} (paper: 28), "
              f"simulated={simulated_nmax} (paper: 31)\n"
              "note: our simulated p_error(31) ~ 0.013 vs the paper's "
              "0.00678 -- same 'first errors at N=31' shape, but the "
              "value straddles the 1% threshold, so the derived N_max "
              "can land at 30 or 31 depending on simulator details.")
    record("e6_table2", table + footer)
    record_json("e6_table2", {
        "wall_clock_s": wall_clock,
        "jobs": JOBS,
        "host_cores": os.cpu_count(),
        "points": len(rows),
        "runs_per_point": RUNS,
        "analytic_nmax": analytic_nmax,
        "simulated_nmax": simulated_nmax,
    })

    by_n = {int(r.label): r for r in rows}
    # Analytic column: tiny at 28, ~0.3 at 29, saturated from 30.
    assert by_n[28].analytic < 1e-3
    assert 0.05 < by_n[29].analytic < 0.8
    assert by_n[30].analytic == 1.0
    # Simulated column: clean through 30, first errors at 31, collapse
    # at 32.
    assert by_n[28].simulated == 0.0
    assert by_n[29].simulated == 0.0
    assert by_n[30].simulated <= 0.005
    assert 0.0 < by_n[31].simulated < 0.1
    assert by_n[32].simulated > 0.2
    assert analytic_nmax == 28
    assert simulated_nmax in (30, 31)
    assert all(row.conservative for row in rows)
