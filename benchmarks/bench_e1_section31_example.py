"""E1: §3.1 worked example -- single-zone Chernoff bounds.

Paper numbers: SEEK(27) = 0.10932 s, E[T_trans] = 0.02174 s,
Var[T_trans] = 0.00011815 s^2, p_late(27, 1s) ~ 0.0103,
p_late(26, 1s) ~ 0.00225, N_max^plate(delta=0.01) = 26.
"""

import _emit
from repro.analysis import render_table
from repro.core import RoundServiceTimeModel, n_max_plate, oyang_seek_bound


def run_example(spec, sizes):
    model = RoundServiceTimeModel.for_disk(spec, sizes, multizone=False)
    return {
        "seek_27": oyang_seek_bound(spec.seek_curve, spec.cylinders, 27),
        "e_trans": model.transfer.mean(),
        "var_trans": model.transfer.var(),
        "p_late_27": model.b_late(27, 1.0),
        "p_late_26": model.b_late(26, 1.0),
        "n_max": n_max_plate(model, 1.0, 0.01),
    }


def test_e1_section31_example(benchmark, viking_single_zone, paper_sizes,
                              record):
    result = benchmark(run_example, viking_single_zone, paper_sizes)
    table = render_table(
        ["quantity", "paper", "reproduced"],
        [
            ["SEEK(27) [s]", "0.10932", f"{result['seek_27']:.5f}"],
            ["E[T_trans] [s]", "0.02174", f"{result['e_trans']:.5f}"],
            ["Var[T_trans] [s^2]", "0.00011815",
             f"{result['var_trans']:.8f}"],
            ["p_late(27, 1s)", "~0.0103", f"{result['p_late_27']:.5f}"],
            ["p_late(26, 1s)", "~0.00225", f"{result['p_late_26']:.5f}"],
            ["N_max^plate (delta=1%)", "26", str(result["n_max"])],
        ],
        title="E1: Section 3.1 worked example (single-zone disk)")
    record("e1_section31_example", table)
    _emit.emit("e1_section31_example", benchmark, n_max=result["n_max"],
               p_late_27=result["p_late_27"],
               p_late_26=result["p_late_26"])
    assert result["n_max"] == 26
    assert abs(result["p_late_27"] - 0.0103) / 0.0103 < 0.15
