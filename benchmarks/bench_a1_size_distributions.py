"""A1: ablation -- fragment-size law (Gamma vs Lognormal vs Pareto).

§3.1: "the following derivation can be carried out also with other
distributions of the data fragment size (i.e., other heavy-tailed
distributions such as Pareto or Lognormal) as long as we can derive (or
approximate) the corresponding Laplace-Stieltjes transform."

All three laws are moment-matched to Table 1 (mean 200 KB, sd 100 KB);
the heavy-tailed ones are truncated at 2 MB (one round of roughly the
innermost-zone bandwidth) to obtain MGFs, and their Chernoff pipeline
runs through the numeric-quadrature transform.
"""

import numpy as np

import _emit
from repro.analysis import format_probability, render_table
from repro.core import RoundServiceTimeModel, n_max_plate
from repro.server.simulation import estimate_p_late
from repro.workload.fragmentsize import (
    lognormal_fragment_sizes,
    paper_fragment_sizes,
    truncated_pareto_fragment_sizes,
)

CAP = 2_000_000.0
T = 1.0
N_PROBE = 27


def run_ablation(spec):
    laws = {
        "Gamma": paper_fragment_sizes(),
        "Lognormal (capped 2MB)": lognormal_fragment_sizes(
            200_000.0, 100_000.0, cap=CAP),
        "Pareto (capped 2MB)": truncated_pareto_fragment_sizes(
            200_000.0, 100_000.0, cap=CAP),
    }
    rows = []
    for name, law in laws.items():
        model = RoundServiceTimeModel.for_disk(spec, law)
        analytic = model.b_late(N_PROBE, T)
        sim = estimate_p_late(spec, law, N_PROBE, T, rounds=20_000,
                              seed=hash(name) % 10_000)
        rows.append((name, law.mean(), law.std(), analytic, sim.p_late,
                     n_max_plate(model, T, 0.01)))
    return rows


def test_a1_size_distributions(benchmark, viking, record):
    rows = benchmark.pedantic(run_ablation, args=(viking,), rounds=1,
                              iterations=1)
    table = render_table(
        ["size law", "mean [KB]", "sd [KB]", f"b_late({N_PROBE})",
         f"sim p_late({N_PROBE})", "N_max(1%)"],
        [[name, f"{mean / 1e3:.1f}", f"{std / 1e3:.1f}",
          format_probability(analytic), format_probability(sim),
          str(nmax)]
         for name, mean, std, analytic, sim, nmax in rows],
        title="A1: fragment-size law ablation (Table 1 disk, t=1s)")
    record("a1_size_distributions", table)
    _emit.emit("a1_size_distributions", benchmark,
               nmax_gamma=rows[0][5], nmax_lognormal=rows[1][5],
               nmax_pareto=rows[2][5])

    by_name = {r[0]: r for r in rows}
    # Conservative for every law.
    for name, _, _, analytic, sim, _ in rows:
        assert analytic >= sim, name
    # All three admit a similar number of streams (moments dominate).
    nmaxes = [r[5] for r in rows]
    assert max(nmaxes) - min(nmaxes) <= 3
    assert by_name["Gamma"][5] == 26


def test_a1_truncation_cap_sensitivity(benchmark, viking, record):
    """The truncation cap is a modelling knob: a tighter cap trims the
    Pareto tail and admits slightly more streams."""

    def sweep():
        rows = []
        for cap in (0.5e6, 1e6, 2e6, 4e6):
            law = truncated_pareto_fragment_sizes(200_000.0, 100_000.0,
                                                  cap=cap)
            model = RoundServiceTimeModel.for_disk(viking, law)
            rows.append((cap, law.mean(), model.b_late(N_PROBE, T),
                         n_max_plate(model, T, 0.01)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["cap [MB]", "realised mean [KB]", f"b_late({N_PROBE})",
         "N_max(1%)"],
        [[f"{cap / 1e6:g}", f"{mean / 1e3:.1f}",
          format_probability(b), str(nmax)]
         for cap, mean, b, nmax in rows],
        title="A1b: Pareto truncation-cap sensitivity")
    record("a1_truncation_cap", table)
    _emit.emit("a1_truncation_cap", benchmark,
               **{f"nmax_cap{cap / 1e6:g}MB": nmax
                  for cap, _, _, nmax in rows})
    nmaxes = [r[3] for r in rows]
    assert nmaxes == sorted(nmaxes, reverse=True)
    assert np.all(np.diff([r[1] for r in rows]) > 0)  # mean grows w/ cap
