"""A19: extension -- fast-forward (trick-mode) provisioning.

§2.1 assumes users "consume complete objects (as opposed to
fast-forwarding)".  This bench prices that assumption: admission limits
when a fraction of viewers is in k-times scan mode (every fragment
fetched, displayed at speed), across FF shares and speeds.
"""

import _emit
from repro.analysis import render_table
from repro.core import RoundServiceTimeModel
from repro.core.trickmode import n_max_with_ff

T = 1.0
FRACTIONS = (0.0, 0.1, 0.2, 0.5)
SPEEDS = (2, 4)


def run_sweep(spec, sizes):
    model = RoundServiceTimeModel.for_disk(spec, sizes)
    rows = []
    for fraction in FRACTIONS:
        row = [fraction]
        for k in SPEEDS:
            row.append(n_max_with_ff(model, T, 0.01, fraction, k))
        rows.append(tuple(row))
    return rows


def test_a19_trickmode(benchmark, viking, paper_sizes, record):
    rows = benchmark.pedantic(run_sweep, args=(viking, paper_sizes),
                              rounds=1, iterations=1)
    table = render_table(
        ["FF share"] + [f"N_max @ {k}x scan" for k in SPEEDS],
        [[f"{fraction:.0%}"] + [str(v) for v in values]
         for fraction, *values in rows],
        title="A19: admission under fast-forward load (delta = 1%)")
    record("a19_trickmode", table)
    _emit.emit("a19_trickmode", benchmark,
               **{f"nmax_ff{fraction:g}_x{k}": v
                  for fraction, *values in rows
                  for k, v in zip(SPEEDS, values)})

    by_fraction = {fraction: values for fraction, *values in rows}
    assert by_fraction[0.0] == [26, 26]  # no FF: the paper's number
    # More FF or faster FF always costs streams, monotonically.
    for col in range(len(SPEEDS)):
        column = [by_fraction[f][col] for f in FRACTIONS]
        assert column == sorted(column, reverse=True)
    assert by_fraction[0.5][1] < 0.6 * by_fraction[0.0][1]
