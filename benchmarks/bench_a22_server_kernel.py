"""A22: perf -- vectorised farm sweep kernel vs the event-driven server.

The event-driven :func:`run_failover_scenario` walks every request of
every round through the simulation calendar: exact arm positions,
per-stream buffers, mid-sweep fault reactions.  The farm sweep kernel
(:func:`repro.server.simulation.simulate_farm_rounds`) replays the same
scenario -- all disks, the mirror-failover phases, the shedding
populations -- as batched NumPy sweeps.  This bench times both on the
same scenario and pins the kernel's speedup, and checks the two agree
statistically (the kernel's degraded phase must stay within the same
``delta`` the event-driven shed survivors meet).

``REPRO_BENCH_SMOKE=1`` shrinks the scenario so the CI regression leg
can run it in seconds; the speedup floor relaxes accordingly (constant
per-call overheads weigh more at small round counts).
"""

import os
import time

from repro.analysis import format_probability, render_table
from repro.core.farm import degraded_mode_n_max
from repro.server.faults import run_failover_scenario
from repro.server.simulation import simulate_farm_rounds

T = 1.0
DELTA = 0.01
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
ROUNDS = 60 if SMOKE else 300
FAIL_ROUND = 15 if SMOKE else 40
MIN_SPEEDUP = 3.0 if SMOKE else 10.0


def run_both(spec, sizes):
    """Time the identical failover scenario through both engines.

    The degraded-mode bound solve is pre-warmed outside the timed
    regions (both engines need it; the persistent cache would otherwise
    hand the second caller an unearned advantage).
    """
    healthy, failure_proof = degraded_mode_n_max(spec, sizes, T, DELTA)

    start = time.perf_counter()
    event = run_failover_scenario(spec, sizes, disks=2, t=T, delta=DELTA,
                                  rounds=ROUNDS, fail_round=FAIL_ROUND,
                                  shedding=True, seed=0)
    mid = time.perf_counter()
    kernel = simulate_farm_rounds(spec, sizes, disks=2,
                                  n_per_disk=healthy, t=T, rounds=ROUNDS,
                                  fail_round=FAIL_ROUND, shedding=True,
                                  degraded_n_max=failure_proof, seed=0)
    end = time.perf_counter()
    return event, kernel, mid - start, end - mid


def test_a22_server_kernel(benchmark, viking, paper_sizes, record,
                           record_json):
    event, kernel, event_s, kernel_s = benchmark.pedantic(
        run_both, args=(viking, paper_sizes), rounds=1, iterations=1)
    speedup = event_s / kernel_s

    degraded = kernel.phase("degraded")
    rows = [
        ["scenario rounds", str(ROUNDS), str(ROUNDS)],
        ["wall clock [s]", f"{event_s:.4f}", f"{kernel_s:.4f}"],
        ["kernel speedup", "1x", f"{speedup:.1f}x"],
        ["max survivor glitch rate / degraded glitch rate",
         format_probability(event.max_glitch_rate),
         format_probability(degraded.glitch_rate)],
        [f"within delta = {DELTA:g}",
         "yes" if event.within_bound else "NO",
         "yes" if degraded.glitch_rate <= DELTA else "NO"],
    ]
    record("a22_server_kernel", render_table(
        ["quantity", "event engine", "sweep kernel"], rows,
        title=f"A22: event engine vs farm sweep kernel "
        f"({ROUNDS} rounds{', smoke' if SMOKE else ''})"))
    record_json("a22_server_kernel", {
        "smoke": SMOKE,
        "rounds": ROUNDS,
        "event_seconds": event_s,
        "kernel_seconds": kernel_s,
        "speedup": speedup,
        "event_max_glitch_rate": event.max_glitch_rate,
        "kernel_degraded_glitch_rate": degraded.glitch_rate,
    })

    # The tentpole claim: batching the sweeps beats the event calendar
    # by an order of magnitude at paper scale.
    assert speedup >= MIN_SPEEDUP, (
        f"sweep kernel only {speedup:.1f}x faster than the event "
        f"engine (floor {MIN_SPEEDUP}x)")
    # Statistical agreement: both engines keep the shed survivor
    # within the degraded-mode tolerance.
    assert event.within_bound
    assert degraded.glitch_rate <= DELTA
