"""E4: §3.3 worked example -- per-stream glitch bound.

Paper: "for ... N = 28, a round length of t = 1 second, and streams
with M = 1200 rounds, the probability that an individual stream suffers
more than 12 glitches (i.e., 1 percent of M) is at most 0.14e-3."
"""

import _emit
from repro.analysis import format_probability, render_table
from repro.core import GlitchModel, RoundServiceTimeModel


def run_example(spec, sizes):
    model = RoundServiceTimeModel.for_disk(spec, sizes)
    glitch = GlitchModel(model, t=1.0)
    return {
        "b_glitch": glitch.b_glitch(28),
        "p_error_hr": glitch.p_error(28, 1200, 12),
        "p_error_exact": glitch.p_error_exact_tail(28, 1200, 12),
        "expected": glitch.expected_glitches(28, 1200),
    }


def test_e4_section33_example(benchmark, viking, paper_sizes, record):
    result = benchmark(run_example, viking, paper_sizes)
    table = render_table(
        ["quantity", "paper", "reproduced"],
        [
            ["b_glitch(28, 1s)", "-",
             format_probability(result["b_glitch"])],
            ["p_error(28, 1200, 12) Hagerup-Rueb", "0.00014",
             format_probability(result["p_error_hr"])],
            ["p_error via exact Binomial tail", "-",
             format_probability(result["p_error_exact"])],
            ["E[#glitches in 1200 rounds] bound", "-",
             f"{result['expected']:.2f}"],
        ],
        title="E4: Section 3.3 worked example (stream-level bound)")
    record("e4_section33_example", table)
    _emit.emit("e4_section33_example", benchmark,
               p_error_hr=result["p_error_hr"],
               p_error_exact=result["p_error_exact"],
               expected_glitches=result["expected"])
    # Same order of magnitude as the paper's 1.4e-4.
    assert 0.3e-4 < result["p_error_hr"] < 1e-3
    assert result["p_error_exact"] <= result["p_error_hr"]
