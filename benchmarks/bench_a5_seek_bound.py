"""A5: ablation -- slack of the Oyang equidistant-seek bound.

The analytic model charges every round the worst-case lumped seek
SEEK(N) of a single edge-anchored sweep.  Two questions:

1. Is SEEK(N) a true upper bound for what it models?  Yes -- the
   simulated *in-sweep* seek (monotone sweep, excluding the cross-round
   arm-repositioning hop) never exceeds it.
2. How much does the model ignore / give away?  The repositioning hop
   between rounds (which the bound does not cover and occasionally
   pushes the *total* per-round seek past SEEK(N)), and the slack of the
   equidistant worst case against random positions, translated into
   p_late terms by re-running the bound with the mean simulated seek.
"""

import numpy as np

import _emit
from repro.analysis import format_probability, render_table
from repro.core import RoundServiceTimeModel, oyang_seek_bound
from repro.server.simulation import simulate_rounds

T = 1.0
N_RANGE = (10, 20, 27, 40)


def run_ablation(spec, sizes):
    rows = []
    rng = np.random.default_rng(55)
    base = RoundServiceTimeModel.for_disk(spec, sizes)
    for n in N_RANGE:
        bound = oyang_seek_bound(spec.seek_curve, spec.cylinders, n)
        batch = simulate_rounds(spec, sizes, n, T, 5000, rng)
        sweep = batch.sweep_seek_times
        total = batch.seek_times
        mean_seek_model = RoundServiceTimeModel(
            seek_bound=lambda k, s=float(np.mean(total)): s, rot=spec.rot,
            transfer=base.transfer)
        rows.append({
            "n": n,
            "bound": bound,
            "sweep_max": float(np.max(sweep)),
            "total_mean": float(np.mean(total)),
            "total_max": float(np.max(total)),
            "over_bound": float(np.mean(total > bound)),
            "p_bound": base.b_late(n, T),
            "p_mean": mean_seek_model.b_late(n, T),
        })
    return rows


def test_a5_seek_bound(benchmark, viking, paper_sizes, record):
    rows = benchmark.pedantic(run_ablation, args=(viking, paper_sizes),
                              rounds=1, iterations=1)
    table = render_table(
        ["N", "SEEK(N) [ms]", "sweep max [ms]", "total mean [ms]",
         "total max [ms]", "P[total>SEEK]", "b_late w/ bound",
         "b_late w/ mean seek"],
        [[str(r["n"]), f"{1e3 * r['bound']:.1f}",
          f"{1e3 * r['sweep_max']:.1f}", f"{1e3 * r['total_mean']:.1f}",
          f"{1e3 * r['total_max']:.1f}", f"{r['over_bound']:.4f}",
          format_probability(r["p_bound"]),
          format_probability(r["p_mean"])] for r in rows],
        title="A5: Oyang seek bound vs simulated SCAN lumped seek "
        "(5000 rounds/point)")
    record("a5_seek_bound", table)
    _emit.emit("a5_seek_bound", benchmark,
               **{f"over_bound_n{r['n']}": r["over_bound"]
                  for r in rows})

    for r in rows:
        # The bound truly dominates what it models: the monotone sweep.
        assert r["sweep_max"] <= r["bound"] + 1e-12
        # Mean total seek (sweep + repositioning) still sits below it.
        assert r["total_mean"] < r["bound"]
        # The repositioning hop can push rare rounds past the bound,
        # but only marginally (< one full-stroke seek) and rarely.
        assert r["total_max"] <= r["bound"] + viking.seek_curve.max_time(
            viking.cylinders)
        assert r["over_bound"] < 0.05
        # Seek slack translates into p_late slack.
        assert r["p_mean"] <= r["p_bound"] + 1e-12

    # Relative slack shrinks as N grows (the sweep fills the disk).
    slacks = [(r["bound"] - r["total_mean"]) / r["bound"] for r in rows]
    assert slacks[0] > slacks[-1]
