"""E7: eq. (4.1) -- deterministic worst-case comparison.

Paper: T_rot^max = 8.34 ms, T_seek^max = 18 ms, T_trans^max = 71.7 ms
(99-percentile fragment at the innermost-zone rate) give N_max^wc = 10;
the optimistic variant (95-percentile at the mean zone rate,
T_trans^max = 41.9 ms) gives N_max^wc = 14.  Both are far below the
stochastic admission levels (26-28).
"""

import _emit
from repro.analysis import render_table
from repro.core import (
    GlitchModel,
    RoundServiceTimeModel,
    n_max_perror,
    n_max_plate,
    worst_case_n_max,
)
from repro.core.baselines import worst_case_components


def run_worstcase(spec, sizes):
    rot, seek, trans99 = worst_case_components(spec, sizes, 0.99, "min")
    _, _, trans95 = worst_case_components(spec, sizes, 0.95, "mean")
    model = RoundServiceTimeModel.for_disk(spec, sizes)
    glitch = GlitchModel(model, t=1.0)
    return {
        "components": (rot, seek, trans99, trans95),
        "wc_conservative": worst_case_n_max(1.0, rot, seek, trans99),
        "wc_optimistic": worst_case_n_max(1.0, rot, seek, trans95),
        "stochastic_plate": n_max_plate(model, 1.0, 0.01),
        "stochastic_perror": n_max_perror(glitch, 1200, 12, 0.01),
    }


def test_e7_worstcase(benchmark, viking, paper_sizes, record):
    result = benchmark(run_worstcase, viking, paper_sizes)
    rot, seek, trans99, trans95 = result["components"]
    table = render_table(
        ["admission policy", "paper", "reproduced"],
        [
            ["T_rot^max [ms]", "8.34", f"{1000 * rot:.2f}"],
            ["T_seek^max [ms]", "18", f"{1000 * seek:.2f}"],
            ["T_trans^max 99pct@Cmin [ms]", "71.7",
             f"{1000 * trans99:.1f}"],
            ["T_trans^max 95pct@mean [ms]", "41.9",
             f"{1000 * trans95:.1f}"],
            ["N_max^wc conservative", "10",
             str(result["wc_conservative"])],
            ["N_max^wc optimistic", "14", str(result["wc_optimistic"])],
            ["N_max stochastic (p_late<=1%)", "26",
             str(result["stochastic_plate"])],
            ["N_max stochastic (p_error<=1%)", "28",
             str(result["stochastic_perror"])],
        ],
        title="E7: eq. (4.1) worst-case vs stochastic admission")
    record("e7_worstcase", table)
    _emit.emit("e7_worstcase", benchmark,
               wc_conservative=result["wc_conservative"],
               wc_optimistic=result["wc_optimistic"],
               stochastic_plate=result["stochastic_plate"],
               stochastic_perror=result["stochastic_perror"])
    assert result["wc_conservative"] == 10
    assert result["wc_optimistic"] == 14
    assert result["stochastic_perror"] == 28
