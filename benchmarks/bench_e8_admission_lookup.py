"""E8: §5 admission lookup table.

"We suggest using a lookup table with precomputed values of N_max for
different tolerance thresholds of the glitch rate.  This scheme incurs
almost no run-time overhead."  The bench builds the table over a
threshold grid (the expensive, configuration-time step) and then times
the run-time probe, which must be sub-microsecond-ish.
"""

import time

import _emit
from repro.analysis import render_table
from repro.core import AdmissionTable, GlitchModel, RoundServiceTimeModel

PLATE_THRESHOLDS = (0.001, 0.005, 0.01, 0.05, 0.10)
PERROR_THRESHOLDS = (0.0001, 0.001, 0.01, 0.05, 0.10)


def build_table(spec, sizes):
    model = RoundServiceTimeModel.for_disk(spec, sizes)
    glitch = GlitchModel(model, t=1.0)
    table = AdmissionTable(glitch, m=1200, g=12)
    table.build(plate_thresholds=PLATE_THRESHOLDS,
                perror_thresholds=PERROR_THRESHOLDS)
    return table


def test_e8_build_lookup_table(benchmark, viking, paper_sizes, record):
    table = benchmark.pedantic(build_table, args=(viking, paper_sizes),
                               rounds=1, iterations=1)
    entries = table.entries()

    # The §5 run-time path: probing the prebuilt table.
    start = time.perf_counter()
    probes = 100_000
    for _ in range(probes):
        table.n_max_perror(0.01)
    probe_ns = (time.perf_counter() - start) / probes * 1e9

    rows = [["p_late <= " + f"{d:g}", str(n)]
            for d, n in sorted(entries["plate"].items())]
    rows += [["p_error <= " + f"{e:g}", str(n)]
             for e, n in sorted(entries["perror"].items())]
    rows.append(["run-time probe cost", f"{probe_ns:.0f} ns"])
    table_text = render_table(
        ["tolerance threshold", "N_max"], rows,
        title="E8: Section 5 admission lookup table "
        "(Table 1 disk, t=1s, M=1200, g=12)")
    record("e8_admission_lookup", table_text)
    _emit.emit("e8_admission_lookup", benchmark, probe_ns=probe_ns,
               nmax_plate_1pct=entries["plate"][0.01],
               nmax_perror_1pct=entries["perror"][0.01])

    assert entries["plate"][0.01] == 26
    assert entries["perror"][0.01] == 28
    # Thresholds order N_max monotonically.
    plate_values = [entries["plate"][d] for d in PLATE_THRESHOLDS]
    assert plate_values == sorted(plate_values)
    assert probe_ns < 50_000  # "almost no run-time overhead"
