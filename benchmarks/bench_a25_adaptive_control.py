"""A25: adaptive vs static admission under slow-disk drift.

The paper's guarantee ``p_error <= epsilon`` is proven for a *static*
operating point at nominal disk speed.  This bench drives two
otherwise-identical daemons through the same deterministic drift
trajectory -- healthy rounds, then a 1.25x slow-disk creep on every
disk -- and measures what each one's telemetry window reports:

* the **static** daemon keeps admitting ``N_max = 28`` per disk and
  its observed stream-error rate blows through ``epsilon``: every
  post-drift round it serves is a *violation round*;
* the **adaptive** daemon retunes (cached Chernoff re-solves at
  ``t/s``), converges to a drift-aware operating point, and its
  violation rounds stop.

Headline metrics:

``violation_ratio``
    ``(static_violation_rounds + 1) / (adaptive_violation_rounds + 1)``
    -- the gated metric (machine-independent: both trajectories are a
    pure function of the probe seed).  Bigger is better; the committed
    baseline fails the check if a regression lets the adaptive daemon
    accumulate violations it used to avoid.
``retunes``
    Controller decisions applied by the adaptive daemon (>= 1 or the
    loop never closed).
``tick_overhead_pct``
    Mean wall-clock of one measurement/control tick as a percentage of
    the round budget ``t`` -- the control plane must cost well under
    2% of the round it manages.  Admission calls never block on the
    loop at all (ticks sample and re-solve outside the daemon lock);
    ``admit_p50_us`` records the admission path staying in-memory fast.

``REPRO_BENCH_SMOKE=1`` shortens the drift phase; the controller needs
the same ~90 rounds to converge either way, so smoke keeps a margin
above that and full mode doubles it.
"""

import os
import time

from repro.analysis import render_table
from repro.serve import ServeConfig, ServeDaemon

import _emit

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
HEALTHY_ROUNDS = 30
DRIFT_ROUNDS = 160 if SMOKE else 320
DRIFT = 1.25
EPSILON = 0.01
SEED = 7
#: Window evidence needed before a round can count as a violation.
MIN_EVIDENCE_ROUNDS = 8


def _drive(adaptive: bool) -> dict:
    """One daemon through the shared drift trajectory; returns its
    violation count, retunes, and per-tick timing."""
    daemon = ServeDaemon(ServeConfig(disks=2, adaptive=adaptive,
                                     probe_seed=SEED))
    while daemon.controller.would_admit():
        daemon.admit()

    tick_seconds = []

    def tick():
        start = time.perf_counter()
        daemon.tick_round()
        tick_seconds.append(time.perf_counter() - start)

    for _ in range(HEALTHY_ROUNDS):
        tick()
    for disk in range(daemon.config.disks):
        daemon.fault("slow_disk", disk, factor=DRIFT)

    violations = 0
    for _ in range(DRIFT_ROUNDS):
        tick()
        window = daemon.control_state()["window"]
        if (window["rounds"] >= MIN_EVIDENCE_ROUNDS
                and window["observed_p_error"] > EPSILON):
            violations += 1

    state = daemon.control_state()
    snap = daemon.registry.snapshot()
    admit_hist = daemon.registry.histogram("serve_admit_seconds")
    return {
        "violations": violations,
        "final_p_error": state["window"]["observed_p_error"],
        "final_p_late": state["window"]["observed_p_late"],
        "effective_n_max": state["effective_n_max"],
        "retunes": int(snap["serve_retunes_total"]["value"]),
        "watchdog_trips": int(
            snap["serve_watchdog_trips_total"]["value"]),
        "mean_tick_s": sum(tick_seconds) / len(tick_seconds),
        "admit_mean_us": (admit_hist.sum / admit_hist.count) * 1e6,
    }


def run_adaptive_control():
    static = _drive(adaptive=False)
    adaptive = _drive(adaptive=True)
    t_budget = 1.0
    return {
        "static": static,
        "adaptive": adaptive,
        "violation_ratio": (static["violations"] + 1)
        / (adaptive["violations"] + 1),
        "tick_overhead_pct": 100.0 * adaptive["mean_tick_s"] / t_budget,
    }


def test_a25_adaptive_control(benchmark, record, record_json):
    stats = benchmark.pedantic(run_adaptive_control, rounds=1,
                               iterations=1)
    static, adaptive = stats["static"], stats["adaptive"]

    rows = [
        ["violation rounds", str(static["violations"]),
         str(adaptive["violations"])],
        ["final observed p_error", f"{static['final_p_error']:.3g}",
         f"{adaptive['final_p_error']:.3g}"],
        ["final observed p_late", f"{static['final_p_late']:.3g}",
         f"{adaptive['final_p_late']:.3g}"],
        ["final N_max per disk", str(static["effective_n_max"]),
         str(adaptive["effective_n_max"])],
        ["retunes (watchdog)",
         f"{static['retunes']} ({static['watchdog_trips']})",
         f"{adaptive['retunes']} ({adaptive['watchdog_trips']})"],
        ["mean tick [ms]", f"{static['mean_tick_s'] * 1e3:.2f}",
         f"{adaptive['mean_tick_s'] * 1e3:.2f}"],
        ["admit latency [us]", f"{static['admit_mean_us']:.1f}",
         f"{adaptive['admit_mean_us']:.1f}"],
    ]
    record("a25_adaptive_control", render_table(
        ["quantity", "static", "adaptive"], rows,
        title=f"A25: closed-loop control under {DRIFT}x slow-disk "
        f"drift ({DRIFT_ROUNDS} drift rounds"
        f"{', smoke' if SMOKE else ''})"))
    record_json("a25_adaptive_control", {
        "smoke": SMOKE,
        "drift": DRIFT,
        "drift_rounds": DRIFT_ROUNDS,
        "static_violations": static["violations"],
        "adaptive_violations": adaptive["violations"],
        "violation_ratio": stats["violation_ratio"],
        "retunes": adaptive["retunes"],
        "tick_overhead_pct": stats["tick_overhead_pct"],
    })
    _emit.emit(
        "a25_adaptive_control", benchmark,
        violation_ratio=stats["violation_ratio"],
        static_violations=static["violations"],
        adaptive_violations=adaptive["violations"],
        static_final_p_error=static["final_p_error"],
        adaptive_final_p_error=adaptive["final_p_error"],
        retunes=adaptive["retunes"],
        watchdog_trips=adaptive["watchdog_trips"],
        tick_overhead_pct=stats["tick_overhead_pct"],
        adaptive_n_max=adaptive["effective_n_max"])

    # The acceptance triangle: static provably violates, adaptive
    # retunes and holds, and the loop is cheap.
    assert static["violations"] > 0
    assert static["final_p_error"] > EPSILON
    assert adaptive["retunes"] >= 1
    assert adaptive["final_p_error"] <= EPSILON
    assert adaptive["violations"] < static["violations"]
    assert stats["tick_overhead_pct"] < 2.0, (
        f"control tick costs {stats['tick_overhead_pct']:.2f}% of the "
        f"round budget (cap 2%)")
