"""Machine-readable benchmark emission: ``BENCH_<name>.json``.

Every bench writes its human-readable table through the ``record``
fixture; this helper is the companion channel for the headline
*numbers* (wall-clock, speedups, admitted-stream counts, bound/observed
probabilities) so trend tracking never has to parse rendered tables.
One JSON file per bench in ``benchmarks/results/``, schema-stamped,
scalars only.

Usage inside a bench::

    import _emit

    def test_a1_...(benchmark, viking, record):
        rows = benchmark.pedantic(run, ...)
        record("a1_...", table)
        _emit.emit("a1_...", benchmark, n_max=rows[-1].n_max)

The ``benchmark`` argument is optional; when given, the pedantic
timing is included as ``wall_clock_s``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Bump when the payload envelope changes shape.
SCHEMA_VERSION = 1


def bench_seconds(benchmark) -> float | None:
    """Mean wall-clock of a finished pytest-benchmark fixture, or
    ``None`` when timing is unavailable (e.g. ``--benchmark-disable``)."""
    try:
        return float(benchmark.stats.stats.mean)
    except (AttributeError, TypeError):
        return None


def payload(benchmark=None, **metrics) -> dict:
    """The standard envelope: schema stamp, host shape, bench timing,
    then the caller's headline metrics."""
    data: dict = {"schema": SCHEMA_VERSION, "host_cores": os.cpu_count()}
    if benchmark is not None:
        seconds = bench_seconds(benchmark)
        if seconds is not None:
            data["wall_clock_s"] = seconds
    data.update(metrics)
    return data


def emit(name: str, benchmark=None, **metrics) -> Path:
    """Write ``benchmarks/results/BENCH_<name>.json`` and echo the path."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(payload(benchmark, **metrics), indent=2,
                   sort_keys=True, default=str) + "\n",
        encoding="utf-8")
    print(f"[metrics written to {path}]")
    return path
