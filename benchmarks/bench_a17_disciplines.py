"""A17: comparator -- disk scheduling disciplines inside a round.

§2.3 picks SCAN "in order to minimize disk seeks".  This bench
quantifies the choice: for the Table 1 batch size, the lumped seek cost
and the resulting round-overrun probability under FIFO, SSTF, C-SCAN
and SCAN, Monte-Carlo'd over sector-uniform batches.
"""

import numpy as np

import _emit
from repro.analysis import format_probability, render_table
from repro.disk import DiskRequest
from repro.disk.scan import (
    order_cscan,
    order_fifo,
    order_scan,
    order_sstf,
)

T = 1.0
N = 27
BATCHES = 4000


def _batch_cost(curve, arm, ordered):
    cylinders = np.array([r.cylinder for r in ordered], dtype=float)
    hops = np.concatenate(([abs(cylinders[0] - arm)],
                           np.abs(np.diff(cylinders))))
    return float(np.sum(curve(hops))), int(cylinders[-1])


def run_comparison(spec, sizes):
    rng = np.random.default_rng(7)
    rot = spec.rot

    def scan_elevator(reqs, arm, parity):
        return order_scan(reqs, ascending=(parity % 2 == 0))

    disciplines = {
        "FIFO": lambda reqs, arm, parity: order_fifo(reqs),
        "SSTF": lambda reqs, arm, parity: order_sstf(reqs, arm),
        "C-SCAN": lambda reqs, arm, parity: order_cscan(reqs),
        "SCAN (paper)": scan_elevator,
    }
    seek_sums = {name: np.empty(BATCHES) for name in disciplines}
    late = {name: 0 for name in disciplines}
    arms = {name: 0 for name in disciplines}

    for b in range(BATCHES):
        cylinders = spec.geometry.sample_cylinder(rng, size=N)
        requests = [DiskRequest(stream_id=i, size=1.0, cylinder=int(c))
                    for i, c in enumerate(cylinders)]
        # Shared non-seek time components across disciplines: isolates
        # the ordering effect.
        rotation = float(np.sum(rng.uniform(0.0, rot, size=N)))
        sizes_draw = np.asarray(sizes.sample(rng, N))
        rates = np.asarray(spec.geometry.rate_of_cylinder(cylinders))
        transfer = float(np.sum(sizes_draw / rates))
        for name, order in disciplines.items():
            ordered = order(requests, arms[name], b)
            seek, end = _batch_cost(spec.seek_curve, arms[name], ordered)
            arms[name] = end
            seek_sums[name][b] = seek
            if seek + rotation + transfer > T:
                late[name] += 1

    return [(name, float(np.mean(seek_sums[name])),
             float(np.quantile(seek_sums[name], 0.99)),
             late[name] / BATCHES) for name in disciplines]


def test_a17_disciplines(benchmark, viking, paper_sizes, record):
    rows = benchmark.pedantic(run_comparison, args=(viking, paper_sizes),
                              rounds=1, iterations=1)
    table = render_table(
        ["discipline", "mean lumped seek [ms]", "p99 seek [ms]",
         f"sim p_late({N})"],
        [[name, f"{1e3 * mean:.1f}", f"{1e3 * p99:.1f}",
          format_probability(p)] for name, mean, p99, p in rows],
        title=f"A17: scheduling disciplines, N={N} requests/round "
        f"({BATCHES} batches)")
    record("a17_disciplines", table)
    _emit.emit("a17_disciplines", benchmark,
               **{"mean_seek_ms_" + name.split(" ")[0].replace("-", "").lower():
                  1e3 * mean for name, mean, _, _ in rows})

    by_name = dict((name, (mean, p99, p)) for name, mean, p99, p in rows)
    scan_mean = by_name["SCAN (paper)"][0]
    # SCAN minimises seeks; C-SCAN pays the fly-back; FIFO pays
    # ~2.3x more seek time and two orders of magnitude worse lateness.
    assert scan_mean <= by_name["SSTF"][0] * 1.05
    assert scan_mean < by_name["C-SCAN"][0]
    assert by_name["FIFO"][0] > 2 * scan_mean
    assert by_name["FIFO"][2] > 50 * by_name["SCAN (paper)"][2]
