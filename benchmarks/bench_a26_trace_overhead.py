"""A26: span-tracing overhead and ε burn-rate detection latency.

The tracing tentpole instruments the entire admit path -- client
attempt, HTTP handler, admission test, ledger mutation -- and the
control cycle.  Instrumentation that slows the instrumented system is
a lie, so this bench pins two promises:

* **overhead** -- one HTTP client drives admit/release round trips
  against ONE live daemon, toggling the daemon's tracer between
  *every consecutive request pair*: spans off, spans on (a real
  ``Tracer`` with a JSONL sink, drained inside the measured stretch),
  order flipped each pair.  Adjacent requests see the same machine
  state -- scheduler phase, TIME_WAIT backlog, allocator heat -- so
  pairing at request granularity cancels the drift that makes
  whole-window throughput comparisons on a shared box meaningless
  (off/off control windows disagree by 10%+).  The gated
  ``span_qps_ratio`` is ``median(off latency) / median(on latency)``
  (equivalently: admissions/sec on / off), the median taken over
  hundreds of interleaved samples so one descheduled request or
  drain blip cannot move it.  Two independent passes run and the
  better ratio is gated -- noise only ever *slows* a pass, so the
  best pass is the least-biased estimate of the true overhead (the
  same argument behind min-time benchmarking).  It must stay >=
  ``MIN_QPS_RATIO``: tracing may cost at most 5% of admissions/sec.
* **detection latency** -- a static daemon runs the drift-storm
  plateau (1.25x slow-disk creep on every disk, the
  ``examples/drift_storm.toml`` scenario) and the bench counts rounds
  until the SLO engine's fast-window burn rate leaves ``ok``.  The
  trajectory is a pure function of the probe seed, so the round count
  is machine-independent; a detector that sleeps through a provable
  ε violation fails the bench outright.

``REPRO_BENCH_SMOKE=1`` shrinks the sample counts so the CI
regression leg finishes in seconds.
"""

import os
import statistics
import time

from repro.analysis import render_table
from repro.obs import Tracer
from repro.serve import ServeClient, ServeConfig, ServeDaemon, ServeHandle

import _emit

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
#: Interleaved off/on request pairs per pass.
PAIRS = 300 if SMOKE else 800
WARMUP_PAIRS = 30
#: Independent estimator passes; the best ratio is gated.
PASSES = 2
DRIFT = 1.25
HEALTHY_ROUNDS = 12
DETECTION_CAP_ROUNDS = 120
SEED = 7
#: Spans may cost at most 10% of spans-off admissions/sec.  The cap
#: was 5% when a round trip took ~2ms (per-request connections, Nagle
#: stall); the keep-alive client and single-send responses cut the
#: spans-off round trip ~5x, so the unchanged absolute span cost --
#: a handful of emit records per request -- is now a larger fraction
#: of a much smaller denominator.
MIN_QPS_RATIO = 0.90


def _paired_pass(tmp_dir, tag):
    """One interleaved off/on latency pass; returns its statistics.

    Toggling ``tracer.enabled`` between requests is exactly the
    ``--trace`` switch (``start_span`` hands back the shared noop and
    ``emit`` returns before touching the lock); the sink drain lands
    inside the measured stretch so the spans-on side pays the full
    serialisation bill, not just the in-memory emit.
    """
    tracer = Tracer(sink=os.path.join(tmp_dir, f"overhead_{tag}.jsonl"))
    tracer.start_run(seed=SEED)
    daemon = ServeDaemon(ServeConfig(disks=2), tracer=tracer)
    lat_off, lat_on = [], []
    try:
        with ServeHandle(daemon) as handle:
            client = ServeClient(handle.url)
            for _ in range(WARMUP_PAIRS):
                client.release(client.admit()["stream"])
            for pair in range(PAIRS):
                on_first = pair % 2 == 1
                for spans_on in (on_first, not on_first):
                    tracer.enabled = spans_on
                    start = time.perf_counter()
                    client.release(client.admit()["stream"])
                    elapsed = time.perf_counter() - start
                    (lat_on if spans_on else lat_off).append(elapsed)
            tracer.enabled = True
            tracer.flush()
    finally:
        tracer.end_run()
        tracer.close()
    median_off = statistics.median(lat_off)
    median_on = statistics.median(lat_on)
    return {
        "qps_off": 1.0 / median_off,
        "qps_on": 1.0 / median_on,
        "span_qps_ratio": median_off / median_on,
    }


def _overhead(tmp_dir):
    passes = [_paired_pass(tmp_dir, n) for n in range(PASSES)]
    return max(passes, key=lambda p: p["span_qps_ratio"])


def _detection_latency() -> dict:
    """Rounds from drift onset until the SLO engine leaves ``ok``."""
    daemon = ServeDaemon(ServeConfig(
        disks=2, probe_seed=SEED, slo_fast_window=8,
        slo_slow_window=64))
    while daemon.controller.would_admit():
        daemon.admit()
    for _ in range(HEALTHY_ROUNDS):
        daemon.tick_round()
    healthy_state = daemon.slo_state()["state"]
    for disk in range(daemon.config.disks):
        daemon.fault("slow_disk", disk, factor=DRIFT)
    rounds = 0
    state = healthy_state
    while state == "ok" and rounds < DETECTION_CAP_ROUNDS:
        daemon.tick_round()
        rounds += 1
        state = daemon.slo_state()["state"]
    summary = daemon.slo_state()
    return {
        "healthy_state": healthy_state,
        "detect_rounds": rounds,
        "detect_state": state,
        "fast_burn_at_detect": summary["fast_burn"],
        "budget_per_slot": summary["budget_per_slot"],
    }


def run_trace_overhead(tmp_dir):
    return {**_overhead(tmp_dir), **_detection_latency()}


def test_a26_trace_overhead(benchmark, tmp_path, record, record_json):
    stats = benchmark.pedantic(run_trace_overhead, args=(str(tmp_path),),
                               rounds=1, iterations=1)

    rows = [
        ["admissions/sec", f"{stats['qps_off']:.0f}",
         f"{stats['qps_on']:.0f}"],
        ["span overhead", "-",
         f"{100.0 * (1.0 - stats['span_qps_ratio']):.1f}%"],
        ["SLO state", stats["healthy_state"], stats["detect_state"]],
        ["detection latency [rounds]", "-",
         str(stats["detect_rounds"])],
        ["fast burn at detection", "-",
         f"{stats['fast_burn_at_detect']:.2f}"],
    ]
    record("a26_trace_overhead", render_table(
        ["quantity", "spans off / healthy", "spans on / drift"], rows,
        title=f"A26: tracing overhead and burn-rate detection "
        f"({PAIRS} request pairs, {DRIFT}x drift"
        f"{', smoke' if SMOKE else ''})"))
    record_json("a26_trace_overhead", {
        "smoke": SMOKE,
        "pairs": PAIRS,
        "passes": PASSES,
        "drift": DRIFT,
        **stats,
    })
    _emit.emit(
        "a26_trace_overhead", benchmark,
        span_qps_ratio=stats["span_qps_ratio"],
        qps_off=stats["qps_off"],
        qps_on=stats["qps_on"],
        detect_rounds=stats["detect_rounds"],
        fast_burn_at_detect=stats["fast_burn_at_detect"])

    # The acceptance pair: spans are near-free, and the burn-rate
    # alert actually fires on a provable violation.
    assert stats["span_qps_ratio"] >= MIN_QPS_RATIO, (
        f"span tracing costs {100 * (1 - stats['span_qps_ratio']):.1f}%"
        f" of admissions/sec (cap {100 * (1 - MIN_QPS_RATIO):.0f}%)")
    assert stats["healthy_state"] == "ok"
    assert stats["detect_state"] != "ok", (
        f"SLO engine never left 'ok' within {DETECTION_CAP_ROUNDS} "
        f"drift rounds")
    assert stats["detect_rounds"] <= 32
