"""A24: perf -- compiled fault-storm scenarios on the sweep kernel.

A22 pinned the kernel's speedup on the one scenario shape the old
``simulate_farm_rounds`` could express (single failure, single
recovery).  The scenario compiler (:mod:`repro.server.scenario`)
removes that restriction: an arbitrary :class:`FaultSchedule` -- here a
fault *storm* mixing a disk failure, a farm-wide recalibration storm
and a recovery -- compiles to constant-state phase batches priced by
the same vectorised kernel.  This bench times the storm through the
event engine and through ``compile_scenario``/``simulate_scenario``,
pins the kernel speedup, checks statistical agreement, and compares
the ``threads`` parallel transport against the fork-based ``shm``
transport on the identical compiled plan (bit-identical results are
asserted, the timing ratio is emitted for trend tracking without a
floor -- thread scaling is GIL-bound for the NumPy-light phases).

The event leg runs under an in-memory :class:`Tracer` so the emission
also carries per-class fragment-latency histograms, the payload
``benchmarks/report.py`` collates.

``REPRO_BENCH_SMOKE=1`` shrinks the scenario so the CI regression leg
finishes in seconds; the speedup floor relaxes accordingly.
"""

import os
import time

from repro.analysis import format_probability, render_table
from repro.core.farm import degraded_mode_n_max
from repro.obs.telemetry import RunTelemetry
from repro.obs.trace import Tracer
from repro.server.faults import (FaultSchedule, SheddingPolicy, disk_fail,
                                 disk_recover, recalibration_storm,
                                 run_failover_scenario)
from repro.server.scenario import compile_scenario, simulate_scenario

T = 1.0
DELTA = 0.01
DISKS = 4
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
ROUNDS = 60 if SMOKE else 300
FAIL_ROUND = 10 if SMOKE else 40
RECOVER_ROUND = 40 if SMOKE else 200
MIN_SPEEDUP = 3.0 if SMOKE else 50.0
#: Histogram bucket edges as round-length multiples.
LATENCY_EDGES = (0.5, 1.0, 2.0, 4.0)


def storm_schedule() -> FaultSchedule:
    """Failure + farm-wide recalibration storm + recovery."""
    return FaultSchedule([
        disk_fail(FAIL_ROUND * T, disk=0),
        recalibration_storm((FAIL_ROUND + 5) * T, prob=0.3,
                            duration=10 * T, stall=0.05),
        disk_recover(RECOVER_ROUND * T, disk=0),
    ])


def run_both(spec, sizes):
    """Time the identical fault storm through both engines.

    The degraded-mode bound solve is pre-warmed outside the timed
    regions (both engines need it; the persistent cache would otherwise
    hand the second caller an unearned advantage).
    """
    healthy, failure_proof = degraded_mode_n_max(spec, sizes, T, DELTA)
    schedule = storm_schedule()
    tracer = Tracer(capacity=200_000)

    start = time.perf_counter()
    event = run_failover_scenario(
        spec, sizes, disks=DISKS, t=T, delta=DELTA, rounds=ROUNDS,
        schedule=schedule, shedding=True, seed=0, tracer=tracer)
    mid = time.perf_counter()
    compiled = compile_scenario(
        (spec,) * DISKS, sizes, n_per_disk=healthy, t=T, rounds=ROUNDS,
        schedule=schedule, policy=SheddingPolicy(failure_proof))
    kernel = simulate_scenario(compiled, seed=0)
    end = time.perf_counter()
    return (event, kernel, compiled, tracer,
            mid - start, end - mid, healthy, failure_proof)


def transport_seconds(compiled, transport: str):
    """Wall clock of one 2-way parallel pricing of the compiled plan."""
    start = time.perf_counter()
    estimate = simulate_scenario(compiled, seed=0, jobs=2,
                                 transport=transport)
    return estimate, time.perf_counter() - start


def latency_histograms(tracer) -> dict:
    """Per-class fragment-latency histograms from the event-leg trace."""
    telemetry = RunTelemetry.from_records(tracer.records())
    bounds = [edge * T for edge in LATENCY_EDGES]
    return {
        entry.klass: {
            "bounds": bounds,
            "counts": entry.histogram(bounds),
            "mean": entry.mean,
            "count": entry.count,
        }
        for entry in telemetry.latency_summary()
    }


def test_a24_scenario_kernel(benchmark, viking, paper_sizes, record,
                             record_json):
    (event, kernel, compiled, tracer, event_s, kernel_s,
     healthy, failure_proof) = benchmark.pedantic(
        run_both, args=(viking, paper_sizes), rounds=1, iterations=1)
    speedup = event_s / kernel_s

    fork_est, fork_s = transport_seconds(compiled, "shm")
    threads_est, threads_s = transport_seconds(compiled, "threads")
    assert threads_est.per_disk == fork_est.per_disk, (
        "threads transport diverged from shm on the identical plan")
    threads_vs_fork = fork_s / threads_s

    degraded = [phase for phase in kernel.phases
                if phase.name.startswith("degraded")]
    worst_kernel = max((phase.glitch_rate for phase in degraded),
                       default=0.0)
    rows = [
        ["scenario rounds", str(ROUNDS), str(ROUNDS)],
        ["phases", "event calendar", str(len(kernel.phases))],
        ["wall clock [s]", f"{event_s:.4f}", f"{kernel_s:.4f}"],
        ["kernel speedup", "1x", f"{speedup:.1f}x"],
        ["max survivor / worst degraded glitch rate",
         format_probability(event.max_glitch_rate),
         format_probability(worst_kernel)],
        [f"within delta = {DELTA:g}",
         "yes" if event.within_bound else "NO",
         "yes" if worst_kernel <= DELTA else "NO"],
        ["threads vs fork (jobs=2)", "-", f"{threads_vs_fork:.2f}x"],
    ]
    record("a24_scenario_kernel", render_table(
        ["quantity", "event engine", "scenario kernel"], rows,
        title=f"A24: fault storm, event engine vs scenario compiler "
        f"({DISKS} disks, {ROUNDS} rounds{', smoke' if SMOKE else ''})"))
    record_json("a24_scenario_kernel", {
        "smoke": SMOKE,
        "rounds": ROUNDS,
        "disks": DISKS,
        "n_per_disk": healthy,
        "degraded_n_max": failure_proof,
        "phases": len(kernel.phases),
        "event_seconds": event_s,
        "kernel_seconds": kernel_s,
        "speedup": speedup,
        "threads_seconds": threads_s,
        "fork_seconds": fork_s,
        "threads_vs_fork": threads_vs_fork,
        "event_max_glitch_rate": event.max_glitch_rate,
        "kernel_worst_degraded_glitch_rate": worst_kernel,
        "latency_histograms": latency_histograms(tracer),
    })

    # The tentpole claim: storms no longer need the event calendar --
    # the compiled plan beats it by the same order of magnitude A22
    # pinned for the plain failover.
    assert speedup >= MIN_SPEEDUP, (
        f"scenario kernel only {speedup:.1f}x faster than the event "
        f"engine (floor {MIN_SPEEDUP}x)")
    # Statistical agreement: both engines keep shed survivors within
    # the degraded-mode tolerance through the storm.
    assert event.within_bound
    assert worst_kernel <= DELTA
