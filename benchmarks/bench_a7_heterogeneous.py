"""A7: extension -- heterogeneous stream classes.

"Variable display bandwidth both across different streams and within a
single stream" (abstract).  An audio/SD/HD class mix is pushed through
the mixture-transform pipeline; admission counts and bounds are checked
against class-mixed simulation.
"""

import numpy as np

import _emit
from repro.analysis import format_probability, render_table
from repro.core import n_max_plate
from repro.core.heterogeneous import (
    StreamClass,
    class_mixture_model,
    fixed_mix_p_late,
)
from repro.distributions import Gamma, Mixture
from repro.server.simulation import estimate_p_late

T = 1.0
CLASSES = [
    StreamClass("audio", Gamma.from_mean_std(64_000.0, 20_000.0),
                share=0.4),
    StreamClass("sd-video", Gamma.from_mean_std(200_000.0, 100_000.0),
                share=0.4),
    StreamClass("hd-video", Gamma.from_mean_std(450_000.0, 250_000.0),
                share=0.2),
]


def run_ablation(spec):
    rows = []
    for subset, label in [
        (CLASSES[:1], "audio only"),
        (CLASSES[1:2], "sd-video only"),
        (CLASSES[2:], "hd-video only"),
        (CLASSES, "40/40/20 mix"),
    ]:
        model = class_mixture_model(spec, subset)
        n_max = n_max_plate(model, T, 0.01)
        size_mixture = Mixture([(c.share, c.size_dist) for c in subset])
        sim = estimate_p_late(spec, size_mixture, max(n_max, 1), T,
                              rounds=15_000, seed=len(label))
        rows.append((label, n_max, model.b_late(max(n_max, 1), T),
                     sim.p_late))
    # Fixed-mix check at the mixed N_max.
    mixed_n = rows[-1][1]
    counts = {
        "audio": int(0.4 * mixed_n),
        "sd-video": int(0.4 * mixed_n),
    }
    counts["hd-video"] = mixed_n - sum(counts.values())
    fixed = fixed_mix_p_late(spec, counts, CLASSES, T)
    return rows, fixed, counts


def test_a7_heterogeneous(benchmark, viking, record):
    rows, fixed, counts = benchmark.pedantic(
        run_ablation, args=(viking,), rounds=1, iterations=1)
    table = render_table(
        ["workload", "N_max(1%)", "b_late(N_max)", "sim p_late(N_max)"],
        [[label, str(n), format_probability(b), format_probability(s)]
         for label, n, b, s in rows],
        title="A7: heterogeneous stream classes (Table 1 disk, t=1s)")
    footer = (f"\nfixed-mix bound at {counts}: "
              f"{format_probability(fixed)}")
    record("a7_heterogeneous", table + footer)
    _emit.emit("a7_heterogeneous", benchmark, fixed_mix_bound=fixed,
               **{f"nmax_{label.replace(' ', '_').replace('/', '_')}": n
                  for label, n, _, _ in rows})

    by_label = {r[0]: r for r in rows}
    # Light streams pack densest, heavy least, mix in between.
    assert (by_label["audio only"][1] > by_label["40/40/20 mix"][1]
            > by_label["hd-video only"][1])
    # Bounds conservative everywhere.
    for label, n, bound, sim in rows:
        assert bound >= sim, label
