"""A23: live daemon -- warm-start table build and admission QPS.

The ``repro serve`` daemon answers admissions from a precomputed
:class:`~repro.core.admission.AdmissionTable`, so its startup cost is
the bound solve and its steady-state cost is lock + ledger bookkeeping
per HTTP request.  This bench pins both ends:

* **cold vs warm build** -- construct the daemon against an empty
  persistent cache (every Chernoff bound solved from scratch), then
  again against the store the first build populated.  The warm build
  answers from sqlite via :meth:`PersistentCache.preload`, and the
  ratio is the gated ``speedup`` metric (machine-independent, so the
  committed baseline is meaningful across runners).
* **admission QPS** -- client threads hammer ``POST /admit`` +
  ``/release`` over real sockets, once against a healthy farm and once
  through a fault storm (a flipper thread injecting
  ``disk_fail``/``disk_recover`` while the clients churn).  The storm
  run asserts the daemon stays consistent under concurrent shedding.

``REPRO_BENCH_SMOKE=1`` shrinks the measurement windows so the CI
regression leg finishes in seconds.
"""

import os
import threading
import time

from repro import cache as cache_mod
from repro.analysis import render_table
from repro.errors import ConfigurationError
from repro.serve import ServeClient, ServeConfig, ServeDaemon, ServeHandle

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
CLIENTS = 4 if SMOKE else 8
WINDOW_S = 0.4 if SMOKE else 1.5
STORM_PERIOD_S = 0.02
#: The warm build answers every bound from the persistent store; even
#: in smoke windows it must beat the cold solve comfortably.
MIN_SPEEDUP = 3.0


def _build_cold_then_warm(tmp_dir):
    """Two daemon constructions against the same initially-empty cache
    directory; the session store is restored afterwards."""
    cache_mod.set_persistent_cache_dir(tmp_dir)
    try:
        cold = ServeDaemon(ServeConfig(disks=2))
        warm = ServeDaemon(ServeConfig(disks=2))
    finally:
        cache_mod.set_persistent_cache_dir(
            os.environ[cache_mod.CACHE_DIR_ENV])
    return cold, warm


def _drive_clients(url, window_s, stop_storm=None):
    """Run ``CLIENTS`` admit/release churners for ``window_s`` seconds;
    returns (admitted, attempts, elapsed)."""
    stop = threading.Event()
    counts = [0] * CLIENTS
    attempts = [0] * CLIENTS

    def churn(idx):
        client = ServeClient(url)
        while not stop.is_set():
            attempts[idx] += 1
            result = client.admit()
            if not result["admitted"]:
                continue
            counts[idx] += 1
            try:
                client.release(result["stream"])
            except ConfigurationError:
                pass  # ticket shed by the storm between admit and release

    pool = [threading.Thread(target=churn, args=(idx,))
            for idx in range(CLIENTS)]
    start = time.perf_counter()
    for thread in pool:
        thread.start()
    time.sleep(window_s)
    stop.set()
    if stop_storm is not None:
        stop_storm.set()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start
    return sum(counts), sum(attempts), elapsed


def run_serve_bench(tmp_dir):
    """Cold/warm builds, then steady and storm QPS windows."""
    cold, warm = _build_cold_then_warm(tmp_dir)

    with ServeHandle(warm) as handle:
        admitted, attempts, elapsed = _drive_clients(handle.url, WINDOW_S)
        steady_qps = admitted / elapsed

        storm_stop = threading.Event()

        def storm():
            client = ServeClient(handle.url)
            while not storm_stop.is_set():
                client.fault("disk_fail", 0)
                time.sleep(STORM_PERIOD_S)
                client.fault("disk_recover", 0)
                time.sleep(STORM_PERIOD_S)

        flipper = threading.Thread(target=storm)
        flipper.start()
        storm_admitted, storm_attempts, storm_elapsed = _drive_clients(
            handle.url, WINDOW_S, stop_storm=storm_stop)
        flipper.join()
        storm_qps = storm_admitted / storm_elapsed

        # Settle and check the ledger survived the storm intact.
        client = ServeClient(handle.url)
        client.fault("disk_recover", 0)
        state = client.state()
        consistent = (not state["controller"]["degraded"]
                      and 0 <= state["controller"]["active"]
                      <= state["controller"]["capacity"])
    return {
        "cold_build_s": cold.build_seconds,
        "warm_build_s": warm.build_seconds,
        "speedup": cold.build_seconds / warm.build_seconds,
        "steady_qps": steady_qps,
        "steady_admitted": admitted,
        "steady_attempts": attempts,
        "storm_qps": storm_qps,
        "storm_admitted": storm_admitted,
        "storm_attempts": storm_attempts,
        "consistent_after_storm": consistent,
    }


def test_a23_serve_qps(benchmark, tmp_path, record, record_json):
    stats = benchmark.pedantic(run_serve_bench, args=(tmp_path,),
                               rounds=1, iterations=1)

    rows = [
        ["table build [ms]", f"{stats['cold_build_s'] * 1e3:.1f}",
         f"{stats['warm_build_s'] * 1e3:.1f}"],
        ["warm-start speedup", "1x", f"{stats['speedup']:.1f}x"],
        ["admissions/sec", f"{stats['steady_qps']:.0f}",
         f"{stats['storm_qps']:.0f}"],
        ["admitted / attempts",
         f"{stats['steady_admitted']}/{stats['steady_attempts']}",
         f"{stats['storm_admitted']}/{stats['storm_attempts']}"],
        ["consistent after storm", "-",
         "yes" if stats["consistent_after_storm"] else "NO"],
    ]
    record("a23_serve_qps", render_table(
        ["quantity", "cold / steady", "warm / storm"], rows,
        title=f"A23: repro serve warm start and admission QPS "
        f"({CLIENTS} clients{', smoke' if SMOKE else ''})"))
    record_json("a23_serve_qps", {
        "smoke": SMOKE,
        "clients": CLIENTS,
        "window_s": WINDOW_S,
        **stats,
    })

    assert stats["speedup"] >= MIN_SPEEDUP, (
        f"warm-start build only {stats['speedup']:.1f}x faster than "
        f"cold (floor {MIN_SPEEDUP}x)")
    # The daemon must actually answer load, healthy and degraded alike.
    assert stats["steady_admitted"] > 0
    assert stats["storm_admitted"] > 0
    assert stats["consistent_after_storm"]
