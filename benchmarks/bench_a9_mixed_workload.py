"""A9: extension -- mixed continuous/discrete workloads (§6, [NMW97]).

Shares a disk between N continuous streams and a discrete (web-page)
workload.  Reports, per policy, the continuous glitch rate and the
discrete throughput -- demonstrating that continuous-first isolation
keeps the §3 guarantee intact while still moving substantial discrete
traffic through the leftover time.
"""

import numpy as np

import _emit
from repro.analysis import format_probability, render_table
from repro.core.mixed import MixedWorkloadModel
from repro.distributions import Gamma
from repro.server.mixed import simulate_mixed_rounds

T = 1.0
N = 26              # the paper's round-level admission point
K_VALUES = (0, 10, 25, 50)
ROUNDS = 3000


def run_ablation(spec, cont_sizes):
    disc_sizes = Gamma.from_mean_std(8_000.0, 8_000.0)
    model = MixedWorkloadModel(spec=spec, continuous_sizes=cont_sizes,
                               discrete_sizes=disc_sizes)
    rows = []
    for k in K_VALUES:
        for policy in ("integrated", "continuous-first"):
            if k == 0 and policy == "integrated":
                continue
            batch = simulate_mixed_rounds(
                spec, cont_sizes, disc_sizes, N, k, T, ROUNDS,
                np.random.default_rng(97 + k), policy=policy)
            analytic = (model.p_late_integrated(N, k, T)
                        if policy == "integrated"
                        else model.continuous_model().b_late(N, T))
            rows.append((policy, k, analytic,
                         batch.continuous_glitch_rate,
                         batch.mean_discrete_throughput))
    k_budget = model.max_discrete_integrated(N, T, 0.01)
    estimate = model.discrete_throughput_estimate(N, T)
    return rows, k_budget, estimate


def test_a9_mixed_workload(benchmark, viking, paper_sizes, record):
    rows, k_budget, estimate = benchmark.pedantic(
        run_ablation, args=(viking, paper_sizes), rounds=1, iterations=1)
    table = render_table(
        ["policy", "K discrete", "analytic cont. bound",
         "sim cont. glitch rate", "discrete served/round"],
        [[policy, str(k), format_probability(a), format_probability(s),
          f"{d:.1f}"] for policy, k, a, s, d in rows],
        title=f"A9: mixed workload at N={N} continuous (t=1s)")
    footer = (f"\nintegrated-policy discrete budget at delta=1%: "
              f"K={k_budget}; leftover-based throughput estimate: "
              f"{estimate:.1f}/round")
    record("a9_mixed_workload", table + footer)
    _emit.emit("a9_mixed_workload", benchmark, k_budget=k_budget,
               throughput_estimate=estimate)

    cf = {k: (a, s, d) for policy, k, a, s, d in rows
          if policy == "continuous-first"}
    integ = {k: (a, s, d) for policy, k, a, s, d in rows
             if policy == "integrated"}
    # Continuous-first isolates the streams: glitch rate flat in K.
    baseline = cf[0][1]
    for k in K_VALUES[1:]:
        assert abs(cf[k][1] - baseline) < 0.005
    # Integrated leaks discrete load into the streams at high K.
    assert integ[50][1] > cf[50][1]
    # Discrete throughput grows with offered K under both policies.
    assert cf[50][2] > cf[10][2]
    # Analytic bounds hold.
    for policy, k, analytic, sim, _ in rows:
        assert analytic >= sim - 1e-9, (policy, k)
    assert k_budget > 0
