"""Shared benchmark fixtures and result recording.

Every bench regenerates one paper artifact (table/figure) or ablation.
Besides the pytest-benchmark timing, each bench writes its data table to
``benchmarks/results/<name>.txt`` so the numbers survive output capture
and feed EXPERIMENTS.md, and every bench emits a machine-readable
``benchmarks/results/BENCH_<name>.json`` (wall-clock plus its headline
numbers -- see :mod:`_emit`) for trend tracking.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import cache as cache_mod
from repro.disk import quantum_viking_2_1, single_zone_viking
from repro.workload import paper_fragment_sizes

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _isolated_persistent_cache(tmp_path_factory):
    """Keep the on-disk bound cache away from ``~/.cache`` during
    benches (exported via the environment so pool workers and CLI
    subprocesses inherit the sandboxed store)."""
    directory = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get(cache_mod.CACHE_DIR_ENV)
    os.environ[cache_mod.CACHE_DIR_ENV] = str(directory)
    cache_mod.set_persistent_cache_dir(directory)
    yield
    if previous is None:
        os.environ.pop(cache_mod.CACHE_DIR_ENV, None)
    else:
        os.environ[cache_mod.CACHE_DIR_ENV] = previous
    cache_mod.reset_persistent_cache()


@pytest.fixture(scope="session")
def viking():
    """Table 1's Quantum Viking 2.1."""
    return quantum_viking_2_1()


@pytest.fixture(scope="session")
def viking_single_zone():
    """The §3.1 single-zone example disk."""
    return single_zone_viking()


@pytest.fixture(scope="session")
def paper_sizes():
    """Table 1's Gamma(200 KB, 100 KB) fragment-size law."""
    return paper_fragment_sizes()


@pytest.fixture(scope="session")
def record():
    """Write a result table to benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[written to {path}]")

    return _record


@pytest.fixture(scope="session")
def record_json():
    """Write a machine-readable metrics payload to
    ``benchmarks/results/BENCH_<name>.json`` (delegates to
    :mod:`_emit`, the shared emission helper)."""
    import _emit

    def _record(name: str, payload: dict) -> None:
        _emit.emit(name, None, **payload)

    return _record
