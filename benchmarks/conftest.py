"""Shared benchmark fixtures and result recording.

Every bench regenerates one paper artifact (table/figure) or ablation.
Besides the pytest-benchmark timing, each bench writes its data table to
``benchmarks/results/<name>.txt`` so the numbers survive output capture
and feed EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.disk import quantum_viking_2_1, single_zone_viking
from repro.workload import paper_fragment_sizes

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def viking():
    """Table 1's Quantum Viking 2.1."""
    return quantum_viking_2_1()


@pytest.fixture(scope="session")
def viking_single_zone():
    """The §3.1 single-zone example disk."""
    return single_zone_viking()


@pytest.fixture(scope="session")
def paper_sizes():
    """Table 1's Gamma(200 KB, 100 KB) fragment-size law."""
    return paper_fragment_sizes()


@pytest.fixture(scope="session")
def record():
    """Write a result table to benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[written to {path}]")

    return _record
