"""A13: extension -- discrete response times on a shared disk.

Queued discrete requests (Poisson arrivals) ride the leftover time of a
continuous-first disk.  The bench sweeps the offered discrete load as a
fraction of the leftover capacity and reports the classic queueing
knee: response times flat at light load, exploding past saturation --
while the continuous glitch rate never moves.
"""

import numpy as np

import _emit
from repro.analysis import format_probability, render_table
from repro.core.mixed import MixedWorkloadModel
from repro.distributions import Gamma
from repro.server.mixed import simulate_discrete_queue

T = 1.0
N = 24
ROUNDS = 800
LOADS = (0.2, 0.5, 0.8, 1.1)


def run_sweep(spec, cont_sizes):
    disc_sizes = Gamma.from_mean_std(8_000.0, 8_000.0)
    mixed = MixedWorkloadModel(spec=spec, continuous_sizes=cont_sizes,
                               discrete_sizes=disc_sizes)
    capacity = mixed.discrete_throughput_estimate(N, T)
    rows = []
    for load in LOADS:
        result = simulate_discrete_queue(
            spec, cont_sizes, disc_sizes, n=N,
            arrival_rate=load * capacity, t=T, rounds=ROUNDS,
            rng=np.random.default_rng(int(100 * load)))
        rows.append((load, load * capacity,
                     result.mean_response_rounds,
                     result.mean_queue_length,
                     float(np.mean(result.continuous_glitches)),
                     result.saturated))
    return rows, capacity


def test_a13_discrete_queue(benchmark, viking, paper_sizes, record):
    rows, capacity = benchmark.pedantic(
        run_sweep, args=(viking, paper_sizes), rounds=1, iterations=1)
    table = render_table(
        ["offered load", "arrivals/round", "mean response [rounds]",
         "mean backlog", "cont. glitch rate", "saturated"],
        [[f"{load:g}", f"{rate:.1f}", f"{resp:.2f}", f"{q:.1f}",
          format_probability(g), "yes" if sat else "no"]
         for load, rate, resp, q, g, sat in rows],
        title=f"A13: discrete queue on the leftover of N={N} continuous "
        f"streams (capacity estimate {capacity:.1f}/round)")
    record("a13_discrete_queue", table)
    _emit.emit("a13_discrete_queue", benchmark, capacity=capacity,
               **{f"response_load{load:g}": resp
                  for load, _, resp, _, _, _ in rows})

    by_load = {r[0]: r for r in rows}
    # Response times rise with load; past capacity the queue saturates.
    responses = [r[2] for r in rows]
    assert responses == sorted(responses)
    assert not by_load[0.2][5]
    assert by_load[1.1][5]
    # Continuous glitch rate stays put across the whole sweep.
    glitch_rates = [r[4] for r in rows]
    assert max(glitch_rates) - min(glitch_rates) < 0.004
