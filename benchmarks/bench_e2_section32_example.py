"""E2: §3.2 worked example -- multi-zone Chernoff bounds.

Paper numbers (Table 1 disk, t = 1 s): p_late(26) <= 0.00324,
p_late(27) ~ 0.0133, N_max = 26 at the 1 % round-lateness threshold.
"""

import _emit
from repro.analysis import format_probability, render_table
from repro.core import RoundServiceTimeModel, n_max_plate


def run_example(spec, sizes):
    model = RoundServiceTimeModel.for_disk(spec, sizes, multizone=True)
    return {
        "p_late_26": model.b_late(26, 1.0),
        "p_late_27": model.b_late(27, 1.0),
        "n_max": n_max_plate(model, 1.0, 0.01),
        "e_trans": model.transfer.mean(),
    }


def test_e2_section32_example(benchmark, viking, paper_sizes, record):
    result = benchmark(run_example, viking, paper_sizes)
    table = render_table(
        ["quantity", "paper", "reproduced"],
        [
            ["p_late(26, 1s)", "0.00324",
             format_probability(result["p_late_26"])],
            ["p_late(27, 1s)", "0.0133",
             format_probability(result["p_late_27"])],
            ["N_max^plate (delta=1%)", "26", str(result["n_max"])],
            ["E[T_trans] multi-zone [s]", "-",
             f"{result['e_trans']:.5f}"],
        ],
        title="E2: Section 3.2 worked example (Table 1 multi-zone disk)")
    record("e2_section32_example", table)
    _emit.emit("e2_section32_example", benchmark, n_max=result["n_max"],
               p_late_26=result["p_late_26"],
               p_late_27=result["p_late_27"])
    assert result["n_max"] == 26
    assert abs(result["p_late_27"] - 0.0133) / 0.0133 < 0.20
