"""A21: extension -- runtime mirror failover with load shedding.

The analytic side prices a RAID-1 disk failure as a doubled batch
(:func:`repro.core.farm.degraded_mode_n_max`): the survivor can keep the
per-round guarantee only for ``n`` with ``b_late(2n, t) <= delta``.
This bench closes the loop at runtime: the event-driven server loses a
disk mid-run and we measure the surviving streams' glitch rates

- **with shedding** -- the newest streams are paused until the survivor
  batch meets the degraded bound: every survivor must stay within the
  tolerance ``delta``;
- **without shedding** -- the survivor absorbs the full doubled batch
  (mean service > round length at the paper's operating point): the
  bound must be violated, demonstrating that shedding is load-bearing.

A vectorised two-phase simulation (:func:`simulate_failover_rounds`)
cross-checks the degraded-phase overrun rates independently of the
event-driven machinery.
"""

import numpy as np

from repro.analysis import format_probability, render_table
from repro.core import RoundServiceTimeModel
from repro.server.faults import run_failover_scenario
from repro.server.simulation import simulate_failover_rounds

T = 1.0
DELTA = 0.01
ROUNDS = 300
FAIL_ROUND = 40


def run_scenarios(spec, sizes):
    shed = run_failover_scenario(spec, sizes, disks=2, t=T, delta=DELTA,
                                 rounds=ROUNDS, fail_round=FAIL_ROUND,
                                 shedding=True, seed=0)
    noshed = run_failover_scenario(spec, sizes, disks=2, t=T, delta=DELTA,
                                   rounds=ROUNDS, fail_round=FAIL_ROUND,
                                   shedding=False, seed=0)
    return shed, noshed


def test_a21_failover_shedding(benchmark, viking, paper_sizes, record,
                               record_json):
    shed, noshed = benchmark.pedantic(
        run_scenarios, args=(viking, paper_sizes), rounds=1, iterations=1)

    model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
    healthy, degraded = shed.healthy_n_max, shed.degraded_n_max
    # The analytic story: the shed survivor batch (2 * degraded) meets
    # the bound, the unshed doubled batch (2 * healthy) cannot.
    b_shed = model.b_late(2 * degraded, T)
    b_noshed = model.b_late(2 * healthy, T)

    # Vectorised cross-check of the degraded phases.
    vec_shed = simulate_failover_rounds(
        viking, paper_sizes, healthy, 2 * degraded, T, seed=0)
    vec_noshed = simulate_failover_rounds(
        viking, paper_sizes, healthy, 2 * healthy, T, seed=0)

    rows = [
        ["healthy N_max / disk", str(healthy), str(healthy)],
        ["degraded N_max / disk", str(degraded), "-- (no shedding)"],
        ["survivor batch", str(2 * degraded), str(2 * healthy)],
        ["analytic b_late(batch)", format_probability(b_shed),
         format_probability(b_noshed)],
        ["vectorised p_late(batch)",
         format_probability(vec_shed.p_late_degraded),
         format_probability(vec_noshed.p_late_degraded)],
        ["streams shed", str(shed.report.shed_streams),
         str(noshed.report.shed_streams)],
        ["mirror failovers", str(shed.report.failovers),
         str(noshed.report.failovers)],
        ["survivors (never shed)", str(shed.survivors),
         str(noshed.survivors)],
        ["max survivor glitch rate",
         format_probability(shed.max_glitch_rate),
         format_probability(noshed.max_glitch_rate)],
        [f"within delta = {DELTA:g}",
         "yes" if shed.within_bound else "NO",
         "yes" if noshed.within_bound else "NO"],
    ]
    table = render_table(
        ["quantity", "with shedding", "without shedding"], rows,
        title=f"A21: mirrored-pair failover at round {FAIL_ROUND} "
        f"of {ROUNDS} (t={T:g}s)")
    record("a21_failover_shedding", table)
    record_json("a21_failover_shedding", {
        "t": T, "delta": DELTA, "rounds": ROUNDS,
        "fail_round": FAIL_ROUND,
        "healthy_n_max": healthy, "degraded_n_max": degraded,
        "b_late_shed_batch": b_shed, "b_late_noshed_batch": b_noshed,
        "vectorized_p_late_shed_batch": vec_shed.p_late_degraded,
        "vectorized_p_late_noshed_batch": vec_noshed.p_late_degraded,
        "shed": {
            "max_glitch_rate": shed.max_glitch_rate,
            "aggregate_glitch_rate": shed.aggregate_glitch_rate,
            "survivors": shed.survivors,
            "shed_streams": shed.report.shed_streams,
            "failovers": shed.report.failovers,
            "within_bound": shed.within_bound,
        },
        "noshed": {
            "max_glitch_rate": noshed.max_glitch_rate,
            "aggregate_glitch_rate": noshed.aggregate_glitch_rate,
            "survivors": noshed.survivors,
            "within_bound": noshed.within_bound,
        },
    })

    # The end-to-end degraded-mode guarantee: with shedding, every
    # surviving stream stays within the analytic tolerance ...
    assert b_shed <= DELTA
    assert shed.within_bound, shed.max_glitch_rate
    assert shed.aggregate_glitch_rate <= DELTA
    # ... and without shedding the doubled batch demonstrably violates
    # it (the survivor's mean service exceeds the round length).
    assert not noshed.within_bound, noshed.max_glitch_rate
    assert noshed.max_glitch_rate > 10 * DELTA
    # The vectorised path agrees on both operating points.
    assert vec_shed.p_late_degraded <= DELTA
    assert vec_noshed.p_late_degraded > 0.5
    # Failover actually engaged, and shedding hit its target exactly:
    # each degraded round redirects the failed disk's share of the
    # batch (half the serving streams) to the survivor.
    assert shed.report.failovers > 0
    assert shed.report.shed_streams == 2 * (healthy - degraded)
    assert np.isclose(noshed.report.failovers,
                      healthy * (ROUNDS - FAIL_ROUND), rtol=0.05)
    assert np.isclose(shed.report.failovers,
                      degraded * (ROUNDS - FAIL_ROUND), rtol=0.05)
