"""A14: extension -- sensitivity of the admission limit.

Which spec-sheet numbers move N_max?  Each hardware/workload parameter
is perturbed +-10 % around the Table 1 operating point and the
stream-level admission limit recomputed.
"""

import _emit
from repro.analysis import render_table
from repro.analysis.sensitivity import admission_sensitivity


def run_sensitivity(spec):
    return admission_sensitivity(spec, mean_size=200_000.0, cv=0.5,
                                 t=1.0, m=1200, g=12, epsilon=0.01,
                                 rel_delta=0.10)


def test_a14_sensitivity(benchmark, viking, record):
    rows = benchmark.pedantic(run_sensitivity, args=(viking,), rounds=1,
                              iterations=1)
    table = render_table(
        ["parameter (+-10%)", "N_max @ -10%", "N_max base",
         "N_max @ +10%", "swing"],
        [[r.parameter, str(r.n_max_low), str(r.n_max_base),
          str(r.n_max_high), str(r.swing)] for r in rows],
        title="A14: N_max^perror sensitivity (Table 1 operating point)")
    record("a14_sensitivity", table)
    _emit.emit("a14_sensitivity", benchmark,
               n_max_base=rows[0].n_max_base,
               **{"swing_" + r.parameter.replace(" ", "_"): r.swing
                  for r in rows})

    by_name = {r.parameter: r for r in rows}
    assert all(r.n_max_base == 28 for r in rows)
    # The transfer path (capacities / fragment size) dominates; seek
    # coefficients barely matter at N ~ 28.
    assert by_name["zone capacities"].swing >= 3
    assert abs(by_name["mean fragment size"].swing) >= 3
    assert by_name["seek sqrt coefficient"].swing <= 2
