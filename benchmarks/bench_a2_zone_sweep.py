"""A2: ablation -- zone-count sweep and the cost of ignoring zones.

Sweeps the same physical capacity range (58368..95744 bytes/track) over
Z in {1, 2, 4, 8, 15, 30} zones and compares (i) the full multi-zone
model against (ii) a single-zone collapse at the harmonic-mean rate.
The collapse preserves E[T_trans] but loses the zone-induced variance,
so it *understates* p_late -- quantifying what the §3.2 machinery buys.
"""

import _emit
from repro.analysis import format_probability, render_table
from repro.core import MultiZoneTransferModel, RoundServiceTimeModel, n_max_plate
from repro.server.simulation import estimate_p_late

T = 1.0
N_PROBE = 27
ZONES = (1, 2, 4, 8, 15, 30)


def run_sweep(spec, sizes):
    rows = []
    for z in ZONES:
        zoned = spec.with_zones(z) if z > 1 else spec.with_zones(2)
        if z == 1:
            # True single-zone disk at the capacity midpoint.
            from repro.disk import ZoneMap
            from dataclasses import replace
            mid = 0.5 * (58368.0 + 95744.0)
            zoned = replace(spec, name="Z1",
                            zone_map=ZoneMap.linear(1, mid, mid, spec.rot))
        model = RoundServiceTimeModel.for_disk(zoned, sizes,
                                               multizone=True)
        analytic = model.b_late(N_PROBE, T)
        sim = estimate_p_late(zoned, sizes, N_PROBE, T, rounds=15_000,
                              seed=300 + z)
        rows.append((z, model.transfer.mean(), model.transfer.var(),
                     analytic, sim.p_late, n_max_plate(model, T, 0.01)))
    return rows


def run_collapse_comparison(spec, sizes):
    full = RoundServiceTimeModel.for_disk(spec, sizes, multizone=True)
    collapsed = RoundServiceTimeModel.for_disk(spec, sizes,
                                               multizone=False)
    transfer = MultiZoneTransferModel(spec.zone_map, sizes)
    return {
        "full_p": full.b_late(N_PROBE, T),
        "collapsed_p": collapsed.b_late(N_PROBE, T),
        "full_nmax": n_max_plate(full, T, 0.01),
        "collapsed_nmax": n_max_plate(collapsed, T, 0.01),
        "var_ratio": transfer.var() / collapsed.transfer.var(),
    }


def test_a2_zone_sweep(benchmark, viking, paper_sizes, record):
    rows = benchmark.pedantic(run_sweep, args=(viking, paper_sizes),
                              rounds=1, iterations=1)
    table = render_table(
        ["Z", "E[T_trans] [ms]", "Var[T_trans]", f"b_late({N_PROBE})",
         "sim p_late", "N_max(1%)"],
        [[str(z), f"{1e3 * m:.2f}", f"{v:.3e}",
          format_probability(a), format_probability(s), str(nmax)]
         for z, m, v, a, s, nmax in rows],
        title="A2: zone-count sweep (same capacity range)")
    record("a2_zone_sweep", table)
    _emit.emit("a2_zone_sweep", benchmark,
               **{f"nmax_z{z}": nmax for z, _, _, _, _, nmax in rows})
    for _, _, _, analytic, sim, _ in rows:
        assert analytic >= sim


def test_a2_singlezone_collapse(benchmark, viking, paper_sizes, record):
    result = benchmark(run_collapse_comparison, viking, paper_sizes)
    table = render_table(
        ["model", f"b_late({N_PROBE})", "N_max(1%)"],
        [
            ["full multi-zone (3.2)",
             format_probability(result["full_p"]),
             str(result["full_nmax"])],
            ["single-zone collapse (harmonic rate)",
             format_probability(result["collapsed_p"]),
             str(result["collapsed_nmax"])],
        ],
        title="A2b: what ignoring zones does to the bound "
        f"(transfer-variance ratio {result['var_ratio']:.2f}x)")
    record("a2_singlezone_collapse", table)
    _emit.emit("a2_singlezone_collapse", benchmark,
               full_nmax=result["full_nmax"],
               collapsed_nmax=result["collapsed_nmax"],
               var_ratio=result["var_ratio"])
    # Ignoring zone variability makes the bound optimistic.
    assert result["collapsed_p"] < result["full_p"]
    assert result["var_ratio"] > 1.0
    assert result["collapsed_nmax"] >= result["full_nmax"]
