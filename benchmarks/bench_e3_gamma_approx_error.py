"""E3: §3.2's Gamma-approximation quality claim.

The paper approximates the multi-zone transfer-time density (eq. 3.2.7)
by a moment-matched Gamma (eq. 3.2.10) and reports "relative error ...
less than 2 percent in the most relevant range of the transfer time
(... between 5 and 100 milliseconds)".  We measure the density error
(peak-normalised) and the distribution-function error on that range.
"""

import numpy as np

import _emit
from repro.analysis import render_table
from repro.core import MultiZoneTransferModel


def run_report(spec, sizes):
    model = MultiZoneTransferModel(spec.zone_map, sizes)
    density = model.approximation_report(5e-3, 100e-3, points=300)
    ts = density.times
    cdf_exact = model.exact_cdf(ts)
    cdf_gamma = np.asarray(model.gamma_approximation().cdf(ts))
    return {
        "density_err": density.max_relative_error,
        "cdf_err": float(np.max(np.abs(cdf_exact - cdf_gamma))),
        "continuous_err": model.approximation_report(
            5e-3, 100e-3, use_continuous=True).max_relative_error,
    }


def test_e3_gamma_approx_error(benchmark, viking, paper_sizes, record):
    result = benchmark(run_report, viking, paper_sizes)
    table = render_table(
        ["metric", "paper claim", "reproduced"],
        [
            ["max density error (discrete zones)", "< 2 %",
             f"{100 * result['density_err']:.2f} %"],
            ["max density error (continuous eq. 3.2.7)", "< 2 %",
             f"{100 * result['continuous_err']:.2f} %"],
            ["max distribution-function error", "-",
             f"{100 * result['cdf_err']:.3f} %"],
        ],
        title="E3: Gamma approximation of the multi-zone transfer time")
    record("e3_gamma_approx_error", table)
    _emit.emit("e3_gamma_approx_error", benchmark,
               density_err=result["density_err"],
               cdf_err=result["cdf_err"],
               continuous_err=result["continuous_err"])
    # Measured residual: ~3.2 % density error at the mode (vs the
    # paper's < 2 % claim), but < 1 % in distribution -- see
    # EXPERIMENTS.md.
    assert result["density_err"] < 0.04
    assert result["cdf_err"] < 0.01
