#!/usr/bin/env python
"""Collate ``BENCH_*.json`` emissions and check for perf regressions.

Every bench writes a machine-readable payload to
``benchmarks/results/BENCH_<name>.json`` (see :mod:`_emit`).  This tool
has two jobs:

``python benchmarks/report.py``
    Print a summary table of every emission found: name, wall clock,
    and the headline numeric metrics.

``python benchmarks/report.py --check a22_server_kernel``
    Compare one result against the committed baseline in
    ``benchmarks/baselines/`` and exit non-zero when the checked metric
    (default ``speedup``) regressed by more than ``--max-regression``
    (default 2x).  Ratio metrics like ``speedup`` are largely
    machine-independent, which is what makes a committed baseline
    meaningful across CI runners.

Deliberately dependency-free (no ``repro`` import): it must run before
``PYTHONPATH`` is set up and in pared-down CI legs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
BASELINES_DIR = Path(__file__).parent / "baselines"

#: Payload keys that are bookkeeping, not benchmark metrics.
_META_KEYS = {"schema", "host_cores"}


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")


def _metrics(payload: dict) -> dict:
    return {key: value for key, value in sorted(payload.items())
            if key not in _META_KEYS
            and isinstance(value, (int, float))
            and not isinstance(value, bool)}


def _format(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if value != 0 and abs(value) < 1e-3:
        return f"{value:.3g}"
    return f"{value:.4f}".rstrip("0").rstrip(".")


def _render(headers: list[str], rows: list[list[str]]) -> str:
    widths = [max(len(headers[col]), *(len(row[col]) for row in rows))
              if rows else len(headers[col])
              for col in range(len(headers))]
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "-+-".join("-" * w for w in widths)]
    lines += [" | ".join(cell.ljust(w) for cell, w in zip(row, widths))
              for row in rows]
    return "\n".join(lines)


_BAR_WIDTH = 36


def _histogram_lines(name: str, histograms: dict) -> list[str]:
    """Render one emission's per-class latency histograms.

    Expects the shape benches emit under ``latency_histograms``:
    ``{class: {"bounds": [...], "counts": [...], "mean": s,
    "count": n}}`` where ``counts`` carries one overflow bucket beyond
    the last bound.  Malformed classes are skipped, not fatal -- the
    summary must survive hand-edited or truncated emissions.
    """
    lines = [f"{name}: fragment-latency histograms"]
    for klass in sorted(histograms):
        data = histograms[klass]
        if not isinstance(data, dict):
            continue
        bounds = data.get("bounds") or []
        counts = data.get("counts") or []
        if len(counts) != len(bounds) + 1:
            continue
        total = sum(counts)
        mean = data.get("mean")
        summary = f"  {klass}: {total} fragment(s)"
        if isinstance(mean, (int, float)) and not isinstance(mean, bool):
            summary += f", mean {_format(float(mean))}s"
        lines.append(summary)
        labels = [f"<= {_format(float(b))}s" for b in bounds]
        labels.append(f" > {_format(float(bounds[-1]))}s"
                      if bounds else "all")
        width = max(len(label) for label in labels)
        peak = max(counts) or 1
        for label, count in zip(labels, counts):
            bar = "#" * round(_BAR_WIDTH * count / peak)
            lines.append(f"    {label.rjust(width)} | "
                         f"{str(count).rjust(len(str(peak)))} | {bar}")
    return lines if len(lines) > 1 else []


def summarise(results_dir: Path) -> int:
    paths = sorted(results_dir.glob("BENCH_*.json"))
    if not paths:
        print(f"no BENCH_*.json emissions under {results_dir}",
              file=sys.stderr)
        return 1
    rows = []
    histogram_sections = []
    for path in paths:
        payload = _load(path)
        name = path.stem[len("BENCH_"):]
        # A few benches emit a dict of wall clocks (one per variant);
        # the summary column only shows the scalar form.
        wall = payload.get("wall_clock_s")
        if not isinstance(wall, (int, float)) or isinstance(wall, bool):
            wall = None
        metrics = _metrics(payload)
        metrics.pop("wall_clock_s", None)
        rendered = ", ".join(f"{k}={_format(v)}"
                             for k, v in metrics.items())
        if len(rendered) > 72:
            rendered = rendered[:69] + "..."
        rows.append([name,
                     _format(wall) if wall is not None else "-",
                     rendered])
        histograms = payload.get("latency_histograms")
        if isinstance(histograms, dict) and histograms:
            histogram_sections.extend(
                ["", *_histogram_lines(name, histograms)])
    print(f"{len(rows)} benchmark emission(s) in {results_dir}\n")
    print(_render(["bench", "wall [s]", "headline metrics"], rows))
    for line in histogram_sections:
        print(line)
    return 0


def check(name: str, metric: str, max_regression: float,
          results_dir: Path, baselines_dir: Path) -> int:
    current_path = results_dir / f"BENCH_{name}.json"
    baseline_path = baselines_dir / f"BENCH_{name}.json"
    for path in (current_path, baseline_path):
        if not path.is_file():
            print(f"error: missing {path}", file=sys.stderr)
            return 2
    current = _load(current_path).get(metric)
    baseline = _load(baseline_path).get(metric)
    if current is None or baseline is None:
        print(f"error: metric {metric!r} missing from "
              f"{'current' if current is None else 'baseline'} "
              f"emission of {name}", file=sys.stderr)
        return 2
    floor = baseline / max_regression
    verdict = "OK" if current >= floor else "REGRESSION"
    print(f"{name}.{metric}: current {_format(current)}, baseline "
          f"{_format(baseline)}, floor {_format(floor)} "
          f"(baseline / {max_regression:g}) -> {verdict}")
    return 0 if current >= floor else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="append", default=[],
                        metavar="NAME",
                        help="compare BENCH_NAME.json against the "
                        "committed baseline instead of summarising "
                        "(repeatable)")
    parser.add_argument("--metric", default="speedup",
                        help="payload key compared by --check "
                        "(default: speedup)")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="fail when current < baseline / this "
                        "factor (default: 2)")
    parser.add_argument("--results-dir", type=Path, default=RESULTS_DIR)
    parser.add_argument("--baselines-dir", type=Path,
                        default=BASELINES_DIR)
    args = parser.parse_args(argv)
    if args.max_regression <= 1.0:
        parser.error("--max-regression must be > 1")
    if not args.check:
        return summarise(args.results_dir)
    worst = 0
    for name in args.check:
        worst = max(worst, check(name, args.metric, args.max_regression,
                                 args.results_dir, args.baselines_dir))
    return worst


if __name__ == "__main__":
    raise SystemExit(main())
