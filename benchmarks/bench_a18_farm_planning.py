"""A18: extension -- heterogeneous farms and degraded-mode admission.

Two farm-level results the paper's single-disk treatment leaves open:

1. With stride-1 striping, the weakest disk binds the whole farm --
   adding an old drive to a fast farm *reduces* total capacity.
2. Surviving a mirror failure invisibly requires admitting against the
   doubled-batch bound, roughly halving per-disk streams.
"""

import os

from repro.analysis import render_table
from repro.core.farm import degraded_modes, plan_farm
from repro.disk import (
    modern_av_drive,
    quantum_viking_2_1,
    seagate_hawk_1lp,
)

T = 1.0
M, G, EPS = 1200, 12, 0.01
#: Worker processes for the per-disk N_max solves.  The plan is
#: identical for any value (each disk's limit is independent), and the
#: persistent bound cache deduplicates repeated drives across workers.
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def run_planning(sizes):
    viking = quantum_viking_2_1()
    hawk = seagate_hawk_1lp()
    fast = modern_av_drive()
    farms = {
        "4x Viking": [viking] * 4,
        "4x Hawk": [hawk] * 4,
        "3x AV-class": [fast] * 3,
        "3x AV + 1x Hawk": [fast] * 3 + [hawk],
        "2x Viking + 2x Hawk": [viking] * 2 + [hawk] * 2,
    }
    rows = [(name, plan_farm(specs, sizes, T, M, G, EPS, jobs=JOBS))
            for name, specs in farms.items()]
    drives = (viking, hawk, fast)
    limits = degraded_modes(list(drives), sizes, T, 0.01, jobs=JOBS)
    degraded = {spec.name: pair for spec, pair in zip(drives, limits)}
    return rows, degraded


def test_a18_farm_planning(benchmark, paper_sizes, record):
    rows, degraded = benchmark.pedantic(run_planning,
                                        args=(paper_sizes,), rounds=1,
                                        iterations=1)
    farm_table = render_table(
        ["farm", "per-disk limits", "binding disk", "N_max total",
         "streams wasted"],
        [[name, "/".join(map(str, plan.per_disk_n_max)),
          str(plan.binding_disk), str(plan.n_max_total),
          str(plan.wasted_streams)] for name, plan in rows],
        title=f"A18: striped-farm admission (M={M}, g={G}, eps={EPS:g})")
    degraded_table = render_table(
        ["drive", "healthy N_max/disk", "failure-proof N_max/disk"],
        [[name, str(h), str(f)] for name, (h, f) in degraded.items()],
        title="A18b: degraded-mode (mirror-failure) admission")
    record("a18_farm_planning", farm_table + "\n\n" + degraded_table)

    plans = dict(rows)
    # The slow-disk poisoning result.
    assert (plans["3x AV + 1x Hawk"].n_max_total
            < plans["3x AV-class"].n_max_total)
    # Homogeneous farms waste nothing; mixed farms do.
    assert plans["4x Viking"].wasted_streams == 0
    assert plans["2x Viking + 2x Hawk"].wasted_streams > 0
    # Failure-proofing costs roughly half the streams on every drive.
    for name, (healthy, failure_proof) in degraded.items():
        assert 0.3 * healthy <= failure_proof <= 0.6 * healthy, name
