"""A8: extension -- client buffering and server prefetch (§6 outlook).

Two claims quantified:

1. Without prefetch, buffering does NOT reduce the long-run visible-
   hiccup rate (it equals the glitch rate for any capacity) -- the
   buffer-occupancy chain proves it and the simulator confirms it.
2. With a few prefetch slots per round, visible hiccups collapse while
   the per-round glitch exposure only grows mildly -- the §6 trade-off.
"""

import numpy as np

import _emit
from repro.analysis import format_probability, render_table
from repro.core import RoundServiceTimeModel
from repro.core.buffering import PrefetchPlan
from repro.server.prefetch import simulate_prefetch

T = 1.0
N = 30            # deliberately above the paper's N_max: visible misses
ROUNDS = 8000
CONFIGS = [(0, 2), (0, 6), (2, 2), (2, 6), (4, 6)]  # (headroom, capacity)


def run_ablation(spec, sizes):
    model = RoundServiceTimeModel.for_disk(spec, sizes)
    rows = []
    for headroom, capacity in CONFIGS:
        plan = PrefetchPlan(model, n=N, t=T, headroom=headroom)
        analytic = plan.chain(capacity).hiccup_rate()
        sim = simulate_prefetch(spec, sizes, N, T, ROUNDS,
                                headroom=headroom, capacity=capacity,
                                prefill=min(2, capacity), seed=headroom)
        rows.append((headroom, capacity, analytic, sim.hiccup_rate,
                     sim.glitch_rate, sim.mean_buffer))
    return rows


def test_a8_prefetch_buffering(benchmark, viking, paper_sizes, record):
    rows = benchmark.pedantic(run_ablation, args=(viking, paper_sizes),
                              rounds=1, iterations=1)
    table = render_table(
        ["headroom", "buffer cap", "chain hiccup bound", "sim hiccups",
         "sim glitches", "mean buffer"],
        [[str(h), str(c), format_probability(a), format_probability(s),
          format_probability(g), f"{b:.2f}"]
         for h, c, a, s, g, b in rows],
        title=f"A8: prefetch/buffering at N={N} (above N_max), "
        f"{ROUNDS} rounds")
    record("a8_prefetch_buffering", table)
    _emit.emit("a8_prefetch_buffering", benchmark,
               **{f"hiccup_h{h}_c{c}": s for h, c, _, s, _, _ in rows})

    by_cfg = {(h, c): (a, s, g, b) for h, c, a, s, g, b in rows}
    # Claim 1: without prefetch, deeper buffers do not help the rate.
    assert abs(by_cfg[(0, 2)][1] - by_cfg[(0, 6)][1]) < 0.01
    no_pf = by_cfg[(0, 6)]
    assert no_pf[1] > 0  # visible hiccups exist at this load
    # Claim 2: prefetch + buffer kills visible hiccups ...
    assert by_cfg[(2, 6)][1] < no_pf[1] / 5
    # ... while only mildly raising glitch exposure.
    assert by_cfg[(2, 6)][2] < 4 * no_pf[2] + 0.01
    # Chain bound (built on conservative p's) dominates simulation.
    for h, c, analytic, sim, *_ in rows:
        assert analytic >= sim - 1e-3


def test_a8_chain_capacity_curve(benchmark, viking, paper_sizes, record):
    """Analytic hiccup rate vs buffer capacity under a fixed plan.

    Run at N = 28 (the paper's stream-level admission point): there the
    refill probability exceeds the conservative miss bound, the chain
    drifts upward and the hiccup rate decays geometrically in the
    buffer depth.  (At loads where even the *bound* on misses exceeds
    the refill rate -- e.g. N = 30 with small headroom -- the analytic
    rate plateaus at the miss bound instead: buffers cannot fix an
    overloaded disk.)
    """
    model = RoundServiceTimeModel.for_disk(viking, paper_sizes)
    plan = PrefetchPlan(model, n=28, t=T, headroom=3)

    def sweep():
        return [(b, plan.chain(b).hiccup_rate()) for b in
                (1, 2, 4, 8, 16)]

    rows = benchmark(sweep)
    table = render_table(
        ["buffer capacity", "analytic hiccup rate"],
        [[str(b), format_probability(r)] for b, r in rows],
        title="A8b: hiccup rate vs client buffer depth "
        "(N=28, headroom 3)")
    record("a8_capacity_curve", table)
    _emit.emit("a8_capacity_curve", benchmark,
               **{f"hiccup_cap{b}": r for b, r in rows})
    rates = [r for _, r in rows]
    assert rates == sorted(rates, reverse=True)
    assert rates[-1] < rates[0] / 50  # geometric decay
