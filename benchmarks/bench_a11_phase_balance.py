"""A11: extension -- what staggering stream starts is worth.

The paper's per-disk model assumes uniform load across disks (§3); with
stride-1 striping that is a statement about stream *phases*.  This
bench quantifies the admission gap between balanced phases (the
MediaServer staggers starts) and random phases (streams start on
arrival), and validates the random-phase binomial-mixture bound against
a farm simulation.
"""

import numpy as np

import _emit
from repro.analysis import format_probability, render_table
from repro.core import GlitchModel, RoundServiceTimeModel
from repro.core.striping import (
    balanced_glitch_bound,
    n_max_balanced,
    n_max_random_phases,
    random_phase_glitch_bound,
)
from repro.server.simulation import simulate_rounds

T = 1.0
M, G, EPS = 1200, 12, 0.01
DISKS = (1, 2, 4, 8)


def _simulate_random_phase_glitch(spec, sizes, n_total, disks, rounds,
                                  seed):
    """Per-stream glitch rate with multinomial per-disk loads.

    Loads are drawn per round; each disk's batch is simulated at its
    drawn size by slicing precomputed fixed-size batches (statistically
    equivalent, since requests are i.i.d. given the load)."""
    rng = np.random.default_rng(seed)
    glitch_events = 0
    requests = 0
    loads = rng.multinomial(n_total, np.full(disks, 1.0 / disks),
                            size=rounds)
    max_load = int(loads.max())
    batch = simulate_rounds(spec, sizes, max_load, T, rounds, rng)
    # For disk loads k < max_load, a prefix of the sweep's requests is a
    # biased subsample; instead re-simulate per distinct load value.
    by_load = {}
    for k in np.unique(loads):
        if k == 0:
            continue
        b = simulate_rounds(spec, sizes, int(k), T,
                            max(rounds // disks, 200), rng)
        by_load[int(k)] = float(np.mean(b.glitches))
    for k in loads.ravel():
        if k == 0:
            continue
        glitch_events += by_load[int(k)] * k
        requests += k
    return glitch_events / requests


def run_ablation(spec, sizes):
    model = RoundServiceTimeModel.for_disk(spec, sizes)
    glitch = GlitchModel(model, T)
    rows = []
    for disks in DISKS:
        balanced = n_max_balanced(glitch, disks, M, G, EPS)
        random_n = n_max_random_phases(glitch, disks, M, G, EPS)
        rows.append((disks, balanced, random_n,
                     balanced_glitch_bound(glitch, balanced, disks),
                     random_phase_glitch_bound(glitch, balanced, disks)))
    # Validate the mixture bound by simulation at one config.
    disks, n_total = 4, rows[2][1]
    sim_rate = _simulate_random_phase_glitch(spec, sizes, n_total, disks,
                                             rounds=2500, seed=42)
    return rows, (disks, n_total, sim_rate)


def test_a11_phase_balance(benchmark, viking, paper_sizes, record):
    rows, sim = benchmark.pedantic(run_ablation,
                                   args=(viking, paper_sizes), rounds=1,
                                   iterations=1)
    disks_s, n_s, sim_rate = sim
    table = render_table(
        ["disks", "N_max balanced", "N_max random phases",
         "b_glitch balanced", "b_glitch random @ balanced N"],
        [[str(d), str(b), str(r), format_probability(bb),
          format_probability(rb)] for d, b, r, bb, rb in rows],
        title=f"A11: phase balance on a disk farm (M={M}, g={G}, "
        f"eps={EPS:g})")
    mixture_at_sim = [r for r in rows if r[0] == disks_s][0][4]
    footer = (f"\nsimulated random-phase glitch rate at D={disks_s}, "
              f"N={n_s}: {format_probability(sim_rate)} "
              f"(mixture bound {format_probability(mixture_at_sim)})")
    record("a11_phase_balance", table + footer)
    _emit.emit("a11_phase_balance", benchmark, sim_glitch_rate=sim_rate,
               **{f"nmax_balanced_d{d}": b for d, b, _, _, _ in rows})

    by_disks = {r[0]: r for r in rows}
    assert by_disks[1][1] == by_disks[1][2]  # one disk: phases moot
    for d in (2, 4, 8):
        assert by_disks[d][2] < by_disks[d][1]  # random phases cost
    # Random-phase loss grows with farm size in absolute streams.
    losses = [by_disks[d][1] - by_disks[d][2] for d in (2, 4, 8)]
    assert losses == sorted(losses)
    # The mixture bound covers the simulated random-phase system.
    assert mixture_at_sim >= sim_rate
