"""A16: comparator -- Grouped Sweeping Scheduling [CKY93].

The paper's related work positions its one-SCAN-per-round scheme
against GSS.  This bench reproduces the classic trade-off with the
paper's own Chernoff model on the Table 1 disk: more groups mean lower
delivery latency and smaller client buffers but fewer admitted streams,
with g = 1 (the paper's choice) maximising throughput.
"""

import numpy as np

import _emit
from repro.analysis import format_probability, render_table
from repro.core import RoundServiceTimeModel
from repro.core.gss import gss_group_p_late, gss_tradeoff
from repro.server.simulation import simulate_rounds

T = 1.0
GROUPS = (1, 2, 4, 8)


def run_tradeoff(spec, sizes):
    model = RoundServiceTimeModel.for_disk(spec, sizes)
    points = gss_tradeoff(model, T, 0.01, group_counts=GROUPS)
    # Validate the g=4 point against sub-round simulation.
    g = 4
    point = next(p for p in points if p.groups == g)
    group_size = -(-point.n_max // g)
    batch = simulate_rounds(spec, sizes, group_size, T / g, 12_000,
                            np.random.default_rng(33))
    simulated = float(np.mean(batch.service_times > T / g))
    return points, (g, point.n_max, simulated,
                    gss_group_p_late(model, point.n_max, g, T))


def test_a16_gss(benchmark, viking, paper_sizes, record):
    points, (g, n_at_g, simulated, bound) = benchmark.pedantic(
        run_tradeoff, args=(viking, paper_sizes), rounds=1, iterations=1)
    table = render_table(
        ["groups g", "N_max(1%)", "group p_late bound",
         "delivery latency [s]", "client buffer [fragments]"],
        [[str(p.groups), str(p.n_max),
          format_probability(p.group_p_late),
          f"{p.max_delivery_latency:g}", f"{p.buffer_fragments:g}"]
         for p in points],
        title="A16: SCAN (g=1) vs Grouped Sweeping Scheduling")
    footer = (f"\nsimulated sub-round p_late at g={g}, N={n_at_g}: "
              f"{format_probability(simulated)} (bound "
              f"{format_probability(bound)})")
    record("a16_gss", table + footer)
    _emit.emit("a16_gss", benchmark, sim_p_late_g4=simulated,
               **{f"nmax_g{p.groups}": p.n_max for p in points})

    nmaxes = [p.n_max for p in points]
    assert nmaxes[0] == 26             # the paper's SCAN point
    assert nmaxes == sorted(nmaxes, reverse=True)
    assert nmaxes[-1] < 20             # heavy grouping really costs
    assert bound >= simulated
