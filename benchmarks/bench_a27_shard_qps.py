"""A27: sharded, batched admission hot path vs the single-lock one.

The serve hot path moved from one re-entrant controller lock per
ticket to a striped ledger: S shards with their own locks and limit
slices, plus a batch API that grants k tickets under a single
shard-lock acquisition (one span, one bookkeeping pass).  This bench
pins the win at the controller level -- no sockets, so what is
measured is exactly the admission bookkeeping the refactor targets:

* **legacy** -- ``AdmissionController``: per-ticket admit/release,
  every operation through the one lock;
* **sharded** -- ``ShardedAdmissionController``: per-thread home
  stripe, ``admit_batch`` in chunks of k, one ``release_on`` per
  batch.

The gated ``speedup`` metric is sharded throughput at 8 threads /
batch 16 over legacy per-ticket throughput at the same 8 threads --
the configuration the serve daemon actually runs (thread-per-
connection, ``ServeClient.admit_many`` default batch).  The matrix
over threads x batch sizes is emitted for sensitivity, not gated.

``REPRO_BENCH_SMOKE=1`` shrinks the measurement windows so the CI
regression leg finishes in seconds.
"""

import os
import threading
import time

from repro.analysis import render_table
from repro.errors import AdmissionError
from repro.server import AdmissionController, ShardedAdmissionController

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
WINDOW_S = 0.12 if SMOKE else 0.6
THREAD_COUNTS = (1, 2, 4, 8)
BATCH_SIZES = (1, 4, 16, 64)
GATE_THREADS = 8
GATE_BATCH = 16
#: The batch path retires >= this many tickets per unit of legacy
#: per-ticket work at the gate point (8 threads, batch 16).
MIN_SPEEDUP = 3.0

N_MAX = 28
DISKS = 8  # capacity 224: far above the in-flight count per worker


def _window(worker, threads):
    """Run ``threads`` copies of ``worker(stop, idx) -> tickets`` for
    ``WINDOW_S`` seconds; returns tickets/second."""
    stop = threading.Event()
    counts = [0] * threads

    def run(idx):
        counts[idx] = worker(stop, idx)

    pool = [threading.Thread(target=run, args=(idx,))
            for idx in range(threads)]
    start = time.perf_counter()
    for thread in pool:
        thread.start()
    time.sleep(WINDOW_S)
    stop.set()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start
    return sum(counts) / elapsed


def legacy_qps(threads):
    """Per-ticket admit/release through the single lock."""
    controller = AdmissionController(N_MAX, disks=DISKS)

    def worker(stop, _idx):
        tickets = 0
        while not stop.is_set():
            try:
                controller.admit()
            except AdmissionError:
                continue
            controller.release()
            tickets += 1
        return tickets

    return _window(worker, threads)


def sharded_qps(threads, batch):
    """Batched admits on the per-thread home stripe; one lock
    acquisition per k-ticket grant and one per k-ticket release."""
    controller = ShardedAdmissionController(N_MAX, disks=DISKS,
                                            shards=8)

    def worker(stop, idx):
        tickets = 0
        home = idx % controller.shards
        while not stop.is_set():
            try:
                granted = controller.admit_batch(batch, shard=home)
            except AdmissionError:
                continue
            controller.release_on(home,
                                  on_release=lambda: granted)
            tickets += granted
        return tickets

    return _window(worker, threads)


def run_shard_bench():
    legacy = {threads: legacy_qps(threads)
              for threads in THREAD_COUNTS}
    sharded = {(threads, batch): sharded_qps(threads, batch)
               for threads in THREAD_COUNTS
               for batch in BATCH_SIZES}
    gate = sharded[(GATE_THREADS, GATE_BATCH)]
    speedup = gate / legacy[GATE_THREADS]
    return {
        "legacy_qps": {str(t): q for t, q in legacy.items()},
        "sharded_qps": {f"{t}x{b}": q
                        for (t, b), q in sharded.items()},
        "gate_qps": gate,
        "gate_legacy_qps": legacy[GATE_THREADS],
        "speedup": speedup,
    }


def test_a27_shard_qps(benchmark, record, record_json):
    stats = benchmark.pedantic(run_shard_bench, rounds=1,
                               iterations=1)

    rows = [[f"{threads} thread(s)",
             f"{stats['legacy_qps'][str(threads)]:.0f}"]
            + [f"{stats['sharded_qps'][f'{threads}x{batch}']:.0f}"
               for batch in BATCH_SIZES]
            for threads in THREAD_COUNTS]
    rows.append(["gated speedup (8t, batch 16)",
                 "1x", "", "", f"{stats['speedup']:.1f}x", ""])
    record("a27_shard_qps", render_table(
        ["admissions/sec", "legacy"]
        + [f"batch {batch}" for batch in BATCH_SIZES], rows,
        title=f"A27: sharded batch admission vs single lock"
        f"{' (smoke)' if SMOKE else ''}"))
    record_json("a27_shard_qps", {
        "smoke": SMOKE,
        "window_s": WINDOW_S,
        "shards": 8,
        "gate_threads": GATE_THREADS,
        "gate_batch": GATE_BATCH,
        **stats,
    })

    assert stats["speedup"] >= MIN_SPEEDUP, (
        f"sharded batch admission only {stats['speedup']:.1f}x the "
        f"single-lock path at {GATE_THREADS} threads / batch "
        f"{GATE_BATCH} (floor {MIN_SPEEDUP}x)")
    # Batching must help monotonically enough to justify the API:
    # batch 16 beats per-ticket sharded at the gate thread count.
    assert (stats["sharded_qps"][f"{GATE_THREADS}x16"]
            > stats["sharded_qps"][f"{GATE_THREADS}x1"])
