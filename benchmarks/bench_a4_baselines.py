"""A4: ablation -- bound tightness against the prior-work baselines.

Compares, at several multiprogramming levels, the simulated truth
against (i) this paper's Chernoff bound, (ii) the [CL96]-style
Tschebyscheff bound and (iii) the [CZ94]-style CLT normal approximation.
Expected shape (§3.1's argument): Chernoff is conservative yet within a
small factor of the truth; Tschebyscheff is conservative but orders of
magnitude looser in the tail; the CLT is tight near the bulk but *not*
an upper bound in the deep tail.
"""

import _emit
from repro.analysis import format_probability, render_table
from repro.core import RoundServiceTimeModel
from repro.core.baselines import (
    normal_approximation_p_late,
    tschebyscheff_p_late,
)
from repro.server.simulation import estimate_p_late

T = 1.0
N_RANGE = (24, 26, 28, 30, 31)
ROUNDS = 200_000  # deep-tail resolution


def run_comparison(spec, sizes):
    model = RoundServiceTimeModel.for_disk(spec, sizes)
    rows = []
    for n in N_RANGE:
        sim = estimate_p_late(spec, sizes, n, T, rounds=ROUNDS,
                              seed=400 + n)
        rows.append({
            "n": n,
            "sim": sim.p_late,
            "ci": (sim.ci_low, sim.ci_high),
            "chernoff": model.b_late(n, T),
            "tschebyscheff": tschebyscheff_p_late(model, n, T),
            "clt": normal_approximation_p_late(model, n, T),
        })
    return rows


def test_a4_baselines(benchmark, viking, paper_sizes, record):
    rows = benchmark.pedantic(run_comparison, args=(viking, paper_sizes),
                              rounds=1, iterations=1)
    table = render_table(
        ["N", "simulated", "Chernoff (this paper)",
         "Tschebyscheff [CL96]", "CLT normal [CZ94]"],
        [[str(r["n"]), format_probability(r["sim"]),
          format_probability(r["chernoff"]),
          format_probability(r["tschebyscheff"]),
          format_probability(r["clt"])] for r in rows],
        title=f"A4: p_late bounds vs simulation ({ROUNDS} rounds/point)")
    record("a4_baselines", table)
    worst = max(rows, key=lambda r: r["n"])
    _emit.emit("a4_baselines", benchmark, n_probe=worst["n"],
               sim_p_late=worst["sim"], chernoff=worst["chernoff"],
               tschebyscheff=worst["tschebyscheff"], clt=worst["clt"])

    for r in rows:
        # Both true bounds dominate the simulation.
        assert r["chernoff"] >= r["sim"] - 1e-12
        assert r["tschebyscheff"] >= r["sim"] - 1e-12
        # Chernoff is never looser than Tschebyscheff here.
        assert r["chernoff"] <= r["tschebyscheff"] + 1e-12

    # The CLT undershoots the simulated truth somewhere in the deep
    # tail (the paper's §3.1 criticism).
    undershoots = [r for r in rows
                   if r["sim"] > 0 and r["clt"] < r["sim"]]
    assert undershoots, "CLT never undershot -- raise ROUNDS"
