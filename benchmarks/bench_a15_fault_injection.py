"""A15: extension -- thermal recalibration and admission under faults.

The paper's hardware generation suffered thermal-recalibration stalls
(the reason "AV-rated" drives existed).  The MGF algebra absorbs the
stall as one extra mixture term per round; this bench sweeps the stall
severity, validates the extended bound against fault-injected
simulation, and reports the admission head-room a recal-prone drive
must sacrifice.
"""

import numpy as np

import _emit
from repro.analysis import format_probability, render_table
from repro.core import GlitchModel, RoundServiceTimeModel, n_max_perror
from repro.core.faults import with_recalibration
from repro.server.simulation import simulate_rounds

T = 1.0
N_PROBE = 27
SCENARIOS = [
    ("healthy", 0.0, 0.0),
    ("mild (2% x 50ms)", 0.02, 0.050),
    ("moderate (5% x 75ms)", 0.05, 0.075),
    ("severe (10% x 100ms)", 0.10, 0.100),
]


def run_sweep(spec, sizes):
    base = RoundServiceTimeModel.for_disk(spec, sizes)
    rows = []
    for label, prob, duration in SCENARIOS:
        model = (base if prob == 0.0
                 else with_recalibration(base, prob, duration))
        batch = simulate_rounds(
            spec, sizes, N_PROBE, T, 20_000,
            np.random.default_rng(hash(label) % 313),
            recal_prob=prob, recal_duration=duration)
        simulated = float(np.mean(batch.service_times > T))
        n_max = n_max_perror(GlitchModel(model, T), 1200, 12, 0.01)
        rows.append((label, model.b_late(N_PROBE, T), simulated, n_max))
    return rows


def test_a15_fault_injection(benchmark, viking, paper_sizes, record):
    rows = benchmark.pedantic(run_sweep, args=(viking, paper_sizes),
                              rounds=1, iterations=1)
    table = render_table(
        ["drive condition", f"b_late({N_PROBE})",
         f"sim p_late({N_PROBE})", "N_max^perror(1%)"],
        [[label, format_probability(b), format_probability(s), str(n)]
         for label, b, s, n in rows],
        title="A15: thermal-recalibration fault injection "
        "(20000 rounds/point)")
    record("a15_fault_injection", table)
    _emit.emit("a15_fault_injection", benchmark,
               nmax_healthy=rows[0][3], nmax_severe=rows[-1][3])

    labels = [r[0] for r in rows]
    bounds = [r[1] for r in rows]
    nmaxes = [r[3] for r in rows]
    # Severity orders both the bound and the admission limit.
    assert bounds == sorted(bounds)
    assert nmaxes == sorted(nmaxes, reverse=True)
    assert nmaxes[0] == 28       # healthy = paper value
    assert nmaxes[-1] < nmaxes[0]  # recal costs admission head-room
    # Extended bound covers the fault-injected simulation everywhere.
    for label, bound, simulated, _ in rows:
        assert bound >= simulated, label
