#!/usr/bin/env python3
"""Capacity planning: how many disks does a news-on-demand site need?

The paper's model answers configuration questions before any hardware
is bought (§1: "configuring the server (choosing the number of disks,
etc.)").  This example sizes a server for a target user population
under a stream-level quality-of-service contract, and shows how the
answer moves with the round length and with faster disk generations.

Run:  python examples/capacity_planning.py
"""

import math

from repro import (
    GlitchModel,
    RoundServiceTimeModel,
    n_max_perror,
    paper_fragment_sizes,
    quantum_viking_2_1,
    scaled_viking,
)
from repro.analysis import render_table

TARGET_USERS = 500          # concurrent streams the site must carry
PLAYBACK_MIN = 20           # typical object length, minutes
GLITCH_TOLERANCE = 0.01     # <= 1 % of rounds may glitch ...
CONFIDENCE = 0.01           # ... with probability >= 99 % per stream


def streams_per_disk(spec, t: float) -> int:
    sizes = paper_fragment_sizes()
    model = RoundServiceTimeModel.for_disk(spec, sizes)
    glitch = GlitchModel(model, t)
    m = int(PLAYBACK_MIN * 60 / t)
    g = max(int(GLITCH_TOLERANCE * m), 1)
    return n_max_perror(glitch, m, g, CONFIDENCE)


def main() -> None:
    print(f"target: {TARGET_USERS} concurrent streams, "
          f"{PLAYBACK_MIN}-minute objects, "
          f"P[> {GLITCH_TOLERANCE:.0%} glitches] <= {CONFIDENCE:.0%}\n")

    # Sweep the round length on the baseline drive.
    rows = []
    for t in (0.5, 1.0, 2.0):
        per_disk = streams_per_disk(quantum_viking_2_1(), t)
        disks = math.ceil(TARGET_USERS / per_disk)
        rows.append([f"{t:g}", str(per_disk), str(disks),
                     f"{t:g}"])
    print(render_table(
        ["round t [s]", "streams/disk", "disks needed",
         "max startup delay [s]"],
        rows, title="Quantum Viking 2.1 (Table 1)"))

    # Faster drive generations (same mechanics, scaled media rate).
    print()
    rows = []
    for scale in (1.0, 2.0, 4.0):
        spec = scaled_viking(rate_scale=scale)
        per_disk = streams_per_disk(spec, 1.0)
        disks = math.ceil(TARGET_USERS / per_disk)
        rows.append([f"{scale:g}x", str(per_disk), str(disks)])
    print(render_table(
        ["media rate", "streams/disk", "disks needed"],
        rows, title="Disk-generation sweep (t = 1 s)"))

    # The deterministic alternative, for contrast.
    from repro.core import worst_case_n_max
    from repro.core.baselines import worst_case_components
    spec = quantum_viking_2_1()
    rot, seek, trans = worst_case_components(spec, paper_fragment_sizes(),
                                             0.99, "min")
    wc = worst_case_n_max(1.0, rot, seek, trans)
    print(f"\nworst-case sizing would need "
          f"{math.ceil(TARGET_USERS / wc)} disks "
          f"({wc} streams/disk) -- "
          f"{math.ceil(TARGET_USERS / wc) - math.ceil(TARGET_USERS / streams_per_disk(spec, 1.0))} "
          f"more than the stochastic contract.")


if __name__ == "__main__":
    main()
