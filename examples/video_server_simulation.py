#!/usr/bin/env python3
"""A full news-on-demand server day, microscopically simulated.

Exercises the whole stack end to end: a synthetic MPEG VBR catalog is
ingested (parsed into constant-display-time fragments, §2.1), striped
over a four-disk farm, and served round by round on the event-driven
kernel while clients arrive, watch Zipf-popular clips and leave.  The
admission controller uses the §5 lookup table; rejected arrivals are
counted.  At the end the per-stream glitch statistics are compared with
the stream-level guarantee the controller promised.

Run:  python examples/video_server_simulation.py
"""

import numpy as np

from repro import (
    AdmissionController,
    AdmissionTable,
    Catalog,
    GlitchModel,
    MediaServer,
    RoundServiceTimeModel,
    quantum_viking_2_1,
)
from repro.analysis import render_table
from repro.distributions import Gamma
from repro.errors import AdmissionError
from repro.workload import MpegGopModel

DISKS = 4
ROUND = 1.0           # seconds
SIM_ROUNDS = 600      # ten simulated minutes
ARRIVALS_PER_ROUND = 0.8
SEED = 2024


def main() -> None:
    rng = np.random.default_rng(SEED)

    # --- Ingest a catalog of VBR clips -------------------------------
    gop = MpegGopModel(scene_correlation=0.97, scene_sigma=0.35)
    catalog = Catalog.synthetic(rng, n_objects=12, duration_s=120.0,
                                round_length=ROUND, model=gop,
                                zipf_exponent=0.9)
    pooled = catalog.all_fragment_sizes()
    print(f"catalog: {len(catalog)} clips, "
          f"fragment mean {pooled.mean() / 1e3:.0f} KB, "
          f"cv {pooled.std() / pooled.mean():.2f}")

    # --- Build the admission lookup table from workload statistics ---
    # (§2.3: "workload statistics, e.g., on the distribution of
    # fragment sizes, are fed into the admission control")
    size_law = Gamma.from_mean_std(float(pooled.mean()),
                                   float(pooled.std()))
    model = RoundServiceTimeModel.for_disk(quantum_viking_2_1(), size_law)
    glitch = GlitchModel(model, ROUND)
    table = AdmissionTable(glitch, m=120, g=2)  # 2-min clips, <=2 glitches
    controller = AdmissionController.from_table(table, epsilon=0.01,
                                                disks=DISKS)
    print(f"admission: {controller.n_max_per_disk} streams/disk "
          f"({controller.capacity} total) for "
          f"P[>2 glitches/clip] <= 1%")

    # --- Run the server day -------------------------------------------
    server = MediaServer([quantum_viking_2_1()] * DISKS, ROUND,
                         admission=controller, seed=SEED)
    for obj in catalog.objects:
        server.store_object(obj.name, obj.fragment_sizes)

    arrivals = rejected = 0
    peak_active = 0
    for _ in range(SIM_ROUNDS):
        for _ in range(rng.poisson(ARRIVALS_PER_ROUND)):
            arrivals += 1
            try:
                server.open_stream(catalog.pick(rng).name)
            except AdmissionError:
                rejected += 1
        peak_active = max(peak_active, server.active_streams())
        server.run_rounds(1)
    report = server.report

    # --- Reconcile against the promise --------------------------------
    print(render_table(
        ["metric", "value"],
        [
            ["simulated rounds", str(report.rounds)],
            ["arrivals / rejected", f"{arrivals} / {rejected}"],
            ["peak concurrent streams", str(peak_active)],
            ["fragments served", str(report.requests)],
            ["fragments late (glitches)", str(report.glitches)],
            ["overall glitch rate",
             f"{report.glitch_rate:.5f}"],
            ["(disk,round) pairs late", str(report.late_rounds)],
        ],
        title="server day"))

    bound = glitch.b_glitch(controller.n_max_per_disk)
    print(f"\nper-round glitch bound promised: {bound:.5f}; "
          f"delivered rate {report.glitch_rate:.5f} -- "
          f"{'PROMISE KEPT' if report.glitch_rate <= bound else 'VIOLATED'}")


if __name__ == "__main__":
    main()
