#!/usr/bin/env python3
"""Live admission control: drive ``repro serve`` in-process.

Starts the §5 admission daemon on an ephemeral loopback port, fills it
to the paper's per-disk limit over HTTP, injects a disk failure (watch
the shedding policy pause the newest streams live), recovers, and
scrapes the Prometheus endpoint -- the whole operational loop of
``repro serve`` without leaving one process.

Run:  python examples/serve_quickstart.py
"""

import threading

from repro.serve import ServeClient, ServeConfig, ServeDaemon, ServeHandle


def main() -> None:
    threads_before = set(threading.enumerate())

    # 1. Build the daemon: precomputes the §5 AdmissionTable (warm-
    #    started from the persistent bound cache when available) and
    #    derives the degraded-mode limit for mirrored failover.
    daemon = ServeDaemon(ServeConfig(disks=2))
    print(f"admission table: N_max={daemon.controller.n_max_per_disk}"
          f"/disk healthy, {daemon.degraded_n_max}/disk degraded "
          f"(built in {daemon.build_seconds * 1e3:.1f} ms)")

    with ServeHandle(daemon) as handle:
        client = ServeClient(handle.url)
        print(f"daemon listening on {handle.url}")

        # 2. Fill the farm over HTTP until the daemon says no.
        admitted = client.admit_until_reject()
        rejected = client.admit()
        print(f"admitted {admitted} streams, then: "
              f"{rejected['error']}")

        # 3. A disk fails: the shedding policy pauses the newest
        #    streams down to disks x degraded_n_max, live.
        shed = client.fault("disk_fail", 0)
        print(f"disk 0 failed: shed {shed['shed']} streams, "
              f"{shed['active']} still served "
              f"(health: {client.healthz()['status']})")

        # 4. The disk returns: paused streams resume, oldest first.
        back = client.fault("disk_recover", 0)
        print(f"disk 0 recovered: resumed {back['resumed']}, "
              f"{back['active']} active "
              f"(health: {client.healthz()['status']})")

        # 5. What an operator's Prometheus scrape would see.
        lines = client.metrics().splitlines()
        for line in lines:
            if line.startswith(("serve_admitted_total",
                                "serve_shed_total",
                                "serve_resumed_total",
                                "serve_active_streams")):
                print(f"  /metrics: {line}")

    # 6. Clean shutdown: the handle joined every request thread.
    leaked = [t for t in threading.enumerate()
              if t not in threads_before and t.is_alive()]
    assert not leaked, f"daemon leaked threads: {leaked}"
    print("daemon stopped cleanly (no threads leaked)")


if __name__ == "__main__":
    main()
