#!/usr/bin/env python3
"""Running the paper's §6 outlook: buffering, prefetch and mixed data.

Scenario: a teleteaching server pushes video streams to client PCs with
a few megabytes of buffer memory, while the same disks serve the course
web site (HTML pages, images).  This example walks the extensions end
to end:

1. admit streams with the stochastic guarantee,
2. switch on server prefetch and show what client buffers do to the
   *visible* quality,
3. let discrete web traffic ride the leftover time and check the
   streams never notice.

Run:  python examples/buffered_mixed_service.py
"""

import numpy as np

from repro import RoundServiceTimeModel, n_max_perror, GlitchModel
from repro.analysis import format_probability, render_table
from repro.core.buffering import PrefetchPlan
from repro.core.mixed import MixedWorkloadModel
from repro.disk import quantum_viking_2_1
from repro.distributions import Gamma
from repro.server.mixed import simulate_discrete_queue
from repro.server.prefetch import simulate_prefetch
from repro.workload import paper_fragment_sizes

T = 1.0
SIM_ROUNDS = 6000


def main() -> None:
    spec = quantum_viking_2_1()
    sizes = paper_fragment_sizes()
    model = RoundServiceTimeModel.for_disk(spec, sizes)

    # --- 1. admit at the stream-level guarantee ----------------------
    n = n_max_perror(GlitchModel(model, T), 1200, 12, 0.01)
    print(f"admitted N = {n} streams per disk "
          f"(P[>=12 glitches/1200 rounds] <= 1%)\n")

    # --- 2. prefetch + client buffers --------------------------------
    rows = []
    for headroom, capacity in ((0, 2), (0, 8), (2, 4), (3, 8)):
        plan = PrefetchPlan(model, n=n, t=T, headroom=headroom)
        sim = simulate_prefetch(spec, sizes, n, T, SIM_ROUNDS,
                                headroom=headroom, capacity=capacity,
                                prefill=min(2, capacity), seed=headroom)
        rows.append([str(headroom), str(capacity),
                     format_probability(plan.chain(capacity)
                                        .hiccup_rate()),
                     format_probability(sim.hiccup_rate),
                     format_probability(sim.glitch_rate),
                     f"{sim.mean_buffer:.1f}"])
    print(render_table(
        ["prefetch slots", "client buffer", "chain hiccup bound",
         "sim hiccups", "sim glitches", "mean buffer"],
        rows, title="visible quality vs buffering"))
    print("note: without prefetch (rows 1-2) the buffer depth does not "
          "change the\nhiccup rate -- buffers only delay hiccups unless "
          "the server refills them.\n")

    # --- 3. discrete web traffic on the leftover ----------------------
    disc_sizes = Gamma.from_mean_std(8_000.0, 8_000.0)
    mixed = MixedWorkloadModel(spec=spec, continuous_sizes=sizes,
                               discrete_sizes=disc_sizes)
    capacity_est = mixed.discrete_throughput_estimate(n, T)
    rows = []
    for load in (0.5, 0.9):
        result = simulate_discrete_queue(
            spec, sizes, disc_sizes, n=n,
            arrival_rate=load * capacity_est, t=T, rounds=1500,
            rng=np.random.default_rng(int(10 * load)))
        rows.append([f"{load:.0%}",
                     f"{result.arrival_rate:.1f}",
                     f"{result.mean_response_rounds:.2f}",
                     format_probability(
                         float(np.mean(result.continuous_glitches)))])
    print(render_table(
        ["offered web load", "pages/round", "mean response [rounds]",
         "stream glitch rate"],
        rows, title=f"web traffic on the leftover "
        f"(capacity ~{capacity_est:.0f} pages/round)"))
    print("\nthe streams' glitch rate is identical with and without web "
          "traffic:\ncontinuous-first scheduling isolates the paper's "
          "guarantee while the\nleftover moves real discrete work.")


if __name__ == "__main__":
    main()
