#!/usr/bin/env python3
"""Planning a striped disk farm: heterogeneity, failures, round length.

A site is upgrading its video server and asks three questions the
single-disk model cannot answer alone:

1. Can we keep the old drives in the farm next to the new ones?
2. What does it cost to keep streaming through a disk failure?
3. Should the upgrade also change the round length?

Run:  python examples/farm_planning.py
"""

from repro.analysis import render_table
from repro.core import degraded_mode_n_max, plan_farm, tune_round_length
from repro.disk import modern_av_drive, quantum_viking_2_1, seagate_hawk_1lp
from repro.workload import paper_fragment_sizes

T = 1.0
M, G, EPS = 1200, 12, 0.01


def main() -> None:
    sizes = paper_fragment_sizes()
    viking = quantum_viking_2_1()
    hawk = seagate_hawk_1lp()
    fast = modern_av_drive()

    # --- 1. mixing drive generations ---------------------------------
    rows = []
    for name, specs in [
        ("keep 4 old Hawks", [hawk] * 4),
        ("4 new AV drives", [fast] * 4),
        ("4 new + 4 old together", [fast] * 4 + [hawk] * 4),
        ("two separate farms (4 new, 4 old)", None),
    ]:
        if specs is None:
            new_plan = plan_farm([fast] * 4, sizes, T, M, G, EPS)
            old_plan = plan_farm([hawk] * 4, sizes, T, M, G, EPS)
            total = new_plan.n_max_total + old_plan.n_max_total
            rows.append([name, "-", str(total)])
        else:
            plan = plan_farm(specs, sizes, T, M, G, EPS)
            rows.append([name,
                         "/".join(map(str, plan.per_disk_n_max)),
                         str(plan.n_max_total)])
    print(render_table(["configuration", "per-disk limits",
                        "streams admitted"],
                       rows, title="mixing drive generations"))
    print("striping across mixed drives drags everything down to the "
          "slowest disk;\nrun separate striping groups instead.\n")

    # --- 2. failure-proof admission ------------------------------------
    rows = []
    for spec in (viking, hawk, fast):
        healthy, failure_proof = degraded_mode_n_max(spec, sizes, T,
                                                     0.01)
        rows.append([spec.name, str(healthy), str(failure_proof),
                     f"{100 * (1 - failure_proof / healthy):.0f}%"])
    print(render_table(
        ["drive", "healthy N/disk", "failure-proof N/disk",
         "capacity reserved"],
        rows, title="surviving a mirror failure invisibly"))
    print("guaranteeing service through a single failure reserves about "
          "half the\nstreams -- or accept degraded quality during "
          "rebuilds.\n")

    # --- 3. round length on the new hardware ---------------------------
    tuning = tune_round_length(fast, display_bandwidth=200_000.0, cv=0.5,
                               playback_seconds=1200.0)
    print(render_table(
        ["round t [s]", "streams/disk", "bandwidth [MB/s]"],
        [[f"{p.t:g}", str(p.n_max), f"{p.bandwidth / 1e6:.2f}"]
         for p in tuning.points],
        title=f"round length on {fast.name}"))
    print(f"\nknee at t = {tuning.knee.t:g} s -- shorter rounds cost "
          "streams, longer ones\nonly buy startup delay.")


if __name__ == "__main__":
    main()
