#!/usr/bin/env python3
"""Quickstart: stochastic service guarantees in ten lines.

Builds the paper's Table 1 configuration, asks the analytic model how
many concurrent streams one disk can sustain under a quality-of-service
target, and double-checks the answer with a Monte-Carlo simulation.

Run:  python examples/quickstart.py
"""

from repro import (
    GlitchModel,
    RoundServiceTimeModel,
    estimate_p_late,
    n_max_perror,
    n_max_plate,
    paper_fragment_sizes,
    quantum_viking_2_1,
)


def main() -> None:
    # 1. The hardware: a Quantum Viking 2.1 (6720 cylinders, 15 zones,
    #    inner-to-outer transfer-rate ratio ~1.6x), straight from the
    #    paper's Table 1.
    disk = quantum_viking_2_1()
    print(f"disk: {disk.name}, {disk.geometry}")

    # 2. The workload: VBR video fragments, one second of display time
    #    each, Gamma-distributed with mean 200 KB and sd 100 KB.
    sizes = paper_fragment_sizes()
    print(f"fragments: mean {sizes.mean() / 1e3:.0f} KB, "
          f"sd {sizes.std() / 1e3:.0f} KB")

    # 3. The analytic model of one scheduling round (t = 1 s).
    model = RoundServiceTimeModel.for_disk(disk, sizes)
    t = 1.0
    for n in (20, 26, 28, 30):
        result = model.p_late(n, t)
        print(f"  N={n:2d}: E[T_N]={model.mean(n):.3f}s, "
              f"P[round late] <= {result.bound:.5f} "
              f"(theta*={result.theta:.1f})")

    # 4. Admission control, two ways.
    delta = 0.01
    n_round = n_max_plate(model, t, delta)
    print(f"\nround-level guarantee: at most {n_round} streams keep "
          f"P[round late] <= {delta:.0%}")

    glitch = GlitchModel(model, t)
    m, g, eps = 1200, 12, 0.01
    n_stream = n_max_perror(glitch, m, g, eps)
    print(f"stream-level guarantee: at most {n_stream} streams keep "
          f"P[>= {g} glitches in {m} rounds] <= {eps:.0%}")

    # 5. Trust but verify: simulate the admitted load.
    sim = estimate_p_late(disk, sizes, n_stream, t, rounds=20_000)
    print(f"\nsimulated p_late at N={n_stream}: {sim.p_late:.5f} "
          f"(95% CI [{sim.ci_low:.5f}, {sim.ci_high:.5f}]) -- "
          f"comfortably under the analytic bound "
          f"{model.b_late(n_stream, t):.5f}")


if __name__ == "__main__":
    main()
