#!/usr/bin/env python3
"""Regenerate the paper's headline numbers in one run.

A condensed version of the full benchmark harness (`pytest benchmarks/
--benchmark-only` regenerates everything with assertions): this script
recomputes every worked example, Figure 1's crossovers and Table 2's
shape, and prints a paper-vs-reproduced scorecard.

Run:  python examples/reproduce_paper.py        (~30 s)
"""

from repro import (
    GlitchModel,
    RoundServiceTimeModel,
    estimate_p_error,
    estimate_p_late,
    n_max_perror,
    n_max_plate,
    oyang_seek_bound,
    paper_fragment_sizes,
    quantum_viking_2_1,
    single_zone_viking,
    worst_case_n_max,
)
from repro.analysis import render_table
from repro.core.baselines import worst_case_components


def main() -> None:
    sizes = paper_fragment_sizes()
    sz = single_zone_viking()
    mz = quantum_viking_2_1()
    sz_model = RoundServiceTimeModel.for_disk(sz, sizes, multizone=False)
    mz_model = RoundServiceTimeModel.for_disk(mz, sizes)
    glitch = GlitchModel(mz_model, t=1.0)

    rows = []

    def add(label, paper, value):
        rows.append([label, paper, value])

    # §3.1 worked example.
    add("SEEK(27) [s]", "0.10932",
        f"{oyang_seek_bound(sz.seek_curve, sz.cylinders, 27):.5f}")
    add("§3.1 p_late(27)", "~0.0103", f"{sz_model.b_late(27, 1.0):.5f}")
    add("§3.1 p_late(26)", "~0.00225", f"{sz_model.b_late(26, 1.0):.5f}")

    # §3.2 worked example.
    add("§3.2 p_late(26)", "0.00324", f"{mz_model.b_late(26, 1.0):.5f}")
    add("§3.2 p_late(27)", "0.0133", f"{mz_model.b_late(27, 1.0):.5f}")
    add("N_max^plate (1%)", "26", str(n_max_plate(mz_model, 1.0, 0.01)))

    # §3.3 / Table 2 analytic side.
    add("§3.3 p_error(28,1200,12)", "0.00014",
        f"{glitch.p_error(28, 1200, 12):.5f}")
    add("N_max^perror (1%)", "28",
        str(n_max_perror(glitch, 1200, 12, 0.01)))

    # Figure 1, simulated side.
    sim28 = estimate_p_late(mz, sizes, 28, 1.0, rounds=20_000, seed=1)
    sim29 = estimate_p_late(mz, sizes, 29, 1.0, rounds=20_000, seed=1)
    add("Fig.1 simulated N_max (1%)", "28",
        "28" if sim28.p_late <= 0.01 < sim29.p_late else "MISMATCH")

    # Table 2, simulated side (coarser runs for speed).
    sim31 = estimate_p_error(mz, sizes, 31, 1.0, 1200, 12, runs=60,
                             seed=2)
    sim32 = estimate_p_error(mz, sizes, 32, 1.0, 1200, 12, runs=40,
                             seed=2)
    add("Table 2 sim p_error(31)", "0.00678", f"{sim31.p_error:.4f}")
    add("Table 2 sim p_error(32)", "0.454", f"{sim32.p_error:.3f}")

    # eq. (4.1).
    rot, seek, trans = worst_case_components(mz, sizes, 0.99, "min")
    add("N_max^wc conservative", "10",
        str(worst_case_n_max(1.0, rot, seek, trans)))
    rot, seek, trans = worst_case_components(mz, sizes, 0.95, "mean")
    add("N_max^wc optimistic", "14",
        str(worst_case_n_max(1.0, rot, seek, trans)))

    print(render_table(["quantity", "paper", "reproduced"], rows,
                       title="Nerjes/Muth/Weikum PODS'97 -- scorecard"))


if __name__ == "__main__":
    main()
