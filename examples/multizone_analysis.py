#!/usr/bin/env python3
"""What multi-zone recording does to service guarantees.

Walks through §3.2's chain of effects on the Table 1 drive:

1. the zone-skewed transfer-rate law (outer tracks hold more data, so
   sector-uniform requests favour fast zones),
2. the resulting transfer-time distribution, its exact density
   (eq. 3.2.7) and the moment-matched Gamma (eq. 3.2.10),
3. how modelling vs ignoring the zones moves the Chernoff bound and the
   admitted stream count.

Run:  python examples/multizone_analysis.py
"""

import numpy as np

from repro import (
    MultiZoneTransferModel,
    RoundServiceTimeModel,
    n_max_plate,
    paper_fragment_sizes,
    quantum_viking_2_1,
)
from repro.analysis import render_table


def ascii_plot(xs, series, width=60, height=12, labels=("exact", "gamma")):
    """Tiny ASCII overlay plot of densities (no plotting deps)."""
    top = max(max(s) for s in series)
    rows = []
    marks = ("*", "o")
    grid = [[" "] * width for _ in range(height)]
    for s_idx, s in enumerate(series):
        for i in range(width):
            x_idx = int(i / (width - 1) * (len(xs) - 1))
            level = int((height - 1) * s[x_idx] / top)
            grid[height - 1 - level][i] = marks[s_idx]
    for row in grid:
        rows.append("".join(row))
    rows.append("-" * width)
    rows.append(f"t: {xs[0] * 1e3:.0f} ms .. {xs[-1] * 1e3:.0f} ms   "
                + "  ".join(f"{m}={l}" for m, l in zip(marks, labels)))
    return "\n".join(rows)


def main() -> None:
    spec = quantum_viking_2_1()
    sizes = paper_fragment_sizes()
    zm = spec.zone_map

    # 1. Zone law -------------------------------------------------------
    rows = []
    for i in (0, 7, 14):
        rows.append([str(i + 1), f"{zm.capacities[i] / 1e3:.1f}",
                     f"{zm.rates[i] / 1e6:.2f}",
                     f"{zm.zone_probabilities[i]:.4f}"])
    print(render_table(
        ["zone", "track cap [KB]", "rate [MB/s]", "P[hit]"],
        rows, title=f"zone profile ({zm.zones} zones, "
        f"outer/inner rate ratio {zm.r_max / zm.r_min:.2f}x)"))
    print(f"mean rate (sector-uniform): {zm.mean_rate() / 1e6:.2f} MB/s, "
          f"harmonic mean: {zm.harmonic_mean_rate() / 1e6:.2f} MB/s\n")

    # 2. Transfer-time law ---------------------------------------------
    transfer = MultiZoneTransferModel(zm, sizes)
    print(f"transfer time: mean {transfer.mean() * 1e3:.2f} ms, "
          f"sd {np.sqrt(transfer.var()) * 1e3:.2f} ms")
    report = transfer.approximation_report(5e-3, 100e-3, points=120)
    print(f"gamma approximation: max density error "
          f"{100 * report.max_relative_error:.1f}% on 5-100 ms\n")
    print(ascii_plot(report.times,
                     [report.exact_pdf, report.approx_pdf]))

    # 3. Effect on guarantees --------------------------------------------
    t = 1.0
    full = RoundServiceTimeModel.for_disk(spec, sizes, multizone=True)
    flat = RoundServiceTimeModel.for_disk(spec, sizes, multizone=False)
    rows = []
    for n in (24, 26, 28):
        rows.append([str(n), f"{full.b_late(n, t):.5f}",
                     f"{flat.b_late(n, t):.5f}"])
    rows.append(["N_max(1%)", str(n_max_plate(full, t, 0.01)),
                 str(n_max_plate(flat, t, 0.01))])
    print()
    print(render_table(
        ["", "multi-zone model (3.2)", "zones ignored"],
        rows, title="what the zone model changes"))
    print("\nIgnoring zones keeps the mean transfer time but loses its "
          "zone-induced variance,\nmaking the bound optimistic -- the "
          "multi-zone machinery is what keeps the\nguarantee honest on "
          "real drives.")


if __name__ == "__main__":
    main()
