#!/usr/bin/env python3
"""Building the §5 admission lookup table for an operations team.

"We suggest using a lookup table with precomputed values of N_max for
different tolerance thresholds of the glitch rate. ... The table has to
be updated ... only if the disk configuration or general data
characteristics change."

This example precomputes the table over a grid of service classes
(strict/standard/relaxed) and workload variants, then exercises the
run-time admission path against it.

Run:  python examples/admission_lookup_table.py
"""

from repro import (
    AdmissionController,
    AdmissionTable,
    GlitchModel,
    RoundServiceTimeModel,
    quantum_viking_2_1,
)
from repro.analysis import render_table
from repro.distributions import Gamma
from repro.errors import AdmissionError

SERVICE_CLASSES = {
    # name: (glitch fraction g/M, confidence epsilon)
    "strict   (0.1% glitches @ 99.9%)": (0.001, 0.001),
    "standard (1% glitches @ 99%)": (0.01, 0.01),
    "relaxed  (5% glitches @ 95%)": (0.05, 0.05),
}

WORKLOADS = {
    "low-rate audio (64 KB/s, cv 0.3)": Gamma.from_mean_std(64_000.0,
                                                            19_200.0),
    "paper video (200 KB/s, cv 0.5)": Gamma.from_mean_std(200_000.0,
                                                          100_000.0),
    "high-rate video (400 KB/s, cv 0.6)": Gamma.from_mean_std(400_000.0,
                                                              240_000.0),
}

T = 1.0
M = 1200


def main() -> None:
    spec = quantum_viking_2_1()
    rows = []
    tables = {}
    for wl_name, law in WORKLOADS.items():
        model = RoundServiceTimeModel.for_disk(spec, law)
        glitch = GlitchModel(model, T)
        row = [wl_name]
        for cls_name, (rate, eps) in SERVICE_CLASSES.items():
            g = max(int(rate * M), 1)
            table = AdmissionTable(glitch, m=M, g=g)
            n = table.n_max_perror(eps)
            tables[(wl_name, cls_name)] = table
            row.append(str(n))
        rows.append(row)

    print(render_table(
        ["workload"] + list(SERVICE_CLASSES),
        rows,
        title=f"N_max per disk (Quantum Viking 2.1, t={T:g}s, M={M})"))

    # Run-time admission against the standard class / paper workload.
    table = tables[("paper video (200 KB/s, cv 0.5)",
                    "standard (1% glitches @ 99%)")]
    controller = AdmissionController.from_table(table, epsilon=0.01,
                                                disks=8)
    print(f"\n8-disk farm, standard class: capacity "
          f"{controller.capacity} streams")
    admitted = 0
    try:
        while True:
            controller.admit()
            admitted += 1
    except AdmissionError as err:
        print(f"stream #{admitted + 1} rejected: {err}")
    print(f"admitted {admitted} streams; "
          f"rejections recorded: {controller.rejections}")


if __name__ == "__main__":
    main()
